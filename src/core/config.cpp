#include "core/config.hpp"

#include <algorithm>
#include <set>

#include "devices/containers.hpp"
#include "devices/robot_arm.hpp"
#include "devices/stations.hpp"

namespace rabit::core {

using geom::Aabb;
using geom::Transform;
using geom::Vec3;

std::string_view to_string(Variant v) {
  switch (v) {
    case Variant::Initial: return "initial";
    case Variant::Modified: return "modified";
    case Variant::ModifiedWithSim: return "modified+sim";
  }
  return "unknown";
}

bool DeviceMeta::action_index_stale() const {
  return action_index_.aliases_data != static_cast<const void*>(action_aliases.data()) ||
         action_index_.aliases_size != action_aliases.size() ||
         action_index_.thresholds_data != static_cast<const void*>(thresholds.data()) ||
         action_index_.thresholds_size != thresholds.size() ||
         action_index_.actives_data != static_cast<const void*>(active_actions.data()) ||
         action_index_.actives_size != active_actions.size();
}

void DeviceMeta::rebuild_action_index() const {
  action_index_.alias_to_entry.clear();
  action_index_.threshold_by_action.clear();
  action_index_.active_by_name.clear();
  // emplace keeps the first occurrence, mirroring the linear scans'
  // first-match-wins semantics on duplicate entries.
  for (std::size_t i = 0; i < action_aliases.size(); ++i) {
    action_index_.alias_to_entry.emplace(action_aliases[i].first, i);
  }
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    action_index_.threshold_by_action.emplace(thresholds[i].action, i);
  }
  for (std::size_t i = 0; i < active_actions.size(); ++i) {
    action_index_.active_by_name.emplace(active_actions[i], i);
  }
  action_index_.aliases_data = action_aliases.data();
  action_index_.aliases_size = action_aliases.size();
  action_index_.thresholds_data = thresholds.data();
  action_index_.thresholds_size = thresholds.size();
  action_index_.actives_data = active_actions.data();
  action_index_.actives_size = active_actions.size();
}

bool DeviceMeta::is_active_action(std::string_view action) const {
  if (use_indexed_lookup) {
    const bool rebuilt = action_index_stale();
    if (rebuilt) rebuild_action_index();
    auto it = action_index_.active_by_name.find(action);
    if (it != action_index_.active_by_name.end() && it->second < active_actions.size() &&
        active_actions[it->second] == action) {
      return true;
    }
    // A freshly rebuilt index is authoritative; otherwise an in-place edit
    // may have dodged the stamps, so the linear scan gets the final word.
    if (rebuilt) return false;
  }
  bool found =
      std::find(active_actions.begin(), active_actions.end(), action) != active_actions.end();
  if (use_indexed_lookup && found) rebuild_action_index();
  return found;
}

std::string_view DeviceMeta::canonical_action(std::string_view action) const {
  if (use_indexed_lookup) {
    const bool rebuilt = action_index_stale();
    if (rebuilt) rebuild_action_index();
    auto it = action_index_.alias_to_entry.find(action);
    if (it != action_index_.alias_to_entry.end() && it->second < action_aliases.size() &&
        action_aliases[it->second].first == action) {
      return action_aliases[it->second].second;
    }
    if (rebuilt) return action;
  }
  for (std::size_t i = 0; i < action_aliases.size(); ++i) {
    if (action_aliases[i].first == action) {
      if (use_indexed_lookup) rebuild_action_index();
      return action_aliases[i].second;
    }
  }
  return action;
}

const ThresholdSpec* DeviceMeta::threshold_for(std::string_view action) const {
  if (use_indexed_lookup) {
    const bool rebuilt = action_index_stale();
    if (rebuilt) rebuild_action_index();
    auto it = action_index_.threshold_by_action.find(action);
    if (it != action_index_.threshold_by_action.end() && it->second < thresholds.size() &&
        thresholds[it->second].action == action) {
      return &thresholds[it->second];
    }
    if (rebuilt) return nullptr;
  }
  for (const ThresholdSpec& t : thresholds) {
    if (t.action == action) {
      if (use_indexed_lookup) rebuild_action_index();
      return &t;
    }
  }
  return nullptr;
}

const DeviceMeta::DoorMeta& DeviceMeta::door_facing(const geom::Vec3& from_lab) const {
  if (multi_doors.empty() || !box) {
    throw std::logic_error("DeviceMeta::door_facing: not a multi-door device");
  }
  Vec3 center = box->center();
  Vec3 offset(from_lab.x - center.x, from_lab.y - center.y, 0.0);
  const DoorMeta* best = &multi_doors.front();
  double best_dot = -1e300;
  for (const DoorMeta& d : multi_doors) {
    double dot = offset.dot(d.direction);
    if (dot > best_dot) {
      best_dot = dot;
      best = &d;
    }
  }
  return *best;
}

bool EngineConfig::lookup_index_stale() const {
  return lookup_.devices_data != static_cast<const void*>(devices.data()) ||
         lookup_.devices_size != devices.size() ||
         lookup_.sites_data != static_cast<const void*>(sites.data()) ||
         lookup_.sites_size != sites.size();
}

void EngineConfig::rebuild_lookup_index() const {
  lookup_.device_by_id.clear();
  lookup_.site_by_name.clear();
  for (std::size_t i = 0; i < devices.size(); ++i) {
    lookup_.device_by_id.emplace(devices[i].id, i);
  }
  for (std::size_t i = 0; i < sites.size(); ++i) {
    lookup_.site_by_name.emplace(sites[i].name, i);
  }
  lookup_.devices_data = devices.data();
  lookup_.devices_size = devices.size();
  lookup_.sites_data = sites.data();
  lookup_.sites_size = sites.size();
}

void EngineConfig::warm_index() const {
  rebuild_lookup_index();
  for (const DeviceMeta& d : devices) d.rebuild_action_index();
}

const DeviceMeta* EngineConfig::find_device(std::string_view id) const {
  if (use_indexed_lookup) {
    const bool rebuilt = lookup_index_stale();
    if (rebuilt) rebuild_lookup_index();
    auto it = lookup_.device_by_id.find(id);
    if (it != lookup_.device_by_id.end() && it->second < devices.size() &&
        devices[it->second].id == id) {
      return &devices[it->second];
    }
    if (rebuilt) return nullptr;
  }
  for (const DeviceMeta& d : devices) {
    if (d.id == id) {
      // The index missed an element the linear scan found: it dodged the
      // stamps (in-place id edit), so rebuild before the next lookup.
      if (use_indexed_lookup) rebuild_lookup_index();
      return &d;
    }
  }
  return nullptr;
}

const SiteMeta* EngineConfig::find_site(std::string_view name) const {
  if (use_indexed_lookup) {
    const bool rebuilt = lookup_index_stale();
    if (rebuilt) rebuild_lookup_index();
    auto it = lookup_.site_by_name.find(name);
    if (it != lookup_.site_by_name.end() && it->second < sites.size() &&
        sites[it->second].name == name) {
      return &sites[it->second];
    }
    if (rebuilt) return nullptr;
  }
  for (const SiteMeta& s : sites) {
    if (s.name == name) {
      if (use_indexed_lookup) rebuild_lookup_index();
      return &s;
    }
  }
  return nullptr;
}

const SiteMeta* EngineConfig::site_near(const Vec3& lab_point) const {
  const SiteMeta* best = nullptr;
  double best_dist = site_tolerance;
  for (const SiteMeta& s : sites) {
    double d = s.lab_position.distance_to(lab_point);
    if (d <= best_dist) {
      best_dist = d;
      best = &s;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// config_from_backend
// ---------------------------------------------------------------------------

namespace {

geom::Aabb arm_pose_box(const kin::ArmModel& model, const kin::JointVector& joints) {
  std::vector<Vec3> pts = model.link_points(joints);
  Aabb box(pts.front(), pts.front());
  for (const Vec3& p : pts) box = box.united(Aabb(p, p));
  return box.inflated(model.link_radius());
}

DeviceMeta meta_for_device(const dev::Device& d) {
  DeviceMeta m;
  m.id = d.id();
  m.category = d.category();
  m.box = d.footprint();
  m.refined_shape = d.shape();
  m.initial_state = d.state();

  if (const auto* arm = dynamic_cast<const dev::RobotArmDevice*>(&d)) {
    m.is_arm = true;
    m.action_aliases = {{"move_pose", "move_to"}};
    m.base = arm->model().base();
    m.held_clearance = arm->held_drop();
    m.sleep_box = arm_pose_box(arm->model(), arm->named_pose("sleep"));
    m.home_position_lab = arm->model().forward(arm->named_pose("home"));
    m.sleep_position_lab = arm->model().forward(arm->named_pose("sleep"));
    // Continuous encoder-derived values are not part of the discrete
    // state-variable comparison (which is also why a silently skipped move
    // escapes the malfunction check, §IV category 4).
    m.unchecked_vars = {"position", "pose"};
  } else if (const auto* vial = dynamic_cast<const dev::Vial*>(&d)) {
    m.capacity_mg = vial->state().at("capacityMg").as_double();
    m.capacity_ml = vial->state().at("capacityMl").as_double();
  } else if (dynamic_cast<const dev::DosingDeviceModel*>(&d) != nullptr) {
    m.has_door = true;
    m.active_actions = {"run_action"};
    m.unchecked_vars = {"pendingDoseMg"};
  } else if (dynamic_cast<const dev::HotplateModel*>(&d) != nullptr) {
    m.active_actions = {"stir"};
    m.thresholds = {{"set_temperature", "celsius", 150.0}, {"stir", "rpm", 1200.0}};
  } else if (dynamic_cast<const dev::CentrifugeModel*>(&d) != nullptr) {
    m.has_door = true;
    m.active_actions = {"start_spin"};
    m.thresholds = {{"start_spin", "rpm", 4000.0}};
  } else if (dynamic_cast<const dev::ThermoshakerModel*>(&d) != nullptr) {
    m.active_actions = {"shake"};
    m.thresholds = {{"shake", "rpm", 1500.0}, {"set_temperature", "celsius", 90.0}};
  } else if (dynamic_cast<const dev::SyringePumpModel*>(&d) != nullptr) {
    m.unchecked_vars = {"pendingDispenseMl", "pendingTarget"};
  } else if (const auto* multi = dynamic_cast<const dev::MultiDoorStation*>(&d)) {
    m.active_actions = {"start"};
    for (const dev::MultiDoorStation::DoorSpec& spec : multi->doors()) {
      m.multi_doors.push_back(DeviceMeta::DoorMeta{spec.name, spec.approach_direction});
    }
  } else if (const auto* sensor = dynamic_cast<const dev::ProximitySensor*>(&d)) {
    m.is_sensor = true;
    m.sensor_zone = sensor->zone();
    // A sensor reading changes because the *environment* changed, never
    // because a command did — it is input, not a postcondition, so it is
    // exempt from the S_actual/S_expected malfunction comparison. The
    // tracker still follows it via the per-command resync.
    m.unchecked_vars = {"occupied"};
  } else if (const auto* gen = dynamic_cast<const dev::GenericActionDevice*>(&d)) {
    m.has_door = gen->has_door();
    m.active_actions = {"start"};
    for (const dev::GenericActionDevice::ValueActionSpec& spec : gen->value_actions()) {
      m.value_bindings.push_back(ValueBinding{spec.action, spec.variable, spec.argument});
    }
  }
  return m;
}

}  // namespace

EngineConfig config_from_backend(const sim::LabBackend& backend, Variant variant) {
  EngineConfig cfg;
  cfg.variant = variant;
  std::size_t arm_count = 0;
  for (const dev::Device* d : backend.registry().all()) {
    cfg.devices.push_back(meta_for_device(*d));
    if (cfg.devices.back().is_arm) ++arm_count;
  }
  for (const sim::SiteBinding& s : backend.sites()) {
    cfg.sites.push_back(
        SiteMeta{s.name, s.lab_position, s.grid_device, s.grid_slot, s.receptacle_device});
  }
  cfg.static_obstacles = backend.static_obstacles();
  // Multi-arm decks adopt the time-multiplexing discipline as soon as RABIT
  // was taught about other arms (the V2 modification of §IV category 2).
  cfg.time_multiplex = arm_count > 1 && variant != Variant::Initial;
  return cfg;
}

// ---------------------------------------------------------------------------
// JSON (de)serialization
// ---------------------------------------------------------------------------

namespace {

json::Value vec3_to_json(const Vec3& v) {
  json::Object o;
  o["x"] = v.x;
  o["y"] = v.y;
  o["z"] = v.z;
  return json::Value(std::move(o));
}

Vec3 vec3_from_json(const json::Value& v) {
  return Vec3(v.as_object().at("x").as_double(), v.as_object().at("y").as_double(),
              v.as_object().at("z").as_double());
}

json::Value box_to_json(const Aabb& b) {
  json::Object o;
  o["center"] = vec3_to_json(b.center());
  o["size"] = vec3_to_json(b.size());
  return json::Value(std::move(o));
}

Aabb box_from_json(const json::Value& v) {
  return Aabb::from_center(vec3_from_json(v.as_object().at("center")),
                           vec3_from_json(v.as_object().at("size")));
}

json::Value solid_to_json(const geom::Solid& s);

json::Value vec3_list(const Vec3& v) {
  json::Object o;
  o["x"] = v.x;
  o["y"] = v.y;
  o["z"] = v.z;
  return json::Value(std::move(o));
}

json::Value solid_to_json(const geom::Solid& s) {
  json::Object o;
  switch (s.kind()) {
    case geom::Solid::Kind::Box: {
      o["kind"] = std::string("box");
      const Aabb& b = s.as_box();
      o["center"] = vec3_list(b.center());
      o["size"] = vec3_list(b.size());
      break;
    }
    case geom::Solid::Kind::Cylinder: {
      o["kind"] = std::string("cylinder");
      const geom::Solid::CylinderData& c = s.as_cylinder();
      o["base_center"] = vec3_list(c.base_center);
      o["radius"] = c.radius;
      o["height"] = c.height;
      break;
    }
    case geom::Solid::Kind::Hemisphere: {
      o["kind"] = std::string("hemisphere");
      const geom::Solid::HemisphereData& h = s.as_hemisphere();
      o["dome_base_center"] = vec3_list(h.dome_base_center);
      o["radius"] = h.radius;
      break;
    }
    case geom::Solid::Kind::Compound: {
      o["kind"] = std::string("compound");
      json::Array parts;
      for (const geom::Solid& part : s.as_compound()) parts.push_back(solid_to_json(part));
      o["parts"] = std::move(parts);
      break;
    }
  }
  return json::Value(std::move(o));
}

geom::Solid solid_from_json(const json::Value& v) {
  const std::string& kind = v.as_object().at("kind").as_string();
  if (kind == "box") {
    return geom::Solid::box(Aabb::from_center(vec3_from_json(v.as_object().at("center")),
                                              vec3_from_json(v.as_object().at("size"))));
  }
  if (kind == "cylinder") {
    return geom::Solid::vertical_cylinder(vec3_from_json(v.as_object().at("base_center")),
                                          v.as_object().at("radius").as_double(),
                                          v.as_object().at("height").as_double());
  }
  if (kind == "hemisphere") {
    return geom::Solid::hemisphere(vec3_from_json(v.as_object().at("dome_base_center")),
                                   v.as_object().at("radius").as_double());
  }
  if (kind == "compound") {
    std::vector<geom::Solid> parts;
    for (const json::Value& p : v.as_object().at("parts").as_array()) {
      parts.push_back(solid_from_json(p));
    }
    return geom::Solid::compound(std::move(parts));
  }
  throw std::runtime_error("EngineConfig: unknown solid kind '" + kind + "'");
}

json::Value state_to_json(const dev::StateMap& state) {
  json::Object o;
  for (const auto& [k, v] : state) o[k] = v;
  return json::Value(std::move(o));
}

dev::StateMap state_from_json(const json::Value& v) {
  dev::StateMap out;
  for (const auto& [k, val] : v.as_object()) out[k] = val;
  return out;
}

}  // namespace

json::Value config_to_json(const EngineConfig& config) {
  json::Object root;
  root["variant"] = std::string(to_string(config.variant));
  root["time_multiplex"] = config.time_multiplex;
  root["hein_custom_rules"] = config.hein_custom_rules;
  root["use_refined_shapes"] = config.use_refined_shapes;
  root["site_tolerance"] = config.site_tolerance;

  json::Array devices;
  for (const DeviceMeta& m : config.devices) {
    json::Object d;
    d["id"] = m.id;
    d["category"] = std::string(dev::to_string(m.category));
    d["has_door"] = m.has_door;
    if (m.box) d["box"] = box_to_json(*m.box);
    if (m.refined_shape) d["refined_shape"] = solid_to_json(*m.refined_shape);
    if (m.is_arm) {
      json::Object arm;
      arm["base_translation"] = vec3_to_json(m.base.translation_part());
      arm["base_yaw_rad"] = m.base.yaw();
      arm["held_clearance"] = m.held_clearance;
      if (m.sleep_box) arm["sleep_box"] = box_to_json(*m.sleep_box);
      arm["home_position"] = vec3_to_json(m.home_position_lab);
      arm["sleep_position"] = vec3_to_json(m.sleep_position_lab);
      d["arm"] = std::move(arm);
    }
    if (m.capacity_mg > 0) d["capacity_mg"] = m.capacity_mg;
    if (m.capacity_ml > 0) d["capacity_ml"] = m.capacity_ml;
    if (!m.thresholds.empty()) {
      json::Array thresholds;
      for (const ThresholdSpec& t : m.thresholds) {
        json::Object to;
        to["action"] = t.action;
        to["argument"] = t.argument;
        to["max"] = t.max;
        thresholds.emplace_back(std::move(to));
      }
      d["thresholds"] = std::move(thresholds);
    }
    if (!m.active_actions.empty()) {
      json::Array actions;
      for (const std::string& a : m.active_actions) actions.emplace_back(a);
      d["active_actions"] = std::move(actions);
    }
    if (!m.action_aliases.empty()) {
      json::Array aliases;
      for (const auto& [alias, canonical] : m.action_aliases) {
        json::Object ao;
        ao["alias"] = alias;
        ao["canonical"] = canonical;
        aliases.emplace_back(std::move(ao));
      }
      d["action_aliases"] = std::move(aliases);
    }
    if (m.is_sensor) {
      d["is_sensor"] = true;
      if (m.sensor_zone) d["sensor_zone"] = box_to_json(*m.sensor_zone);
    }
    if (!m.multi_doors.empty()) {
      json::Array doors;
      for (const DeviceMeta::DoorMeta& dm : m.multi_doors) {
        json::Object od;
        od["name"] = dm.name;
        od["direction"] = vec3_to_json(dm.direction);
        doors.emplace_back(std::move(od));
      }
      d["multi_doors"] = std::move(doors);
    }
    if (!m.value_bindings.empty()) {
      json::Array bindings;
      for (const ValueBinding& vb : m.value_bindings) {
        json::Object bo;
        bo["action"] = vb.action;
        bo["variable"] = vb.variable;
        bo["argument"] = vb.argument;
        bindings.emplace_back(std::move(bo));
      }
      d["value_bindings"] = std::move(bindings);
    }
    if (!m.unchecked_vars.empty()) {
      json::Array vars;
      for (const std::string& v : m.unchecked_vars) vars.emplace_back(v);
      d["unchecked_vars"] = std::move(vars);
    }
    d["initial_state"] = state_to_json(m.initial_state);
    devices.emplace_back(std::move(d));
  }
  root["devices"] = std::move(devices);

  json::Array sites;
  for (const SiteMeta& s : config.sites) {
    json::Object so;
    so["name"] = s.name;
    so["position"] = vec3_to_json(s.lab_position);
    if (s.is_grid_slot()) {
      so["grid_device"] = s.grid_device;
      so["grid_slot"] = s.grid_slot;
    }
    if (s.is_receptacle()) so["receptacle_device"] = s.receptacle_device;
    sites.emplace_back(std::move(so));
  }
  root["sites"] = std::move(sites);

  json::Array statics;
  for (const sim::NamedBox& b : config.static_obstacles) {
    json::Object so;
    so["name"] = b.name;
    so["kind"] = std::string(sim::to_string(b.kind));
    so["box"] = box_to_json(b.box);
    statics.emplace_back(std::move(so));
  }
  root["static_obstacles"] = std::move(statics);

  json::Array walls;
  for (const SoftWallSpec& w : config.soft_walls) {
    json::Object wo;
    wo["arm_id"] = w.arm_id;
    wo["forbidden"] = box_to_json(w.forbidden);
    walls.emplace_back(std::move(wo));
  }
  root["soft_walls"] = std::move(walls);

  return json::Value(std::move(root));
}

namespace {

Variant variant_from_name(const std::string& name) {
  if (name == "initial") return Variant::Initial;
  if (name == "modified") return Variant::Modified;
  if (name == "modified+sim") return Variant::ModifiedWithSim;
  throw std::runtime_error("EngineConfig: unknown variant '" + name + "'");
}

sim::ObstacleKind obstacle_kind_from_name(const std::string& name) {
  using sim::ObstacleKind;
  if (name == "ground") return ObstacleKind::Ground;
  if (name == "wall") return ObstacleKind::Wall;
  if (name == "grid") return ObstacleKind::Grid;
  if (name == "equipment") return ObstacleKind::Equipment;
  if (name == "vial") return ObstacleKind::Vial;
  if (name == "soft_wall") return ObstacleKind::SoftWall;
  if (name == "parked_arm") return ObstacleKind::ParkedArm;
  throw std::runtime_error("EngineConfig: unknown obstacle kind '" + name + "'");
}

}  // namespace

EngineConfig config_from_json(const json::Value& doc) {
  // Validate first so researcher mistakes surface as located issues rather
  // than exceptions from deep inside the parser.
  std::vector<json::SchemaIssue> issues = config_schema().validate(doc);
  if (!issues.empty()) {
    std::string message = "configuration rejected by schema:";
    for (const json::SchemaIssue& issue : issues) {
      message += "\n  " + issue.path + ": " + issue.message;
    }
    throw std::runtime_error(message);
  }

  EngineConfig cfg;
  const json::Object& root = doc.as_object();
  cfg.variant = variant_from_name(root.at("variant").as_string());
  cfg.time_multiplex = doc.get_or("time_multiplex", false);
  cfg.hein_custom_rules = doc.get_or("hein_custom_rules", true);
  cfg.use_refined_shapes = doc.get_or("use_refined_shapes", false);
  cfg.site_tolerance = doc.get_or("site_tolerance", 0.035);

  for (const json::Value& d : root.at("devices").as_array()) {
    DeviceMeta m;
    m.id = d.as_object().at("id").as_string();
    auto category = dev::parse_device_category(d.as_object().at("category").as_string());
    if (!category) {
      throw std::runtime_error("EngineConfig: bad category for device '" + m.id + "'");
    }
    m.category = *category;
    m.has_door = d.get_or("has_door", false);
    if (const json::Value* box = d.find("box")) m.box = box_from_json(*box);
    if (const json::Value* shape = d.find("refined_shape")) {
      m.refined_shape = solid_from_json(*shape);
    }
    if (const json::Value* arm = d.find("arm")) {
      m.is_arm = true;
      m.base = Transform::translation(vec3_from_json(arm->as_object().at("base_translation"))) *
               Transform::rotation_z(arm->get_or("base_yaw_rad", 0.0));
      m.held_clearance = arm->get_or("held_clearance", 0.07);
      if (const json::Value* sb = arm->find("sleep_box")) m.sleep_box = box_from_json(*sb);
      m.home_position_lab = vec3_from_json(arm->as_object().at("home_position"));
      m.sleep_position_lab = vec3_from_json(arm->as_object().at("sleep_position"));
    }
    m.capacity_mg = d.get_or("capacity_mg", 0.0);
    m.capacity_ml = d.get_or("capacity_ml", 0.0);
    if (const json::Value* thresholds = d.find("thresholds")) {
      for (const json::Value& t : thresholds->as_array()) {
        m.thresholds.push_back(ThresholdSpec{t.as_object().at("action").as_string(),
                                             t.as_object().at("argument").as_string(),
                                             t.as_object().at("max").as_double()});
      }
    }
    if (const json::Value* actions = d.find("active_actions")) {
      for (const json::Value& a : actions->as_array()) m.active_actions.push_back(a.as_string());
    }
    if (const json::Value* aliases = d.find("action_aliases")) {
      for (const json::Value& a : aliases->as_array()) {
        m.action_aliases.emplace_back(a.as_object().at("alias").as_string(),
                                      a.as_object().at("canonical").as_string());
      }
    }
    m.is_sensor = d.get_or("is_sensor", false);
    if (const json::Value* zone = d.find("sensor_zone")) {
      m.sensor_zone = box_from_json(*zone);
    }
    if (const json::Value* doors = d.find("multi_doors")) {
      for (const json::Value& od : doors->as_array()) {
        m.multi_doors.push_back(
            DeviceMeta::DoorMeta{od.as_object().at("name").as_string(),
                                 vec3_from_json(od.as_object().at("direction"))});
      }
    }
    if (const json::Value* bindings = d.find("value_bindings")) {
      for (const json::Value& vb : bindings->as_array()) {
        m.value_bindings.push_back(ValueBinding{vb.as_object().at("action").as_string(),
                                                vb.as_object().at("variable").as_string(),
                                                vb.as_object().at("argument").as_string()});
      }
    }
    if (const json::Value* vars = d.find("unchecked_vars")) {
      for (const json::Value& v : vars->as_array()) m.unchecked_vars.push_back(v.as_string());
    }
    if (const json::Value* init = d.find("initial_state")) {
      m.initial_state = state_from_json(*init);
    }
    cfg.devices.push_back(std::move(m));
  }

  for (const json::Value& s : root.at("sites").as_array()) {
    SiteMeta site;
    site.name = s.as_object().at("name").as_string();
    site.lab_position = vec3_from_json(s.as_object().at("position"));
    site.grid_device = s.get_or("grid_device", std::string());
    site.grid_slot = s.get_or("grid_slot", std::string());
    site.receptacle_device = s.get_or("receptacle_device", std::string());
    cfg.sites.push_back(std::move(site));
  }

  if (const json::Value* statics = doc.find("static_obstacles")) {
    for (const json::Value& b : statics->as_array()) {
      cfg.static_obstacles.push_back(
          sim::NamedBox{b.as_object().at("name").as_string(),
                        box_from_json(b.as_object().at("box")),
                        obstacle_kind_from_name(b.as_object().at("kind").as_string()),
                        std::nullopt});
    }
  }

  if (const json::Value* walls = doc.find("soft_walls")) {
    for (const json::Value& w : walls->as_array()) {
      cfg.soft_walls.push_back(SoftWallSpec{w.as_object().at("arm_id").as_string(),
                                            box_from_json(w.as_object().at("forbidden"))});
    }
  }

  return cfg;
}

json::Schema config_schema() {
  // Coordinates live on a tabletop deck: |x|,|y| <= 2 m, 0 <= z <= 2 m. The
  // z lower bound is what catches the pilot study's sign error in a site
  // height; x/y bounds catch digit slips.
  static const char* kSchema = R"JSON({
    "type": "object",
    "required": ["variant", "devices", "sites"],
    "properties": {
      "variant": {"type": "string", "enum": ["initial", "modified", "modified+sim"]},
      "time_multiplex": {"type": "boolean"},
      "hein_custom_rules": {"type": "boolean"},
      "site_tolerance": {"type": "number", "exclusiveMinimum": 0, "maximum": 0.2},
      "devices": {
        "type": "array",
        "minItems": 1,
        "items": {
          "type": "object",
          "required": ["id", "category"],
          "properties": {
            "id": {"type": "string", "minLength": 1},
            "category": {"type": "string",
                         "enum": ["container", "robot_arm", "dosing_system", "action_device"]},
            "has_door": {"type": "boolean"},
            "capacity_mg": {"type": "number", "minimum": 0},
            "capacity_ml": {"type": "number", "minimum": 0},
            "thresholds": {"type": "array", "items": {
              "type": "object",
              "required": ["action", "argument", "max"],
              "properties": {
                "action": {"type": "string", "minLength": 1},
                "argument": {"type": "string", "minLength": 1},
                "max": {"type": "number"}
              }
            }},
            "active_actions": {"type": "array", "items": {"type": "string"}},
            "unchecked_vars": {"type": "array", "items": {"type": "string"}}
          }
        }
      },
      "sites": {
        "type": "array",
        "items": {
          "type": "object",
          "required": ["name", "position"],
          "properties": {
            "name": {"type": "string", "minLength": 1},
            "position": {
              "type": "object",
              "required": ["x", "y", "z"],
              "properties": {
                "x": {"type": "number", "minimum": -2, "maximum": 2},
                "y": {"type": "number", "minimum": -2, "maximum": 2},
                "z": {"type": "number", "minimum": 0, "maximum": 2}
              }
            },
            "grid_device": {"type": "string"},
            "grid_slot": {"type": "string"},
            "receptacle_device": {"type": "string"}
          }
        }
      }
    }
  })JSON";
  return json::Schema(std::string_view(kSchema));
}

std::vector<std::string> dispatchable_actions(const DeviceMeta& meta) {
  // Mirrors what core/rules.cpp and core/tracker.cpp actually dispatch on —
  // the same closed vocabulary the config lint's CFG4/CFG5 checks assume.
  std::set<std::string> actions;
  if (meta.is_arm) {
    actions = {"move_to",      "go_home",      "go_sleep",   "pick_object",
               "place_object", "open_gripper", "close_gripper"};
  } else {
    actions = {"set_door",     "run_action",      "stop_action", "draw_solvent",
               "dose_solvent", "set_temperature", "stir",        "shake",
               "stop",         "rotate_platter",  "start_spin",  "stop_spin",
               "decap",        "recap",           "add_solid",   "add_liquid",
               "start",        "status",          "measure_solubility"};
  }
  for (const ValueBinding& binding : meta.value_bindings) actions.insert(binding.action);
  for (const std::string& active : meta.active_actions) actions.insert(active);
  return {actions.begin(), actions.end()};
}

std::vector<RuleAvailability> rulebase_availability(const EngineConfig& config) {
  bool has_arm = false;
  std::size_t arm_count = 0;
  bool doored_station = false;       // non-arm with a door and a box (G1/G2)
  bool doored_active = false;        // active actions behind a door (G9/G10)
  bool active_receptacle = false;    // active device fed by a receptacle site (G5/G6)
  bool dosing_system = false;        // run_action / dose_solvent rule paths (G7/G8/C1)
  bool container = false;            // something a stopper/capacity can live on
  bool any_threshold = false;        // G11
  bool centrifuge = false;           // ActionDevice with a rotor red dot (C2..C4)
  bool sensor = false;               // S1
  bool any_site = false;

  auto has_receptacle_site = [&config](std::string_view device) {
    for (const SiteMeta& s : config.sites) {
      if (s.receptacle_device == device) return true;
    }
    return false;
  };

  for (const DeviceMeta& d : config.devices) {
    if (d.is_arm) {
      has_arm = true;
      ++arm_count;
    }
    bool has_any_door = d.has_door || !d.multi_doors.empty();
    if (!d.is_arm && has_any_door && d.box) doored_station = true;
    if (has_any_door && !d.active_actions.empty()) doored_active = true;
    if (!d.active_actions.empty() && has_receptacle_site(d.id)) active_receptacle = true;
    if (d.category == dev::DeviceCategory::DosingSystem) dosing_system = true;
    if (d.category == dev::DeviceCategory::Container &&
        (d.capacity_mg > 0 || d.capacity_ml > 0)) {
      container = true;
    }
    if (!d.thresholds.empty()) any_threshold = true;
    if (d.category == dev::DeviceCategory::ActionDevice &&
        d.initial_state.find("redDot") != d.initial_state.end()) {
      centrifuge = true;
    }
    if (d.is_sensor && d.sensor_zone) sensor = true;
  }
  any_site = !config.sites.empty();

  bool v2 = config.variant != Variant::Initial;
  bool soft_wall_on_known_arm = false;
  for (const SoftWallSpec& w : config.soft_walls) {
    const DeviceMeta* arm = config.find_device(w.arm_id);
    if (arm != nullptr && arm->is_arm) soft_wall_on_known_arm = true;
  }

  auto entry = [](std::string rule, bool reachable, std::string requirement) {
    return RuleAvailability{std::move(rule), reachable, reachable ? "" : std::move(requirement)};
  };

  std::vector<RuleAvailability> out;
  out.push_back(entry("G1", has_arm && doored_station, "no-doored-station"));
  out.push_back(entry("G2", has_arm && doored_station, "no-doored-station"));
  out.push_back(entry("G3", has_arm, "no-arm"));
  out.push_back(entry("G4", has_arm && any_site, "no-pick-site"));
  out.push_back(entry("G5", active_receptacle, "no-active-receptacle"));
  out.push_back(entry("G6", active_receptacle, "no-active-receptacle"));
  out.push_back(entry("G7", dosing_system && container, "no-dosing-path"));
  out.push_back(entry("G8", dosing_system && container, "no-dosing-path"));
  out.push_back(entry("G9", doored_active, "no-doored-active-device"));
  out.push_back(entry("G10", doored_active, "no-doored-active-device"));
  out.push_back(entry("G11", any_threshold, "no-threshold"));
  out.push_back(entry("C1", config.hein_custom_rules && dosing_system && container,
                      config.hein_custom_rules ? "no-dosing-path" : "custom-rules-off"));
  for (const char* c : {"C2", "C3", "C4"}) {
    out.push_back(entry(c, config.hein_custom_rules && centrifuge && has_arm,
                        config.hein_custom_rules ? "no-centrifuge" : "custom-rules-off"));
  }
  out.push_back(entry("M1", v2 && config.time_multiplex && arm_count >= 2,
                      config.time_multiplex ? "fewer-than-two-arms" : "time-multiplex-off"));
  out.push_back(entry("M2", v2 && soft_wall_on_known_arm, "no-soft-wall"));
  out.push_back(entry("S1", has_arm && sensor, "no-sensor-device"));
  return out;
}

}  // namespace rabit::core
