#include "core/rules.hpp"

#include <algorithm>
#include <sstream>

namespace rabit::core {

using dev::Command;
using dev::DeviceCategory;
using geom::Vec3;

namespace {

std::optional<double> arg_number(const Command& cmd, std::string_view key) {
  const json::Value* v = cmd.args.find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->as_double();
}

std::optional<std::string> arg_string(const Command& cmd, std::string_view key) {
  const json::Value* v = cmd.args.find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->as_string();
}

double tracked_number(const StateTracker& tracker, std::string_view device,
                      std::string_view name, double fallback = 0.0) {
  const json::Value* v = tracker.find_var(device, name);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

std::string tracked_string(const StateTracker& tracker, std::string_view device,
                           std::string_view name) {
  const json::Value* v = tracker.find_var(device, name);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

/// The site a station's receptacle is bound to, if any.
const SiteMeta* receptacle_site(const EngineConfig& config, std::string_view device) {
  for (const SiteMeta& s : config.sites) {
    if (s.receptacle_device == device) return &s;
  }
  return nullptr;
}

/// Is this Hein's centrifuge? Identified structurally: an action device with
/// a rotor red-dot variable.
bool is_centrifuge(const EngineConfig& config, const DeviceMeta& meta,
                   const StateTracker& tracker) {
  (void)config;
  return meta.category == DeviceCategory::ActionDevice &&
         tracker.find_var(meta.id, "redDot") != nullptr;
}

}  // namespace

bool is_motion_command(const Command& cmd) {
  return cmd.action == "move_to" || cmd.action == "go_home" || cmd.action == "go_sleep" ||
         cmd.action == "pick_object" || cmd.action == "place_object";
}

std::optional<MotionAnalysis> analyze_motion(const EngineConfig& config,
                                             const StateTracker& tracker, const Command& cmd) {
  const DeviceMeta* meta = config.find_device(cmd.device);
  if (meta == nullptr || !meta->is_arm || !is_motion_command(cmd)) return std::nullopt;

  MotionAnalysis m;
  m.arm_id = meta->id;
  m.start_lab = tracker.arm_position_lab(meta->id);
  m.held_clearance = (config.variant != Variant::Initial && !tracker.arm_holding(meta->id).empty())
                         ? meta->held_clearance
                         : 0.0;

  if (cmd.action == "move_to") {
    const json::Value* pos = cmd.args.find("position");
    if (pos == nullptr || !pos->is_array() || pos->as_array().size() != 3) return std::nullopt;
    const json::Array& p = pos->as_array();
    m.target_lab = meta->base.apply(Vec3(p[0].as_double(), p[1].as_double(), p[2].as_double()));
  } else if (cmd.action == "go_home") {
    m.target_lab = meta->home_position_lab;
  } else if (cmd.action == "go_sleep") {
    m.target_lab = meta->sleep_position_lab;
  } else {  // pick_object / place_object
    auto site_name = arg_string(cmd, "site");
    if (!site_name) return std::nullopt;
    const SiteMeta* site = config.find_site(*site_name);
    if (site == nullptr) return std::nullopt;
    m.target_lab = site->lab_position;
  }

  if (cmd.action == "pick_object" || cmd.action == "place_object") {
    double safe_z = m.target_lab.z + kCompositeSafeLift;
    m.waypoints = {m.start_lab, geom::Vec3(m.start_lab.x, m.start_lab.y, safe_z),
                   geom::Vec3(m.target_lab.x, m.target_lab.y, safe_z), m.target_lab};
  } else {
    m.waypoints = {m.start_lab, m.target_lab};
  }

  // Deliberate station interactions at either end of the motion.
  auto note_site = [&](const SiteMeta* site) {
    if (site == nullptr) return;
    if (site->is_grid_slot()) m.ignores.push_back(site->grid_device);
    if (site->is_receptacle()) {
      const DeviceMeta* station = config.find_device(site->receptacle_device);
      if (station == nullptr) return;
      // Doored receptacles are only a deliberate entry when the relevant
      // door is believed open; a closed door is rule G1's business.
      if (!station->multi_doors.empty() && station->box) {
        const DeviceMeta::DoorMeta& door = station->door_facing(m.start_lab);
        if (tracked_string(tracker, station->id, "door_" + door.name) == "open") {
          m.ignores.push_back(site->receptacle_device);
        }
      } else if (!station->has_door ||
                 tracked_string(tracker, station->id, "doorStatus") == "open") {
        m.ignores.push_back(site->receptacle_device);
      }
    }
  };
  note_site(config.site_near(m.start_lab));
  note_site(config.site_near(m.target_lab));
  // World models that contain this arm's own parked cuboid must not treat it
  // as an obstacle for its own motion.
  m.ignores.push_back(m.arm_id);
  return m;
}

sim::WorldModel assemble_rule_world(const EngineConfig& config, const StateTracker& tracker,
                                    std::string_view moving_arm) {
  sim::WorldModel world;
  for (const DeviceMeta& d : config.devices) {
    if (d.id == moving_arm || !d.box) continue;
    bool is_grid = d.category == DeviceCategory::Container;
    sim::ObstacleKind kind = is_grid ? sim::ObstacleKind::Grid : sim::ObstacleKind::Equipment;
    if (config.use_refined_shapes && d.refined_shape) {
      world.add_solid(d.id, *d.refined_shape, kind);
    } else {
      world.add_box(d.id, *d.box, kind);
    }
  }
  if (config.variant == Variant::Initial) return world;

  // V2 additions: the platform/walls, arms believed parked, soft walls.
  for (const sim::NamedBox& b : config.static_obstacles) world.boxes.push_back(b);
  for (const DeviceMeta& d : config.devices) {
    if (!d.is_arm || d.id == moving_arm || !d.sleep_box) continue;
    if (tracker.arm_pose(d.id) == "sleep") {
      world.add_box(d.id, *d.sleep_box, sim::ObstacleKind::ParkedArm);
    }
  }
  for (const SoftWallSpec& w : config.soft_walls) {
    if (w.arm_id == moving_arm) {
      world.add_box("soft_wall:" + w.arm_id, w.forbidden, sim::ObstacleKind::SoftWall);
    }
  }
  return world;
}

namespace {

}  // namespace

const RuleWorldCache::Entry& RuleWorldCache::world_for(const EngineConfig& config,
                                                       const StateTracker& tracker,
                                                       std::string_view moving_arm) {
  // The tracker bumps pose revisions whenever an arm's believed pose
  // changes; nothing else it tracks (doors, volumes, occupancy) can alter
  // the assembled world. The world for `moving_arm` excludes that arm, so
  // subtracting its own share leaves exactly the revisions that matter —
  // the arm's own per-move pose churn never invalidates its cached world.
  // revision + 1 as the "valid" stamp keeps a fresh entry distinguishable
  // from one built at revision 0.
  std::uint64_t others = tracker.pose_revision() - tracker.pose_revision(moving_arm);
  auto it = by_arm_.find(moving_arm);
  if (it == by_arm_.end()) it = by_arm_.emplace(std::string(moving_arm), CachedWorld{}).first;
  CachedWorld& cached = it->second;
  if (cached.pose_revision != others + 1) {
    cached.entry.world = assemble_rule_world(config, tracker, moving_arm);
    cached.entry.grid.rebuild(cached.entry.world);
    cached.pose_revision = others + 1;
    ++rebuilds_;
  }
  return cached.entry;
}

// ---------------------------------------------------------------------------
// Preconditions
// ---------------------------------------------------------------------------

namespace {

std::optional<RuleHit> check_motion_rules(const EngineConfig& config,
                                          const StateTracker& tracker, const Command& cmd,
                                          const DeviceMeta& meta, RuleWorldCache* world_cache) {
  auto motion = analyze_motion(config, tracker, cmd);
  if (!motion) {
    return RuleHit{"G3", cmd.device + "." + cmd.action + ": unresolvable motion target"};
  }

  // M1 — time multiplexing: while this arm moves, every other arm must be
  // parked in its sleep pose (§IV category 2 workaround).
  if (config.time_multiplex && config.variant != Variant::Initial) {
    for (const DeviceMeta& other : config.devices) {
      if (!other.is_arm || other.id == meta.id) continue;
      if (tracker.arm_pose(other.id) != "sleep") {
        return RuleHit{"M1", meta.id + " may not move while " + other.id +
                                 " is not in its sleep position (time multiplexing)"};
      }
    }
  }

  // M2 — space multiplexing: the software-defined wall.
  if (config.variant != Variant::Initial) {
    for (const SoftWallSpec& w : config.soft_walls) {
      if (w.arm_id == meta.id && w.forbidden.contains(motion->target_lab)) {
        return RuleHit{"M2", meta.id + " target crosses its software-defined wall"};
      }
    }
  }

  // S1 — sensor extension (§V-B): while a proximity sensor reports its zone
  // occupied, no arm may target a point inside that zone.
  for (const DeviceMeta& d : config.devices) {
    if (!d.is_sensor || !d.sensor_zone) continue;
    if (tracked_number(tracker, d.id, "occupied") == 1.0 &&
        d.sensor_zone->contains(motion->target_lab)) {
      return RuleHit{"S1", meta.id + " may not enter the zone of sensor '" + d.id +
                               "' while it reports a person present"};
    }
  }

  // G1 — no moving into a doored device unless its door is open. Multi-door
  // stations (§V-C extension) check the door guarding the approach side.
  for (const DeviceMeta& d : config.devices) {
    if (!d.box || (!d.has_door && d.multi_doors.empty())) continue;
    if (!d.box->inflated(0.01).contains(motion->target_lab)) continue;
    if (!d.multi_doors.empty()) {
      const DeviceMeta::DoorMeta& door = d.door_facing(motion->start_lab);
      std::string status = tracked_string(tracker, d.id, "door_" + door.name);
      if (status != "open") {
        return RuleHit{"G1", meta.id + " cannot enter " + d.id + " through door '" +
                                 door.name + "' (" + (status.empty() ? "unknown" : status) +
                                 ")"};
      }
    } else {
      std::string door = tracked_string(tracker, d.id, "doorStatus");
      if (door != "open") {
        return RuleHit{"G1", meta.id + " cannot move into " + d.id + " (door " +
                                 (door.empty() ? "unknown" : door) + ")"};
      }
    }
  }

  // G4 — pick only when empty-handed.
  if (cmd.action == "pick_object" && !tracker.arm_holding(meta.id).empty()) {
    return RuleHit{"G4", meta.id + " cannot pick up an object while holding '" +
                             tracker.arm_holding(meta.id) + "'"};
  }

  const SiteMeta* target_site = config.site_near(motion->target_lab);

  // G3 (placement form) — the destination spot must be believed free.
  if (cmd.action == "place_object" && target_site != nullptr) {
    std::string occupant = tracker.site_occupant(target_site->name);
    if (!occupant.empty()) {
      return RuleHit{"G3", "site '" + target_site->name + "' is already occupied by '" +
                               occupant + "'"};
    }
  }

  // Hein custom rules C2-C4 guard *placing a container into the centrifuge*.
  if (config.hein_custom_rules && cmd.action == "place_object" && target_site != nullptr &&
      target_site->is_receptacle()) {
    const DeviceMeta* station = config.find_device(target_site->receptacle_device);
    if (station != nullptr && is_centrifuge(config, *station, tracker)) {
      std::string held = tracker.arm_holding(meta.id);
      if (!held.empty()) {
        if (tracked_number(tracker, held, "solidMg") <= kVolumeEpsilon ||
            tracked_number(tracker, held, "liquidMl") <= kVolumeEpsilon) {
          return RuleHit{"C2", "container '" + held +
                                   "' must contain both a solid and a liquid before "
                                   "entering the centrifuge"};
        }
        if (tracked_string(tracker, station->id, "redDot") != "N") {
          return RuleHit{"C3", "centrifuge red dot must face North before loading"};
        }
        if (tracked_number(tracker, held, "hasStopper") != 1.0) {
          return RuleHit{"C4", "container '" + held +
                                   "' must have a stopper before entering the centrifuge"};
        }
      }
    }
  }

  // G3 (geometric form) — the target must not lie inside any modeled object.
  sim::PathCheckOptions opts;
  opts.ignore = motion->ignores;
  std::optional<sim::CollisionReport> hit;
  if (world_cache != nullptr) {
    const RuleWorldCache::Entry& entry = world_cache->world_for(config, tracker, meta.id);
    hit = sim::check_point(entry.world, motion->target_lab, motion->held_clearance, opts,
                           &entry.grid);
  } else {
    sim::WorldModel world = assemble_rule_world(config, tracker, meta.id);
    hit = sim::check_point(world, motion->target_lab, motion->held_clearance, opts);
  }
  if (hit) {
    std::string rule = hit->kind == sim::ObstacleKind::SoftWall ? "M2" : "G3";
    return RuleHit{rule, meta.id + " target location is occupied: " + hit->describe()};
  }

  return std::nullopt;
}

std::optional<RuleHit> check_gripper_rules(const EngineConfig& config,
                                           const StateTracker& tracker, const Command& cmd,
                                           const DeviceMeta& meta) {
  Vec3 tip = tracker.arm_position_lab(meta.id);
  const SiteMeta* site = config.site_near(tip);
  std::string held = tracker.arm_holding(meta.id);

  if (cmd.action == "close_gripper") {
    // G4 — grabbing at an occupied site while already holding something.
    if (!held.empty() && site != nullptr && !tracker.site_occupant(site->name).empty()) {
      return RuleHit{"G4", meta.id + " cannot grab at '" + site->name + "' while holding '" +
                               held + "'"};
    }
    return std::nullopt;
  }

  // open_gripper while holding: this is a placement.
  if (held.empty() || site == nullptr) return std::nullopt;

  std::string occupant = tracker.site_occupant(site->name);
  if (!occupant.empty()) {
    return RuleHit{"G3", "releasing '" + held + "' onto occupied site '" + site->name + "'"};
  }

  if (config.hein_custom_rules && site->is_receptacle()) {
    const DeviceMeta* station = config.find_device(site->receptacle_device);
    if (station != nullptr && is_centrifuge(config, *station, tracker)) {
      if (tracked_number(tracker, held, "solidMg") <= kVolumeEpsilon ||
          tracked_number(tracker, held, "liquidMl") <= kVolumeEpsilon) {
        return RuleHit{"C2", "container '" + held +
                                 "' must contain both a solid and a liquid before entering "
                                 "the centrifuge"};
      }
      if (tracked_string(tracker, station->id, "redDot") != "N") {
        return RuleHit{"C3", "centrifuge red dot must face North before loading"};
      }
      if (tracked_number(tracker, held, "hasStopper") != 1.0) {
        return RuleHit{"C4", "container '" + held +
                                 "' must have a stopper before entering the centrifuge"};
      }
    }
  }
  return std::nullopt;
}

std::optional<RuleHit> check_door_rules(const EngineConfig& config, const StateTracker& tracker,
                                        const Command& cmd, const DeviceMeta& meta) {
  auto state = arg_string(cmd, "state");
  if (!state) return std::nullopt;

  if (*state == "closed") {
    // G2 — never close a door onto an arm believed inside.
    for (const DeviceMeta& other : config.devices) {
      if (!other.is_arm) continue;
      if (tracker.arm_inside(other.id) == meta.id) {
        return RuleHit{"G2", "door of " + meta.id + " cannot close while " + other.id +
                                 " is inside"};
      }
    }
  } else if (*state == "open") {
    // G10 — the door stays closed while the station is running.
    if (tracked_number(tracker, meta.id, "running") == 1.0 ||
        tracked_number(tracker, meta.id, "spinning") == 1.0 ||
        tracked_number(tracker, meta.id, "active") == 1.0) {
      return RuleHit{"G10", "door of " + meta.id + " must stay closed while it is running"};
    }
  }
  return std::nullopt;
}

std::optional<RuleHit> check_active_action_rules(const EngineConfig& config,
                                                 const StateTracker& tracker, const Command& cmd,
                                                 const DeviceMeta& meta) {
  // G9 — doored stations act only behind closed doors (every door, for
  // multi-door stations).
  if (meta.has_door && tracked_string(tracker, meta.id, "doorStatus") != "closed") {
    return RuleHit{"G9", meta.id + " must have its door closed before '" + cmd.action + "'"};
  }
  for (const DeviceMeta::DoorMeta& door : meta.multi_doors) {
    if (tracked_string(tracker, meta.id, "door_" + door.name) != "closed") {
      return RuleHit{"G9", meta.id + " must have door '" + door.name + "' closed before '" +
                               cmd.action + "'"};
    }
  }

  if (meta.category == DeviceCategory::ActionDevice) {
    const SiteMeta* site = receptacle_site(config, meta.id);
    if (site != nullptr) {
      std::string occupant = tracker.site_occupant(site->name);
      // G5 — action devices act only on a container inside them.
      if (occupant.empty()) {
        return RuleHit{"G5", meta.id + " cannot perform '" + cmd.action +
                                 "' without a container inside"};
      }
      // G6 — and that container must not be empty.
      if (tracked_number(tracker, occupant, "solidMg") <= kVolumeEpsilon &&
          tracked_number(tracker, occupant, "liquidMl") <= kVolumeEpsilon) {
        return RuleHit{"G6", meta.id + " cannot perform '" + cmd.action + "' on empty '" +
                                 occupant + "'"};
      }
    }
  }

  // Dosing transfer rules for the solid dosing device.
  if (meta.category == DeviceCategory::DosingSystem && cmd.action == "run_action") {
    const SiteMeta* site = receptacle_site(config, meta.id);
    std::string occupant = site != nullptr ? tracker.site_occupant(site->name) : std::string();
    if (!occupant.empty()) {
      // G7 — no transfer through a stopper.
      if (tracked_number(tracker, occupant, "hasStopper") == 1.0) {
        return RuleHit{"G7", "cannot dose into '" + occupant + "' while it has a stopper"};
      }
      // G8 — the receiving container must have room for the dose.
      auto quantity = arg_number(cmd, "quantity");
      const DeviceMeta* vial_meta = config.find_device(occupant);
      if (quantity && vial_meta != nullptr && vial_meta->capacity_mg > 0) {
        double current = tracked_number(tracker, occupant, "solidMg");
        if (current + *quantity > vial_meta->capacity_mg + kVolumeEpsilon) {
          std::ostringstream os;
          os << "dose of " << *quantity << " mg exceeds remaining capacity of '" << occupant
             << "' (" << vial_meta->capacity_mg - current << " mg free)";
          return RuleHit{"G8", os.str()};
        }
      }
    }
    // No vial believed inside: nothing in Table III forbids a dry run — this
    // is exactly why Bug C (experiment without a vial) goes undetected.
  }
  return std::nullopt;
}

std::optional<RuleHit> check_pump_rules(const EngineConfig& config, const StateTracker& tracker,
                                        const Command& cmd, const DeviceMeta& meta) {
  auto volume = arg_number(cmd, "volume");
  auto target = arg_string(cmd, "target");
  if (!volume || !target) return std::nullopt;

  // G8 — the delivering syringe must actually hold enough.
  if (tracked_number(tracker, meta.id, "heldMl") + kVolumeEpsilon < *volume) {
    return RuleHit{"G8", meta.id + " has not drawn enough solvent to dispense " +
                             std::to_string(*volume) + " mL"};
  }
  const DeviceMeta* vial_meta = config.find_device(*target);
  if (vial_meta == nullptr) {
    return RuleHit{"G8", meta.id + ": unknown target container '" + *target + "'"};
  }
  // G7 — no transfer through a stopper.
  if (tracked_number(tracker, *target, "hasStopper") == 1.0) {
    return RuleHit{"G7", "cannot dose into '" + *target + "' while it has a stopper"};
  }
  // G8 — receiving container must have room.
  if (vial_meta->capacity_ml > 0) {
    double current = tracked_number(tracker, *target, "liquidMl");
    if (current + *volume > vial_meta->capacity_ml + kVolumeEpsilon) {
      return RuleHit{"G8", "dose of " + std::to_string(*volume) + " mL overflows '" + *target +
                               "'"};
    }
  }
  // C1 — Hein custom: liquid goes in only after solid.
  if (config.hein_custom_rules &&
      tracked_number(tracker, *target, "solidMg") <= kVolumeEpsilon) {
    return RuleHit{"C1", "liquid may be added to '" + *target +
                             "' only after it already contains solid"};
  }
  return std::nullopt;
}

}  // namespace

std::optional<RuleHit> check_preconditions(const EngineConfig& config,
                                           const StateTracker& tracker, const Command& cmd) {
  return check_preconditions(config, tracker, cmd, nullptr);
}

std::optional<RuleHit> check_preconditions(const EngineConfig& config,
                                           const StateTracker& tracker, const Command& cmd,
                                           RuleWorldCache* cache) {
  const DeviceMeta* meta = config.find_device(cmd.device);
  if (meta == nullptr) {
    return RuleHit{"G3", "command addresses unknown device '" + cmd.device + "'"};
  }

  // G11 — action values must stay below their configured thresholds.
  if (const ThresholdSpec* threshold = meta->threshold_for(cmd.action)) {
    if (auto value = arg_number(cmd, threshold->argument); value && *value > threshold->max) {
      std::ostringstream os;
      os << meta->id << "." << cmd.action << ": " << threshold->argument << "=" << *value
         << " exceeds the predefined threshold " << threshold->max;
      return RuleHit{"G11", os.str()};
    }
  }

  if (meta->is_arm) {
    if (is_motion_command(cmd)) return check_motion_rules(config, tracker, cmd, *meta, cache);
    if (cmd.action == "open_gripper" || cmd.action == "close_gripper") {
      return check_gripper_rules(config, tracker, cmd, *meta);
    }
    return std::nullopt;
  }

  if (cmd.action == "set_door" && (meta->has_door || !meta->multi_doors.empty())) {
    return check_door_rules(config, tracker, cmd, *meta);
  }
  if (meta->is_active_action(cmd.action)) {
    return check_active_action_rules(config, tracker, cmd, *meta);
  }
  if (cmd.action == "dose_solvent") {
    return check_pump_rules(config, tracker, cmd, *meta);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Transition table (Table II)
// ---------------------------------------------------------------------------

std::vector<TransitionEntry> transition_table() {
  using C = DeviceCategory;
  return {
      {C::RobotArm, "move_to", "deviceDoorStatus[target device] = open; target not occupied",
       "position = target; robotArmInside updated", "G1, G3, M1, M2"},
      {C::RobotArm, "pick_object", "robotArmHolding = none; object present at site",
       "robotArmHolding = object; site free", "G4"},
      {C::RobotArm, "place_object", "robotArmHolding = object; site free",
       "robotArmHolding = none; site = object", "G3, C2, C3, C4"},
      {C::RobotArm, "go_home", "same as move_to", "pose = home", "G1, G3, M1, M2"},
      {C::RobotArm, "go_sleep", "same as move_to", "pose = sleep", "G1, G3, M1, M2"},
      {C::RobotArm, "open_gripper", "release site free (when holding)",
       "gripper = open; held object seated at site", "G3, C2, C3, C4"},
      {C::RobotArm, "close_gripper", "not grabbing while holding",
       "gripper = closed; object at site now held", "G4"},
      {C::DosingSystem, "set_door", "no arm inside when closing; not running when opening",
       "doorStatus = state", "G2, G10"},
      {C::DosingSystem, "run_action", "door closed; no stopper; dose fits receiving container",
       "running = 1; container solid += quantity", "G7, G8, G9"},
      {C::DosingSystem, "stop_action", "none", "running = 0", ""},
      {C::DosingSystem, "dose_solvent",
       "syringe filled; no stopper; volume fits; container has solid",
       "heldMl -= volume; container liquid += volume", "G7, G8, C1"},
      {C::ActionDevice, "start_spin / shake / stir",
       "container inside; container not empty; door closed; value below threshold",
       "device active", "G5, G6, G9, G11"},
      {C::ActionDevice, "set_temperature", "value below predefined threshold",
       "targetC = value", "G11"},
      {C::ActionDevice, "set_door", "no arm inside when closing; not active when opening",
       "doorStatus = state", "G2, G10"},
      {C::Container, "decap / recap", "none", "hasStopper updated", ""},
  };
}

}  // namespace rabit::core
