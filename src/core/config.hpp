// EngineConfig — everything a researcher tells RABIT about their lab.
//
// In the paper (§II-C) this is a set of JSON files: each device is assigned
// one of the four device types and annotated with its properties (door
// presence, cuboid dimensions, thresholds, commands). This module defines
// the in-memory form, JSON (de)serialization with schema validation (the
// pilot study's sign/syntax errors are caught here, §V-A), and a builder
// that derives a config from a LabBackend deck the way a researcher would
// describe it by hand.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "devices/device.hpp"
#include "geometry/geometry.hpp"
#include "geometry/solid.hpp"
#include "json/json.hpp"
#include "sim/backend.hpp"
#include "sim/world.hpp"

namespace rabit::core {

/// RABIT as deployed over the course of §IV's evaluation.
enum class Variant {
  Initial,          ///< V1: 8/16 — target checks against device cuboids only
  Modified,         ///< V2: 12/16 — + platform/walls, held-object inflation,
                    ///<   parked-arm cuboids and multiplexing preconditions
  ModifiedWithSim,  ///< V3: 13/16 — V2 + Extended Simulator trajectory replay
};

[[nodiscard]] std::string_view to_string(Variant v);

namespace detail {

/// Transparent-hash string map: find() accepts a string_view key without
/// materializing a std::string. Keys are owned copies, so an index can never
/// dangle into config vectors that were later edited.
struct StringViewHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
using StringIndexMap =
    std::unordered_map<std::string, std::size_t, StringViewHash, std::equal_to<>>;

}  // namespace detail

/// A RABIT-level threshold on an action argument (Table III rule 11). These
/// sit *above* device firmware limits, typically stricter.
struct ThresholdSpec {
  std::string action;    ///< e.g. "set_temperature"
  std::string argument;  ///< e.g. "celsius"
  double max = 0.0;
};

/// A config-declared value action (generic devices, paper Section V-B): the
/// named action sets `variable` from its `argument`. The tracker uses this
/// to derive postconditions for devices RABIT has no built-in model for.
struct ValueBinding {
  std::string action;
  std::string variable;
  std::string argument;
};

/// Everything RABIT knows about one device.
struct DeviceMeta {
  std::string id;
  dev::DeviceCategory category = dev::DeviceCategory::ActionDevice;
  bool has_door = false;
  std::optional<geom::Aabb> box;  ///< the cuboid model of §III
  /// Refined (non-cuboid) shape description — the §V-C extension requested
  /// in the pilot study. Used only when EngineConfig::use_refined_shapes.
  std::optional<geom::Solid> refined_shape;

  // Robot arms only.
  bool is_arm = false;
  geom::Transform base;                    ///< arm frame -> lab frame
  double held_clearance = 0.07;            ///< held-vial drop below gripper
  std::optional<geom::Aabb> sleep_box;     ///< parked cuboid (time multiplex)
  geom::Vec3 home_position_lab;            ///< tip position at the home pose
  geom::Vec3 sleep_position_lab;           ///< tip position at the sleep pose

  // Containers only.
  double capacity_mg = 0.0;
  double capacity_ml = 0.0;

  std::vector<ThresholdSpec> thresholds;
  std::vector<ValueBinding> value_bindings;
  /// Alternative command names for the same action (alias -> canonical),
  /// closing the paper's "RABIT currently allows only one command per
  /// action" gap (§V-C). E.g. {"move_pose", "move_to"}.
  std::vector<std::pair<std::string, std::string>> action_aliases;
  /// Sensor devices (§V-B: "sensors, which could be treated as a new device
  /// class"): while the sensor reports occupied, no arm may target a point
  /// inside its zone (rule S1).
  bool is_sensor = false;
  std::optional<geom::Aabb> sensor_zone;
  /// Multi-door stations (§V-C): each door guards the approach side its
  /// horizontal direction points toward. Empty for single-door devices
  /// (which use `has_door`).
  struct DoorMeta {
    std::string name;
    geom::Vec3 direction;
  };
  std::vector<DoorMeta> multi_doors;
  /// Actions that count as "performing an action" for rules 5/6/9 (e.g.
  /// start_spin, shake, stir) or "dosing" for rule 9 (run_action).
  std::vector<std::string> active_actions;
  /// State variables excluded from the S_actual/S_expected comparison
  /// (continuous encoder positions, internal bookkeeping).
  std::vector<std::string> unchecked_vars;
  /// Symbolic initial state for devices with no status command (vials).
  dev::StateMap initial_state;

  /// Gate for the indexed action lookups below (mirrors
  /// EngineConfig::use_indexed_lookup; RabitEngine's hot-path config
  /// propagates it). The linear scans remain the reference semantics — the
  /// index may only change the cost of an answer, never the answer.
  bool use_indexed_lookup = true;

  [[nodiscard]] bool is_active_action(std::string_view action) const;
  [[nodiscard]] const ThresholdSpec* threshold_for(std::string_view action) const;
  /// Canonical action name for `action` (itself when not aliased).
  [[nodiscard]] std::string_view canonical_action(std::string_view action) const;
  /// For multi-door devices: the door guarding an approach from `from_lab`.
  /// Requires a box and a non-empty multi_doors list.
  [[nodiscard]] const DoorMeta& door_facing(const geom::Vec3& from_lab) const;

 private:
  friend struct EngineConfig;
  /// Prebuilt per-device action lookups (alias -> canonical, action ->
  /// threshold, active-action set). Stamps record each backing vector's data
  /// pointer and size; any reallocation, resize, or copy of the meta makes
  /// them mismatch and triggers a lazy rebuild. Every hit is verified
  /// against the backing entry, and misses fall back to the linear scan, so
  /// a stale index can never change an answer. After
  /// EngineConfig::warm_index() on an otherwise unmodified config, lookups
  /// are read-only and therefore safe to call concurrently.
  struct ActionIndex {
    const void* aliases_data = nullptr;
    std::size_t aliases_size = 0;
    const void* thresholds_data = nullptr;
    std::size_t thresholds_size = 0;
    const void* actives_data = nullptr;
    std::size_t actives_size = 0;
    detail::StringIndexMap alias_to_entry;
    detail::StringIndexMap threshold_by_action;
    detail::StringIndexMap active_by_name;
  };
  mutable ActionIndex action_index_;

  void rebuild_action_index() const;
  [[nodiscard]] bool action_index_stale() const;
};

/// A named deck location RABIT knows about (mirrors sim::SiteBinding, but
/// as *configured* knowledge rather than ground truth).
struct SiteMeta {
  std::string name;
  geom::Vec3 lab_position;
  std::string grid_device;  ///< grid the slot belongs to ("" otherwise)
  std::string grid_slot;
  std::string receptacle_device;  ///< station this site feeds ("" otherwise)

  [[nodiscard]] bool is_grid_slot() const { return !grid_device.empty(); }
  [[nodiscard]] bool is_receptacle() const { return !receptacle_device.empty(); }
};

/// Space-multiplexing software wall: `arm_id` must never target a point
/// inside `forbidden` (§IV category 2 workaround).
struct SoftWallSpec {
  std::string arm_id;
  geom::Aabb forbidden;
};

struct EngineConfig {
  Variant variant = Variant::Modified;
  std::vector<DeviceMeta> devices;
  std::vector<SiteMeta> sites;
  std::vector<sim::NamedBox> static_obstacles;  ///< platform, walls (V2+)
  std::vector<SoftWallSpec> soft_walls;

  /// Enforce "only one arm moves; the rest are asleep" (V2 testbed mode).
  bool time_multiplex = false;
  /// Enable the Hein Lab custom rules C1-C4 (Table IV).
  bool hein_custom_rules = true;
  /// Check against refined device shapes instead of bounding cuboids (§V-C
  /// extension; off by default to match the paper's deployed system).
  bool use_refined_shapes = false;
  /// How close a tracked tip must be to a site to count as interacting.
  double site_tolerance = 0.035;

  /// Gate for the indexed lookup path. On by default; benches and the
  /// verdict-parity tests flip it off to compare against the seed linear
  /// scans (the answers must be identical either way).
  bool use_indexed_lookup = true;

  [[nodiscard]] const DeviceMeta* find_device(std::string_view id) const;
  [[nodiscard]] const SiteMeta* find_site(std::string_view name) const;
  [[nodiscard]] const SiteMeta* site_near(const geom::Vec3& lab_point) const;

  /// Eagerly builds the device/site hash indexes and every device's action
  /// index. RabitEngine calls this once at construction so that subsequent
  /// const lookups on an unmodified config never touch mutable state (and
  /// are therefore safe to run concurrently across fleet streams).
  void warm_index() const;

 private:
  /// Hash index over `devices` ids and `sites` names. Stamps record the
  /// backing vector's data pointer and size; any reallocation, resize, or
  /// copy of the config makes the stamp mismatch and triggers a rebuild.
  /// Hits are verified against the element (an in-place id edit can't serve
  /// a stale answer) and misses fall back to the seed linear scan.
  struct LookupIndex {
    const void* devices_data = nullptr;
    std::size_t devices_size = 0;
    const void* sites_data = nullptr;
    std::size_t sites_size = 0;
    detail::StringIndexMap device_by_id;
    detail::StringIndexMap site_by_name;
  };
  mutable LookupIndex lookup_;

  void rebuild_lookup_index() const;
  [[nodiscard]] bool lookup_index_stale() const;
};

/// Derives the config a researcher would write for `backend`'s deck. The
/// result mirrors the ground truth exactly — detection gaps then come only
/// from the variant's capabilities, matching the §IV evaluation protocol
/// ("we ensure that there are no intentional bugs in the JSON
/// configurations").
[[nodiscard]] EngineConfig config_from_backend(const sim::LabBackend& backend, Variant variant);

/// JSON round trip (the researcher-facing format of §II-C).
[[nodiscard]] json::Value config_to_json(const EngineConfig& config);
[[nodiscard]] EngineConfig config_from_json(const json::Value& doc);

/// The JSON schema for the configuration file. Validating researcher input
/// against it catches the §V-A pilot-study errors (sign mistakes via
/// coordinate bounds, missing fields, wrong types).
[[nodiscard]] json::Schema config_schema();

// ---------------------------------------------------------------------------
// Rulebase introspection (consumed by the rulebase verifier, src/analysis)
// ---------------------------------------------------------------------------

/// The closed action vocabulary check_preconditions and the tracker dispatch
/// for a device of `meta`'s category, plus its configured value bindings and
/// active actions (aliases excluded — they resolve through
/// DeviceMeta::canonical_action). Sorted, unique.
[[nodiscard]] std::vector<std::string> dispatchable_actions(const DeviceMeta& meta);

/// Whether one runtime rule can structurally fire on `config` at all —
/// independent of any command stream. A rule whose configured prerequisites
/// are absent (no sensor device for S1, no soft wall for M2, no centrifuge
/// for C2–C4) is dead by construction: no input reaches it.
struct RuleAvailability {
  std::string rule;    ///< "G1".."G11", "C1".."C4", "M1", "M2", "S1"
  bool reachable = false;
  /// The missing configured prerequisite when !reachable (machine-readable,
  /// e.g. "no-sensor-device"); empty when reachable.
  std::string requirement;
};

/// Structural availability of every rulebase entry on `config`, in stable
/// rulebase order. The R8 dark-key classifier and the coverage-map docs both
/// key on this.
[[nodiscard]] std::vector<RuleAvailability> rulebase_availability(const EngineConfig& config);

}  // namespace rabit::core
