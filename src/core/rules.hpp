// The RABIT rulebase: the 11 general rules of Table III ("G1".."G11"), the
// 4 Hein Lab custom rules of Table IV ("C1".."C4"), and the two multiplexing
// preconditions added in §IV category 2 ("M1" time, "M2" space).
//
// Rules are evaluated against the *tracked* symbolic state (StateTracker) —
// never against ground truth — so RABIT's knowledge gaps (no gripper sensor,
// an incomplete world model in the Initial variant) produce exactly the
// detection misses reported in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/tracker.hpp"
#include "devices/device.hpp"
#include "sim/world.hpp"

namespace rabit::core {

struct RuleHit {
  std::string rule;  ///< "G1".."G11", "C1".."C4", "M1", "M2"
  std::string message;
};

/// Geometric context for an arm motion command, shared between the rule-3
/// target check and the V3 trajectory check.
struct MotionAnalysis {
  std::string arm_id;
  geom::Vec3 start_lab;
  geom::Vec3 target_lab;
  double held_clearance = 0.0;  ///< 0 under the Initial variant
  /// Devices the arm deliberately interacts with (grid being reached over,
  /// open-door station being entered): their boxes are not obstacles.
  std::vector<std::string> ignores;
  /// The tip path, including the start. Primitive moves go straight; the
  /// composite pick/place commands lift, traverse at a safe height, then
  /// descend (the same legs the backend physically executes).
  std::vector<geom::Vec3> waypoints;
};

/// Height composites lift to above a site before traversing.
inline constexpr double kCompositeSafeLift = 0.22;

/// Tolerance for comparing tracked volumes and masses (mg/mL) against
/// capacities and doses. Tracked quantities accumulate through repeated
/// double additions, so exact comparisons would flag phantom shortfalls or
/// overflows one ulp past a boundary; every volume rule shares this epsilon.
inline constexpr double kVolumeEpsilon = 1e-9;

/// True for the commands that physically move an arm's tip.
[[nodiscard]] bool is_motion_command(const dev::Command& cmd);

/// Resolves where a motion command sends the arm and which boxes are
/// deliberate interactions. Returns nullopt for non-motion commands or when
/// the target cannot be resolved (unknown site — reported as a rule hit by
/// check_preconditions instead).
[[nodiscard]] std::optional<MotionAnalysis> analyze_motion(const EngineConfig& config,
                                                           const StateTracker& tracker,
                                                           const dev::Command& cmd);

/// The world model RABIT checks targets against, assembled per variant:
/// Initial sees configured device cuboids only; Modified adds the static
/// geometry (platform/walls), parked-arm cuboids for arms believed asleep,
/// and the space-multiplexing soft walls for `moving_arm`.
[[nodiscard]] sim::WorldModel assemble_rule_world(const EngineConfig& config,
                                                  const StateTracker& tracker,
                                                  std::string_view moving_arm);

/// Memoizes assemble_rule_world between commands. The assembled world only
/// depends on static config geometry plus which arms are believed parked, so
/// the tracker's pose revision counter decides whether the cached world (and
/// its broad-phase grid) can be reused — an O(1) comparison per motion. The
/// cache assumes the config it is handed does not change between calls —
/// RabitEngine owns one per (config, tracker) pair for exactly that reason.
class RuleWorldCache {
 public:
  struct Entry {
    sim::WorldModel world;
    sim::BroadPhaseGrid grid;
  };

  /// The rule world for `moving_arm`, rebuilt only when some arm's believed
  /// pose changed since the previous call for this arm.
  [[nodiscard]] const Entry& world_for(const EngineConfig& config, const StateTracker& tracker,
                                       std::string_view moving_arm);

  /// Times the world was actually assembled (memo-effectiveness metric).
  [[nodiscard]] std::size_t rebuilds() const { return rebuilds_; }

 private:
  struct CachedWorld {
    std::uint64_t pose_revision = 0;
    Entry entry;
  };
  std::unordered_map<std::string, CachedWorld, detail::StringViewHash, std::equal_to<>> by_arm_;
  std::size_t rebuilds_ = 0;
};

/// Valid(S_current, a_next): first violated precondition, or nullopt when
/// the command is allowed.
[[nodiscard]] std::optional<RuleHit> check_preconditions(const EngineConfig& config,
                                                         const StateTracker& tracker,
                                                         const dev::Command& cmd);

/// Same, reusing `cache` for the per-motion rule-world assembly (nullptr
/// falls back to assembling per command — identical verdicts either way).
[[nodiscard]] std::optional<RuleHit> check_preconditions(const EngineConfig& config,
                                                         const StateTracker& tracker,
                                                         const dev::Command& cmd,
                                                         RuleWorldCache* cache);

/// One row of the state-transition table (paper Table II): an action with
/// its preconditions and postconditions, in human-readable form. Used for
/// documentation output and the Table II bench.
struct TransitionEntry {
  dev::DeviceCategory category;
  std::string action;
  std::string preconditions;
  std::string postconditions;
  std::string rules;  ///< which rulebase entries guard it
};

/// The full state-transition table RABIT populates from the configuration.
[[nodiscard]] std::vector<TransitionEntry> transition_table();

}  // namespace rabit::core
