#include "core/tracker.hpp"

#include <algorithm>
#include <cmath>

namespace rabit::core {

using dev::Command;
using geom::Vec3;

namespace {

bool values_match(const json::Value& a, const json::Value& b) {
  if (a.is_number() && b.is_number()) {
    return std::abs(a.as_double() - b.as_double()) <= 1e-6;
  }
  if (a.is_array() && b.is_array()) {
    const json::Array& aa = a.as_array();
    const json::Array& bb = b.as_array();
    if (aa.size() != bb.size()) return false;
    for (std::size_t i = 0; i < aa.size(); ++i) {
      if (!values_match(aa[i], bb[i])) return false;
    }
    return true;
  }
  return a == b;
}

Vec3 vec3_from_position_arg(const json::Value& args) {
  const json::Value* pos = args.find("position");
  if (pos == nullptr || !pos->is_array() || pos->as_array().size() != 3) {
    throw std::runtime_error("StateTracker: move_to without a [x,y,z] position");
  }
  const json::Array& p = pos->as_array();
  return Vec3(p[0].as_double(), p[1].as_double(), p[2].as_double());
}

}  // namespace

StateTracker::StateTracker(const EngineConfig* config) : config_(config) {
  if (config_ == nullptr) throw std::invalid_argument("StateTracker: null config");
}

void StateTracker::initialize(const dev::LabStateSnapshot& observed) {
  state_.clear();
  arm_lab_positions_.clear();
  site_occupancy_.clear();
  ++pose_revision_;  // wholesale reset: every cached rule world is stale

  // Symbolic baseline from the researcher-entered configuration...
  for (const DeviceMeta& meta : config_->devices) {
    state_[meta.id] = meta.initial_state;
    if (meta.is_arm) arm_lab_positions_[meta.id] = meta.home_position_lab;
  }
  // ...overlaid with everything the status commands actually report.
  resync(observed);

  // Arms report their tip position in their own frame.
  for (const DeviceMeta& meta : config_->devices) {
    if (!meta.is_arm) continue;
    if (const json::Value* pos = find_var(meta.id, "position");
        pos != nullptr && pos->is_array() && pos->as_array().size() == 3) {
      const json::Array& p = pos->as_array();
      arm_lab_positions_[meta.id] =
          meta.base.apply(Vec3(p[0].as_double(), p[1].as_double(), p[2].as_double()));
    }
  }

  // Initial vial placement: a vial's configured location names the site it
  // starts at.
  for (const DeviceMeta& meta : config_->devices) {
    if (meta.category != dev::DeviceCategory::Container || meta.is_arm) continue;
    const json::Value* loc = find_var(meta.id, "location");
    if (loc != nullptr && loc->is_string() && config_->find_site(loc->as_string()) != nullptr) {
      site_occupancy_[loc->as_string()] = meta.id;
    }
  }
}

const json::Value& StateTracker::var(std::string_view device, std::string_view name) const {
  if (const json::Value* v = find_var(device, name)) return *v;
  throw std::out_of_range("StateTracker: no tracked variable " + std::string(device) + "." +
                          std::string(name));
}

const json::Value* StateTracker::find_var(std::string_view device, std::string_view name) const {
  auto dev_it = state_.find(device);
  if (dev_it == state_.end()) return nullptr;
  auto var_it = dev_it->second.find(name);
  return var_it == dev_it->second.end() ? nullptr : &var_it->second;
}

void StateTracker::set_var(std::string_view device, std::string_view name, json::Value value) {
  json::Value& slot = state_[std::string(device)][std::string(name)];
  if (name == "pose" && !(slot == value)) {
    ++pose_revision_;
    ++pose_revisions_[std::string(device)];
  }
  slot = std::move(value);
}

std::string StateTracker::arm_holding(std::string_view arm) const {
  const json::Value* v = find_var(arm, "holding");
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

std::uint64_t StateTracker::pose_revision(std::string_view device) const {
  auto it = pose_revisions_.find(device);
  return it == pose_revisions_.end() ? 0 : it->second;
}

std::string StateTracker::arm_pose(std::string_view arm) const {
  const json::Value* v = find_var(arm, "pose");
  return v != nullptr && v->is_string() ? v->as_string() : std::string("custom");
}

std::string StateTracker::arm_inside(std::string_view arm) const {
  const json::Value* v = find_var(arm, "inside");
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

Vec3 StateTracker::arm_position_lab(std::string_view arm) const {
  auto it = arm_lab_positions_.find(arm);
  if (it == arm_lab_positions_.end()) {
    throw std::out_of_range("StateTracker: unknown arm '" + std::string(arm) + "'");
  }
  return it->second;
}

std::string StateTracker::site_occupant(std::string_view site_name) const {
  auto it = site_occupancy_.find(site_name);
  return it == site_occupancy_.end() ? std::string() : it->second;
}

void StateTracker::seat(std::string_view site_name, std::string vial_id) {
  site_occupancy_[std::string(site_name)] = std::move(vial_id);
}

void StateTracker::unseat(std::string_view site_name) {
  site_occupancy_.erase(std::string(site_name));
}

// ---------------------------------------------------------------------------
// Postconditions (UpdateState)
// ---------------------------------------------------------------------------

void StateTracker::apply_postconditions(const Command& cmd) {
  const DeviceMeta* meta = config_->find_device(cmd.device);
  if (meta == nullptr) return;  // unknown device: nothing to track
  if (meta->is_arm) {
    apply_arm_postconditions(*meta, cmd);
  } else {
    apply_station_postconditions(*meta, cmd);
  }
}

void StateTracker::apply_arm_postconditions(const DeviceMeta& meta, const Command& cmd) {
  const std::string& arm = meta.id;
  auto set_lab_position = [&](const Vec3& lab) {
    arm_lab_positions_[arm] = lab;
    Vec3 local = meta.base.inverse().apply(lab);
    set_var(arm, "position", json::Array{local.x, local.y, local.z});
    // Which doored station does the tip now sit inside (if any)?
    std::string inside;
    for (const DeviceMeta& d : config_->devices) {
      if (!d.box || (!d.has_door && d.multi_doors.empty())) continue;
      if (d.box->inflated(0.01).contains(lab)) {
        inside = d.id;
        break;
      }
    }
    set_var(arm, "inside", inside);
  };

  if (cmd.action == "move_to") {
    set_lab_position(meta.base.apply(vec3_from_position_arg(cmd.args)));
    set_var(arm, "pose", "custom");
  } else if (cmd.action == "go_home") {
    set_lab_position(meta.home_position_lab);
    set_var(arm, "pose", "home");
  } else if (cmd.action == "go_sleep") {
    set_lab_position(meta.sleep_position_lab);
    set_var(arm, "pose", "sleep");
  } else if (cmd.action == "open_gripper") {
    set_var(arm, "gripper", "open");
    track_release(meta);
  } else if (cmd.action == "close_gripper") {
    set_var(arm, "gripper", "closed");
    track_grab(meta);
  } else if (cmd.action == "pick_object") {
    if (const json::Value* site_arg = cmd.args.find("site"); site_arg != nullptr) {
      if (const SiteMeta* site = config_->find_site(site_arg->as_string())) {
        set_lab_position(site->lab_position);
        set_var(arm, "pose", "custom");
        set_var(arm, "gripper", "closed");
        track_grab(meta);
      }
    }
  } else if (cmd.action == "place_object") {
    if (const json::Value* site_arg = cmd.args.find("site"); site_arg != nullptr) {
      if (const SiteMeta* site = config_->find_site(site_arg->as_string())) {
        set_lab_position(site->lab_position);
        set_var(arm, "pose", "custom");
        set_var(arm, "gripper", "open");
        track_release(meta);
      }
    }
  }
}

void StateTracker::track_grab(const DeviceMeta& arm_meta) {
  if (!arm_holding(arm_meta.id).empty()) return;  // gripper already loaded
  const SiteMeta* site = config_->site_near(arm_position_lab(arm_meta.id));
  if (site == nullptr) return;
  std::string occupant = site_occupant(site->name);
  if (occupant.empty()) return;
  set_var(arm_meta.id, "holding", occupant);
  set_var(occupant, "location", "arm:" + arm_meta.id);
  unseat(site->name);
}

void StateTracker::track_release(const DeviceMeta& arm_meta) {
  std::string held = arm_holding(arm_meta.id);
  if (held.empty()) return;
  set_var(arm_meta.id, "holding", "");
  const SiteMeta* site = config_->site_near(arm_position_lab(arm_meta.id));
  if (site != nullptr) {
    seat(site->name, held);
    set_var(held, "location", site->name);
  } else {
    set_var(held, "location", "unknown");
  }
}

void StateTracker::apply_station_postconditions(const DeviceMeta& meta, const Command& cmd) {
  const std::string& id = meta.id;
  auto arg_number = [&](std::string_view key) -> std::optional<double> {
    const json::Value* v = cmd.args.find(key);
    return v != nullptr && v->is_number() ? std::optional<double>(v->as_double()) : std::nullopt;
  };
  auto bump_active = [&](double driving_value, double idle_value) {
    if (find_var(id, "active") != nullptr) {
      set_var(id, "active", driving_value > idle_value ? 1 : var(id, "active").as_int());
    }
  };

  if (cmd.action == "set_door") {
    if (const json::Value* s = cmd.args.find("state"); s != nullptr && s->is_string()) {
      const std::string& state = s->as_string();
      if (state == "open" || state == "closed") {
        const json::Value* door = cmd.args.find("door");
        if (door != nullptr && door->is_string()) {
          set_var(id, "door_" + door->as_string(), state);  // multi-door station
        } else {
          set_var(id, "doorStatus", state);
        }
      }
    }
  } else if (cmd.action == "run_action") {
    set_var(id, "running", 1);
    // Expected outcome: the requested dose lands in the vial believed to be
    // in the chamber.
    if (auto quantity = arg_number("quantity")) {
      for (const SiteMeta& site : config_->sites) {
        if (site.receptacle_device != id) continue;
        std::string occupant = site_occupant(site.name);
        if (!occupant.empty() && find_var(occupant, "solidMg") != nullptr) {
          set_var(occupant, "solidMg", var(occupant, "solidMg").as_double() + *quantity);
        }
      }
    }
  } else if (cmd.action == "stop_action") {
    set_var(id, "running", 0);
  } else if (cmd.action == "draw_solvent") {
    if (auto volume = arg_number("volume")) {
      set_var(id, "reservoirMl", var(id, "reservoirMl").as_double() - *volume);
      set_var(id, "heldMl", var(id, "heldMl").as_double() + *volume);
    }
  } else if (cmd.action == "dose_solvent") {
    auto volume = arg_number("volume");
    const json::Value* target = cmd.args.find("target");
    if (volume && target != nullptr && target->is_string()) {
      set_var(id, "heldMl", var(id, "heldMl").as_double() - *volume);
      const std::string& vial = target->as_string();
      if (find_var(vial, "liquidMl") != nullptr) {
        set_var(vial, "liquidMl", var(vial, "liquidMl").as_double() + *volume);
      }
    }
  } else if (cmd.action == "set_temperature") {
    if (auto celsius = arg_number("celsius")) {
      set_var(id, "targetC", *celsius);
      bump_active(*celsius, 25.0);
    }
  } else if (cmd.action == "stir") {
    if (auto rpm = arg_number("rpm")) {
      set_var(id, "stirRpm", *rpm);
      bump_active(*rpm, 0.0);
    }
  } else if (cmd.action == "shake") {
    if (auto rpm = arg_number("rpm")) {
      set_var(id, "shakeRpm", *rpm);
      bump_active(*rpm, 0.0);
    }
  } else if (cmd.action == "stop") {
    if (find_var(id, "targetC") != nullptr) set_var(id, "targetC", 25.0);
    if (find_var(id, "stirRpm") != nullptr) set_var(id, "stirRpm", 0.0);
    if (find_var(id, "shakeRpm") != nullptr) set_var(id, "shakeRpm", 0.0);
    if (find_var(id, "active") != nullptr) set_var(id, "active", 0);
  } else if (cmd.action == "rotate_platter") {
    if (const json::Value* o = cmd.args.find("orientation"); o != nullptr && o->is_string()) {
      set_var(id, "redDot", o->as_string());
    }
  } else if (cmd.action == "start_spin") {
    set_var(id, "spinning", 1);
  } else if (cmd.action == "stop_spin") {
    set_var(id, "spinning", 0);
  } else if (cmd.action == "decap") {
    set_var(id, "hasStopper", 0);
  } else if (cmd.action == "recap") {
    set_var(id, "hasStopper", 1);
  } else if (cmd.action == "add_solid") {
    if (auto amount = arg_number("amount"); amount && find_var(id, "solidMg") != nullptr) {
      set_var(id, "solidMg", var(id, "solidMg").as_double() + *amount);
    }
  } else if (cmd.action == "add_liquid") {
    if (auto volume = arg_number("volume"); volume && find_var(id, "liquidMl") != nullptr) {
      set_var(id, "liquidMl", var(id, "liquidMl").as_double() + *volume);
    }
  } else if (cmd.action == "start") {
    if (find_var(id, "active") != nullptr) set_var(id, "active", 1);
  } else {
    // Config-declared value actions (generic devices): action sets variable
    // from its argument.
    for (const ValueBinding& vb : meta.value_bindings) {
      if (vb.action != cmd.action) continue;
      if (auto value = arg_number(vb.argument)) set_var(id, vb.variable, *value);
    }
  }
  // measure_solubility and other unknown actions have no tracked
  // postconditions.
}

// ---------------------------------------------------------------------------
// Comparison and resync
// ---------------------------------------------------------------------------

std::vector<std::string> StateTracker::mismatches(const dev::LabStateSnapshot& observed) const {
  std::vector<std::string> out;
  for (const auto& [device, vars] : observed) {
    const DeviceMeta* meta = config_->find_device(device);
    for (const auto& [name, actual] : vars) {
      if (meta != nullptr && std::find(meta->unchecked_vars.begin(), meta->unchecked_vars.end(),
                                       name) != meta->unchecked_vars.end()) {
        continue;
      }
      const json::Value* expected = find_var(device, name);
      if (expected == nullptr) continue;  // not modeled; cannot judge
      if (!values_match(*expected, actual)) out.push_back(device + "." + name);
    }
  }
  return out;
}

void StateTracker::resync(const dev::LabStateSnapshot& observed) {
  for (const auto& [device, vars] : observed) {
    for (const auto& [name, value] : vars) {
      json::Value& slot = state_[device][name];
      if (name == "pose" && !(slot == value)) {
        ++pose_revision_;
        ++pose_revisions_[device];
      }
      slot = value;
    }
  }
}

}  // namespace rabit::core
