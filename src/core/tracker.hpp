// StateTracker — RABIT's symbolic model of the lab.
//
// Implements the state bookkeeping of the Fig. 2 algorithm: S_current is
// seeded from device status commands (SetState, line 3), advanced through
// each action's postconditions (UpdateState, line 11), compared against
// fetched state after execution (lines 13-15), and resynced to the actual
// state (line 16).
//
// Devices without sensors (vials, racks, chamber occupancy) are tracked
// purely symbolically from the configured initial state plus observed
// commands. The gripper has no pressure sensor, so `holding` is inference,
// never observation — which is why the paper's Bug C evades detection.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "devices/device.hpp"

namespace rabit::core {

class StateTracker {
 public:
  explicit StateTracker(const EngineConfig* config);

  /// SetState(S_initial): overlays observed device state onto the configured
  /// initial symbolic state.
  void initialize(const dev::LabStateSnapshot& observed);

  [[nodiscard]] const dev::LabStateSnapshot& state() const { return state_; }

  /// Variable access ("" device/var lookups throw std::out_of_range).
  [[nodiscard]] const json::Value& var(std::string_view device, std::string_view name) const;
  [[nodiscard]] const json::Value* find_var(std::string_view device,
                                            std::string_view name) const;
  void set_var(std::string_view device, std::string_view name, json::Value value);

  /// Convenience readers used throughout the rulebase.
  [[nodiscard]] std::string arm_holding(std::string_view arm) const;
  [[nodiscard]] std::string arm_pose(std::string_view arm) const;
  [[nodiscard]] std::string arm_inside(std::string_view arm) const;
  [[nodiscard]] geom::Vec3 arm_position_lab(std::string_view arm) const;

  /// Monotone counter bumped whenever any tracked "pose" variable changes.
  /// Arm poses are the only tracker state the assembled rule world depends
  /// on, so this is the (O(1)) invalidation key for the memoized rule world.
  [[nodiscard]] std::uint64_t pose_revision() const { return pose_revision_; }

  /// The share of pose_revision() attributable to `device` alone. The rule
  /// world assembled for a moving arm excludes that arm, so its memo key is
  /// pose_revision() - pose_revision(moving_arm): the arm's own pose churn
  /// (every move bumps it) never invalidates its cached world.
  [[nodiscard]] std::uint64_t pose_revision(std::string_view device) const;

  /// Tracked occupant of a deck site ("" when believed free).
  [[nodiscard]] std::string site_occupant(std::string_view site_name) const;
  void seat(std::string_view site_name, std::string vial_id);
  void unseat(std::string_view site_name);

  /// UpdateState(S_current, a): applies the action's postconditions,
  /// including the symbolic side effects (substance amounts, gripper
  /// pick/place inference at known sites, door states).
  void apply_postconditions(const dev::Command& cmd);

  /// Lines 13-15: "device.var" entries where S_actual diverges from
  /// S_expected, ignoring each device's unchecked variables.
  [[nodiscard]] std::vector<std::string> mismatches(
      const dev::LabStateSnapshot& observed) const;

  /// Line 16: S_current <- SetState(S_actual) for every observed variable.
  void resync(const dev::LabStateSnapshot& observed);

 private:
  void apply_arm_postconditions(const DeviceMeta& meta, const dev::Command& cmd);
  void apply_station_postconditions(const DeviceMeta& meta, const dev::Command& cmd);
  void track_release(const DeviceMeta& arm_meta);
  void track_grab(const DeviceMeta& arm_meta);

  const EngineConfig* config_;
  dev::LabStateSnapshot state_;
  /// Tracked tip positions in the lab frame (continuous; excluded from the
  /// malfunction comparison but needed for geometric rules).
  std::map<std::string, geom::Vec3, std::less<>> arm_lab_positions_;
  /// Tracked site occupancy: site name -> vial id.
  std::map<std::string, std::string, std::less<>> site_occupancy_;
  std::uint64_t pose_revision_ = 0;
  std::map<std::string, std::uint64_t, std::less<>> pose_revisions_;
};

}  // namespace rabit::core
