#include "core/engine.hpp"

#include <chrono>
#include <sstream>

namespace rabit::core {

std::string_view to_string(AlertKind k) {
  switch (k) {
    case AlertKind::InvalidCommand: return "Invalid Command!";
    case AlertKind::InvalidTrajectory: return "Invalid trajectory!";
    case AlertKind::DeviceMalfunction: return "Device malfunction!";
  }
  return "unknown";
}

std::string Alert::describe() const {
  std::string out = "[" + std::string(to_string(kind)) + "]";
  if (!rule.empty()) out += " rule " + rule;
  out += ": " + message + " (command: " + command.describe() + ")";
  return out;
}

RabitEngine::RabitEngine(EngineConfig config, const HotPathConfig& hot_path)
    : config_(std::move(config)), tracker_(&config_) {
  set_hot_path(hot_path);
}

void RabitEngine::set_hot_path(const HotPathConfig& hot_path) {
  hot_path_ = hot_path;
  config_.use_indexed_lookup = hot_path.index_lookups;
  for (DeviceMeta& d : config_.devices) d.use_indexed_lookup = hot_path.index_lookups;
  // Warm eagerly so post-construction const lookups never rebuild (and are
  // therefore safe to issue concurrently across fleet streams).
  if (hot_path.index_lookups) config_.warm_index();
  rule_world_cache_ = RuleWorldCache{};
}

void RabitEngine::attach_simulator(sim::ExtendedSimulator* simulator) {
  simulator_ = simulator;
}

void RabitEngine::initialize(const dev::LabStateSnapshot& observed) {
  invalidate_motion_cache();
  tracker_.initialize(observed);
  stats_ = Stats{};
  base_overhead_s_ = 0.0;
}

void RabitEngine::invalidate_motion_cache() {
  last_motion_cmd_.reset();
  last_motion_.reset();
}

namespace {

/// Rewrites aliased command names to their canonical action (the §V-C
/// multiple-commands-per-action extension): the rulebase and tracker only
/// ever reason about canonical names. Returns nullopt when the command is
/// already canonical — the common case — so the hot path never copies a
/// Command just to inspect it.
std::optional<dev::Command> canonicalize_aliased(const EngineConfig& config,
                                                 const dev::Command& cmd) {
  const DeviceMeta* meta = config.find_device(cmd.device);
  if (meta == nullptr) return std::nullopt;
  std::string_view canonical = meta->canonical_action(cmd.action);
  if (canonical == cmd.action) return std::nullopt;
  dev::Command rewritten = cmd;
  rewritten.action = std::string(canonical);
  return rewritten;
}

}  // namespace

std::optional<Alert> RabitEngine::check_command(const dev::Command& raw) {
  ++stats_.commands_checked;
  base_overhead_s_ += kBaseCheckCost_s;
  last_margin_tripped_ = false;
  // Observability hook: when a span is attached, each pipeline phase records
  // its modeled duration (deterministic, exported) and wall microseconds
  // (histograms only). Disabled, every hook below is one branch on span_.
  obs::SpanRecord* span = span_;
  std::chrono::steady_clock::time_point phase_t0;
  if (span != nullptr) phase_t0 = std::chrono::steady_clock::now();

  std::optional<dev::Command> aliased = canonicalize_aliased(config_, raw);
  const dev::Command& cmd = aliased ? *aliased : raw;
  if (span != nullptr) {
    auto t1 = std::chrono::steady_clock::now();
    span->phases.push_back(
        {obs::Phase::Canonicalize, 0.0,
         std::chrono::duration<double, std::micro>(t1 - phase_t0).count()});
    phase_t0 = t1;
  }
  // Modeled cost of this check: the fixed base cost plus whatever latency the
  // simulator accrues during trajectory replay below.
  const double sim_modeled_0 =
      simulator_ != nullptr ? simulator_->modeled_latency_s() : 0.0;
  auto finish_precondition_phase = [&] {
    if (span == nullptr) return;
    auto t1 = std::chrono::steady_clock::now();
    double sim_delta =
        (simulator_ != nullptr ? simulator_->modeled_latency_s() : 0.0) - sim_modeled_0;
    span->phases.push_back(
        {obs::Phase::Precondition, kBaseCheckCost_s + sim_delta,
         std::chrono::duration<double, std::micro>(t1 - phase_t0).count()});
  };

  // Lines 6-7: precondition validation against the tracked state.
  RuleWorldCache* cache = hot_path_.memoize_rule_world ? &rule_world_cache_ : nullptr;
  if (auto hit = check_preconditions(config_, tracker_, cmd, cache)) {
    ++stats_.precondition_alerts;
    finish_precondition_phase();
    return Alert{AlertKind::InvalidCommand, hit->rule, hit->message, cmd};
  }

  // Lines 8-10: trajectory replay when a simulator is available. Without
  // one, only the target location was checked (already done above via G3).
  if (simulator_ != nullptr && config_.variant == Variant::ModifiedWithSim &&
      is_motion_command(cmd)) {
    if (auto motion = analyze_motion(config_, tracker_, cmd)) {
      ++stats_.trajectory_checks;
      // The simulator polls the robot's real position when it can (URSim
      // style); RABIT's tracked position is only the fallback. This is what
      // catches a preceding silently-skipped move (footnote 2).
      if (auto actual = simulator_->polled_arm_position(motion->arm_id)) {
        motion->waypoints.front() = *actual;
      }
      if (motion_observer_) motion_observer_(*motion);
      // Deliberate-entry boxes are skipped via the read-only ignore filter —
      // the world itself is never mutated by a check, so a throwing
      // validation can no longer lose boxes and concurrent checks are safe.
      const std::vector<geom::Vec3>& waypoints = motion->waypoints;
      const double margin = assurance_margin_;
      std::optional<sim::CollisionReport> hit;
      for (std::size_t i = 1; i < waypoints.size() && !hit; ++i) {
        // With an assurance margin set this is the inflated sweep — same
        // sampling, same modeled charge; otherwise the plain replay.
        hit = margin > 0.0 ? simulator_->validate_trajectory_margin(
                                 waypoints[i - 1], waypoints[i], motion->held_clearance,
                                 motion->ignores, margin, /*charge_modeled=*/true)
                           : simulator_->validate_trajectory(waypoints[i - 1], waypoints[i],
                                                             motion->held_clearance,
                                                             motion->ignores);
      }
      if (hit && margin > 0.0) {
        // Inflated trip: re-check uninflated (uncharged — the modeled cost
        // was paid above) so alert verdicts stay exactly the uninflated
        // ones; a trip the re-check clears is the demotion signal.
        hit.reset();
        for (std::size_t i = 1; i < waypoints.size() && !hit; ++i) {
          hit = simulator_->validate_trajectory_margin(waypoints[i - 1], waypoints[i],
                                                       motion->held_clearance, motion->ignores,
                                                       /*margin=*/0.0);
        }
        last_margin_tripped_ = !hit;
      }
      if (hit) {
        ++stats_.trajectory_alerts;
        finish_precondition_phase();
        return Alert{AlertKind::InvalidTrajectory, "SIM",
                     motion->arm_id + " trajectory unsafe: " + hit->describe(), cmd};
      }
      last_motion_cmd_ = raw;
      last_motion_ = std::move(*motion);
    }
  } else if (simulator_ == nullptr && config_.variant == Variant::ModifiedWithSim &&
             is_motion_command(cmd)) {
    // Degraded mode: V3 was configured but the simulator is detached
    // (crashed or disconnected mid-run). The V2 target checks above still
    // ran; count the skipped trajectory replay as a warning instead of
    // losing it silently.
    ++stats_.degraded_checks;
  }
  finish_precondition_phase();
  return std::nullopt;
}

std::optional<MotionAnalysis> RabitEngine::motion_analysis(const dev::Command& raw) const {
  // Served from check_command's replay when asked about the command it just
  // checked (invalidated on every tracked-state mutation, so a hit can never
  // be stale). The assurance fast path lands here once per motion.
  if (last_motion_ && last_motion_cmd_ && last_motion_cmd_->device == raw.device &&
      last_motion_cmd_->action == raw.action && last_motion_cmd_->args == raw.args) {
    return last_motion_;
  }
  std::optional<dev::Command> aliased = canonicalize_aliased(config_, raw);
  const dev::Command& cmd = aliased ? *aliased : raw;
  if (!is_motion_command(cmd)) return std::nullopt;
  std::optional<MotionAnalysis> motion = analyze_motion(config_, tracker_, cmd);
  if (motion && simulator_ != nullptr && !motion->waypoints.empty()) {
    if (auto actual = simulator_->polled_arm_position(motion->arm_id)) {
      motion->waypoints.front() = *actual;
    }
  }
  return motion;
}

void RabitEngine::apply_expected(const dev::Command& cmd) {
  invalidate_motion_cache();
  std::optional<dev::Command> aliased = canonicalize_aliased(config_, cmd);
  tracker_.apply_postconditions(aliased ? *aliased : cmd);
}

std::optional<Alert> RabitEngine::verify_postconditions(const dev::Command& cmd,
                                                        const dev::LabStateSnapshot& observed) {
  std::vector<std::string> diffs = tracker_.mismatches(observed);
  resync_observed(observed);  // line 16, unconditionally
  if (diffs.empty()) return std::nullopt;
  return declare_malfunction(cmd, diffs);
}

std::vector<std::string> RabitEngine::postcondition_mismatches(
    const dev::LabStateSnapshot& observed) const {
  return tracker_.mismatches(observed);
}

void RabitEngine::resync_observed(const dev::LabStateSnapshot& observed) {
  invalidate_motion_cache();
  tracker_.resync(observed);
  ++stats_.resyncs;
}

Alert RabitEngine::declare_malfunction(const dev::Command& cmd,
                                       const std::vector<std::string>& diffs) {
  ++stats_.malfunction_alerts;
  std::ostringstream os;
  os << "state diverged from expectation at:";
  for (const std::string& d : diffs) os << " " << d;
  return Alert{AlertKind::DeviceMalfunction, "POST", os.str(), cmd};
}

void RabitEngine::export_stats(obs::Registry& registry) const {
  auto add = [&](const char* family, const char* help, std::size_t value) {
    if (value > 0) registry.counter(family, "", help).increment(value);
  };
  add("rabit_engine_commands_checked_total", "Commands validated by check_command",
      stats_.commands_checked);
  add("rabit_engine_precondition_alerts_total", "Invalid-command precondition alerts",
      stats_.precondition_alerts);
  add("rabit_engine_trajectory_alerts_total", "Invalid-trajectory simulator alerts",
      stats_.trajectory_alerts);
  add("rabit_engine_malfunction_alerts_total", "Device-malfunction postcondition alerts",
      stats_.malfunction_alerts);
  add("rabit_engine_trajectory_checks_total", "Trajectory replays issued to the simulator",
      stats_.trajectory_checks);
  add("rabit_engine_degraded_checks_total",
      "Motion commands checked at V2 level with the V3 simulator detached",
      stats_.degraded_checks);
  add("rabit_engine_status_repolls_total", "Status re-polls before judging a divergence",
      stats_.status_repolls);
  add("rabit_engine_resyncs_total", "Line-16 resyncs of tracked state onto observed state",
      stats_.resyncs);
}

double RabitEngine::modeled_overhead_s() const {
  return base_overhead_s_ + (simulator_ != nullptr ? simulator_->modeled_latency_s() : 0.0);
}

}  // namespace rabit::core
