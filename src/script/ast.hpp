// AST for the lab-script DSL.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace rabit::script {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One call argument. Device commands require named arguments (mirroring the
/// keyword-argument style of the paper's Python wrappers); user functions
/// take positional ones.
struct CallArg {
  std::string name;  ///< empty for positional
  ExprPtr value;
};

struct NumberLit {
  double value;
};
struct StringLit {
  std::string value;
};
struct BoolLit {
  bool value;
};
struct NullLit {};
struct Ident {
  std::string name;
};
struct ListLit {
  std::vector<ExprPtr> items;
};
struct Unary {
  std::string op;  ///< "-" or "not"
  ExprPtr operand;
};
struct Binary {
  std::string op;  ///< + - * / % == != < <= > >= and or
  ExprPtr lhs;
  ExprPtr rhs;
};
/// f(args) — user-defined or builtin function.
struct Call {
  std::string callee;
  std::vector<CallArg> args;
};
/// base.method(args) — a device command when base names a device.
struct MethodCall {
  ExprPtr base;
  std::string method;
  std::vector<CallArg> args;
};
/// base[index] — list indexing (number) or object lookup (string).
struct Index {
  ExprPtr base;
  ExprPtr index;
};

struct Expr {
  int line = 0;
  std::variant<NumberLit, StringLit, BoolLit, NullLit, Ident, ListLit, Unary, Binary, Call,
               MethodCall, Index>
      node;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

struct LetStmt {
  std::string name;
  ExprPtr value;
};
struct AssignStmt {
  std::string name;
  ExprPtr value;
};
struct ExprStmt {
  ExprPtr expr;
};
struct DefStmt {
  std::string name;
  std::vector<std::string> params;
  std::shared_ptr<Block> body;  ///< shared so closures can outlive the AST
};
struct IfStmt {
  ExprPtr condition;
  Block then_branch;
  Block else_branch;
};
struct WhileStmt {
  ExprPtr condition;
  Block body;
};
struct ReturnStmt {
  ExprPtr value;  ///< may be null for bare `return`
};

struct Stmt {
  int line = 0;
  std::variant<LetStmt, AssignStmt, ExprStmt, DefStmt, IfStmt, WhileStmt, ReturnStmt> node;
};

struct Program {
  Block statements;
};

}  // namespace rabit::script
