// Recursive-descent parser for the lab-script DSL.
#pragma once

#include "script/ast.hpp"
#include "script/lexer.hpp"

namespace rabit::script {

/// Parses a complete script. Throws ScriptError with a line number on any
/// syntax problem.
[[nodiscard]] Program parse(std::string_view source);

}  // namespace rabit::script
