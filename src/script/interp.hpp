// Tree-walking interpreter for the lab-script DSL.
//
// A device method call (`viperx.move_to(position=[x,y,z])`) is the unit the
// tracer intercepts: the interpreter hands it to a CommandSink, which either
// records it, or forwards it through the RABIT supervisor to the backend.
// The sink's return value feeds back into the script (e.g. a solubility
// measurement driving a while loop, as in Fig. 1b).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "devices/device.hpp"
#include "json/json.hpp"
#include "script/ast.hpp"
#include "script/parser.hpp"
#include "trace/trace.hpp"

namespace rabit::script {

/// Thrown when a supervised command triggers a RABIT alert: the experiment
/// halts mid-script, like RATracer raising a Python exception (§II-C).
class ExperimentHalted : public std::runtime_error {
 public:
  explicit ExperimentHalted(const std::string& message)
      : std::runtime_error("experiment halted: " + message) {}
};

/// Where device commands go.
class CommandSink {
 public:
  virtual ~CommandSink() = default;
  /// Executes (or records) a command; the returned value is the command's
  /// script-visible result (null for most commands).
  virtual json::Value on_command(const dev::Command& cmd) = 0;
};

/// Collects commands without executing anything — used to materialize a
/// linear workflow for mutation (the bug-injection pipeline) or inspection.
class RecordingSink : public CommandSink {
 public:
  json::Value on_command(const dev::Command& cmd) override {
    commands_.push_back(cmd);
    return json::Value();
  }
  [[nodiscard]] const std::vector<dev::Command>& commands() const { return commands_; }
  [[nodiscard]] std::vector<dev::Command> take() { return std::move(commands_); }

 private:
  std::vector<dev::Command> commands_;
};

/// Forwards commands through the RABIT supervisor; alerts halt the script.
class SupervisorSink : public CommandSink {
 public:
  explicit SupervisorSink(trace::Supervisor* supervisor);
  json::Value on_command(const dev::Command& cmd) override;

 private:
  trace::Supervisor* supervisor_;
};

/// Script runtime values: JSON data or a device reference.
struct Value {
  json::Value data;
  std::string device;  ///< non-empty when this value names a device

  Value() = default;
  explicit Value(json::Value v) : data(std::move(v)) {}
  [[nodiscard]] static Value device_ref(std::string id) {
    Value v;
    v.device = std::move(id);
    return v;
  }
  [[nodiscard]] bool is_device() const { return !device.empty(); }
};

class Interpreter {
 public:
  explicit Interpreter(CommandSink* sink);

  /// Declares an identifier that resolves to a device (method calls on it
  /// become commands).
  void register_device(const std::string& name);
  /// Registers every device in a registry under its own id.
  void register_devices(const dev::DeviceRegistry& registry);

  /// Seeds a global variable (e.g. the hardcoded `locations` table of
  /// Fig. 6).
  void set_global(const std::string& name, json::Value value);

  /// Parses and runs a script. Throws ScriptError for language errors and
  /// ExperimentHalted when the sink aborts.
  void run(std::string_view source);
  void run(const Program& program);

  /// Reads back a global (for tests); throws std::out_of_range when absent.
  [[nodiscard]] const json::Value& global(const std::string& name) const;

 private:
  struct Function {
    std::vector<std::string> params;
    std::shared_ptr<Block> body;
  };
  struct Scope;

  struct ReturnSignal {
    Value value;
  };

  Value evaluate(const Expr& expr, Scope& scope);
  void execute_block(const Block& block, Scope& scope);
  void execute(const Stmt& stmt, Scope& scope);
  Value call_function(const std::string& name, std::vector<Value> args, int line);
  Value emit_command(const std::string& device, const std::string& method,
                     const std::vector<CallArg>& args, Scope& scope, int line);

  CommandSink* sink_;
  std::map<std::string, Value> globals_;
  std::map<std::string, Function> functions_;
};

}  // namespace rabit::script
