#include "script/parser.hpp"

namespace rabit::script {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parse_program() {
    Program program;
    while (!at_end()) program.statements.push_back(parse_statement());
    return program;
  }

 private:
  [[nodiscard]] const Token& peek(std::size_t offset = 0) const {
    std::size_t index = pos_ + offset;
    return index < tokens_.size() ? tokens_[index] : tokens_.back();
  }
  [[nodiscard]] bool at_end() const { return peek().kind == TokenKind::EndOfFile; }

  const Token& advance() {
    const Token& t = peek();
    if (!at_end()) ++pos_;
    return t;
  }

  [[nodiscard]] bool check_punct(std::string_view text) const {
    return peek().kind == TokenKind::Punct && peek().text == text;
  }
  [[nodiscard]] bool check_keyword(std::string_view word) const {
    return peek().kind == TokenKind::Keyword && peek().text == word;
  }

  bool match_punct(std::string_view text) {
    if (!check_punct(text)) return false;
    advance();
    return true;
  }
  bool match_keyword(std::string_view word) {
    if (!check_keyword(word)) return false;
    advance();
    return true;
  }

  void expect_punct(std::string_view text) {
    if (!match_punct(text)) {
      throw ScriptError("expected '" + std::string(text) + "', got '" + peek().text + "'",
                        peek().line, peek().column);
    }
  }

  std::string expect_identifier(std::string_view what) {
    if (peek().kind != TokenKind::Identifier) {
      throw ScriptError("expected " + std::string(what), peek().line, peek().column);
    }
    return advance().text;
  }

  // -- statements ----------------------------------------------------------

  StmtPtr parse_statement() {
    int line = peek().line;
    auto make = [&](auto node) {
      auto stmt = std::make_unique<Stmt>();
      stmt->line = line;
      stmt->node = std::move(node);
      return stmt;
    };

    if (match_keyword("let")) {
      std::string name = expect_identifier("variable name after 'let'");
      expect_punct("=");
      return make(LetStmt{std::move(name), parse_expression()});
    }
    if (match_keyword("def")) return make(parse_def());
    if (match_keyword("if")) return make(parse_if());
    if (match_keyword("while")) {
      expect_punct("(");
      ExprPtr condition = parse_expression();
      expect_punct(")");
      return make(WhileStmt{std::move(condition), parse_block()});
    }
    if (match_keyword("return")) {
      // `return` directly before a closing brace is a bare return.
      if (check_punct("}")) return make(ReturnStmt{nullptr});
      return make(ReturnStmt{parse_expression()});
    }

    // Assignment (IDENT '=' but not '==') or expression statement.
    if (peek().kind == TokenKind::Identifier && peek(1).kind == TokenKind::Punct &&
        peek(1).text == "=") {
      std::string name = advance().text;
      advance();  // '='
      return make(AssignStmt{std::move(name), parse_expression()});
    }
    return make(ExprStmt{parse_expression()});
  }

  DefStmt parse_def() {
    std::string name = expect_identifier("function name after 'def'");
    expect_punct("(");
    std::vector<std::string> params;
    if (!check_punct(")")) {
      do {
        params.push_back(expect_identifier("parameter name"));
      } while (match_punct(","));
    }
    expect_punct(")");
    auto body = std::make_shared<Block>(parse_block());
    return DefStmt{std::move(name), std::move(params), std::move(body)};
  }

  IfStmt parse_if() {
    expect_punct("(");
    ExprPtr condition = parse_expression();
    expect_punct(")");
    Block then_branch = parse_block();
    Block else_branch;
    if (match_keyword("else")) {
      if (check_keyword("if")) {
        // else-if chains nest as a single-statement else block.
        int line = peek().line;
        advance();
        auto stmt = std::make_unique<Stmt>();
        stmt->line = line;
        stmt->node = parse_if();
        else_branch.push_back(std::move(stmt));
      } else {
        else_branch = parse_block();
      }
    }
    return IfStmt{std::move(condition), std::move(then_branch), std::move(else_branch)};
  }

  Block parse_block() {
    expect_punct("{");
    Block block;
    while (!check_punct("}")) {
      if (at_end()) throw ScriptError("unterminated block", peek().line, peek().column);
      block.push_back(parse_statement());
    }
    advance();  // '}'
    return block;
  }

  // -- expressions (precedence climbing) ------------------------------------

  ExprPtr parse_expression() { return parse_or(); }

  ExprPtr make_expr(int line, auto node) {
    auto e = std::make_unique<Expr>();
    e->line = line;
    e->node = std::move(node);
    return e;
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (check_keyword("or")) {
      int line = advance().line;
      lhs = make_expr(line, Binary{"or", std::move(lhs), parse_and()});
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_comparison();
    while (check_keyword("and")) {
      int line = advance().line;
      lhs = make_expr(line, Binary{"and", std::move(lhs), parse_comparison()});
    }
    return lhs;
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_additive();
    static const char* kOps[] = {"==", "!=", "<=", ">=", "<", ">"};
    for (const char* op : kOps) {
      if (check_punct(op)) {
        int line = advance().line;
        return make_expr(line, Binary{op, std::move(lhs), parse_additive()});
      }
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (check_punct("+") || check_punct("-")) {
      std::string op = peek().text;
      int line = advance().line;
      lhs = make_expr(line, Binary{op, std::move(lhs), parse_multiplicative()});
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (check_punct("*") || check_punct("/") || check_punct("%")) {
      std::string op = peek().text;
      int line = advance().line;
      lhs = make_expr(line, Binary{op, std::move(lhs), parse_unary()});
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (check_punct("-")) {
      int line = advance().line;
      return make_expr(line, Unary{"-", parse_unary()});
    }
    if (check_keyword("not")) {
      int line = advance().line;
      return make_expr(line, Unary{"not", parse_unary()});
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr expr = parse_primary();
    while (true) {
      if (match_punct(".")) {
        int line = peek().line;
        std::string method = expect_identifier("method name after '.'");
        expect_punct("(");
        expr = make_expr(line, MethodCall{std::move(expr), std::move(method), parse_args()});
      } else if (check_punct("[")) {
        int line = advance().line;
        ExprPtr index = parse_expression();
        expect_punct("]");
        expr = make_expr(line, Index{std::move(expr), std::move(index)});
      } else {
        break;
      }
    }
    return expr;
  }

  std::vector<CallArg> parse_args() {
    std::vector<CallArg> args;
    if (!check_punct(")")) {
      do {
        CallArg arg;
        // Named argument: IDENT '=' (but not '==').
        if (peek().kind == TokenKind::Identifier && peek(1).kind == TokenKind::Punct &&
            peek(1).text == "=") {
          arg.name = advance().text;
          advance();  // '='
        }
        arg.value = parse_expression();
        args.push_back(std::move(arg));
      } while (match_punct(","));
    }
    expect_punct(")");
    return args;
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::Number: {
        advance();
        return make_expr(t.line, NumberLit{t.number});
      }
      case TokenKind::String: {
        advance();
        return make_expr(t.line, StringLit{t.text});
      }
      case TokenKind::Keyword: {
        if (t.text == "true" || t.text == "false") {
          advance();
          return make_expr(t.line, BoolLit{t.text == "true"});
        }
        if (t.text == "null") {
          advance();
          return make_expr(t.line, NullLit{});
        }
        throw ScriptError("unexpected keyword '" + t.text + "'", t.line, t.column);
      }
      case TokenKind::Identifier: {
        advance();
        if (match_punct("(")) {
          return make_expr(t.line, Call{t.text, parse_args()});
        }
        return make_expr(t.line, Ident{t.text});
      }
      case TokenKind::Punct: {
        if (t.text == "(") {
          advance();
          ExprPtr inner = parse_expression();
          expect_punct(")");
          return inner;
        }
        if (t.text == "[") {
          advance();
          ListLit list;
          if (!check_punct("]")) {
            do {
              list.items.push_back(parse_expression());
            } while (match_punct(","));
          }
          expect_punct("]");
          return make_expr(t.line, std::move(list));
        }
        throw ScriptError("unexpected token '" + t.text + "'", t.line, t.column);
      }
      case TokenKind::EndOfFile:
        throw ScriptError("unexpected end of script", t.line, t.column);
    }
    throw ScriptError("unexpected token", t.line, t.column);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source) { return Parser(tokenize(source)).parse_program(); }

}  // namespace rabit::script
