#include "script/interp.hpp"

#include <cmath>

namespace rabit::script {

SupervisorSink::SupervisorSink(trace::Supervisor* supervisor) : supervisor_(supervisor) {
  if (supervisor_ == nullptr) throw std::invalid_argument("SupervisorSink: null supervisor");
}

json::Value SupervisorSink::on_command(const dev::Command& cmd) {
  trace::SupervisedStep step = supervisor_->step(cmd);
  if (step.alert) throw ExperimentHalted(step.alert->describe());
  if (step.halted) throw ExperimentHalted("supervisor halted the experiment");
  if (step.exec && step.exec->measurement) return json::Value(*step.exec->measurement);
  return json::Value();
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

struct Interpreter::Scope {
  std::map<std::string, Value> locals;
  Scope* parent = nullptr;
  Interpreter* owner = nullptr;

  Value* find(const std::string& name) {
    if (auto it = locals.find(name); it != locals.end()) return &it->second;
    if (parent != nullptr) return parent->find(name);
    if (auto it = owner->globals_.find(name); it != owner->globals_.end()) return &it->second;
    return nullptr;
  }
};

namespace {

bool truthy(const Value& v, int line) {
  if (v.is_device()) return true;
  const json::Value& d = v.data;
  if (d.is_bool()) return d.as_bool();
  if (d.is_number()) return d.as_double() != 0.0;
  if (d.is_null()) return false;
  if (d.is_string()) return !d.as_string().empty();
  if (d.is_array()) return !d.as_array().empty();
  throw ScriptError("value cannot be used as a condition", line);
}

double as_number(const Value& v, int line) {
  if (!v.is_device() && v.data.is_number()) return v.data.as_double();
  throw ScriptError("expected a number", line);
}

bool values_equal(const Value& a, const Value& b) {
  if (a.is_device() || b.is_device()) return a.device == b.device;
  if (a.data.is_number() && b.data.is_number()) {
    return a.data.as_double() == b.data.as_double();
  }
  return a.data == b.data;
}

}  // namespace

Interpreter::Interpreter(CommandSink* sink) : sink_(sink) {
  if (sink_ == nullptr) throw std::invalid_argument("Interpreter: null sink");
}

void Interpreter::register_device(const std::string& name) {
  globals_[name] = Value::device_ref(name);
}

void Interpreter::register_devices(const dev::DeviceRegistry& registry) {
  for (const dev::Device* d : registry.all()) register_device(d->id());
}

void Interpreter::set_global(const std::string& name, json::Value value) {
  globals_[name] = Value(std::move(value));
}

const json::Value& Interpreter::global(const std::string& name) const {
  auto it = globals_.find(name);
  if (it == globals_.end()) throw std::out_of_range("no global '" + name + "'");
  return it->second.data;
}

void Interpreter::run(std::string_view source) { run(parse(source)); }

void Interpreter::run(const Program& program) {
  Scope top;
  top.owner = this;
  try {
    execute_block(program.statements, top);
  } catch (const ReturnSignal&) {
    // `return` at top level simply ends the script.
  }
}

void Interpreter::execute_block(const Block& block, Scope& scope) {
  for (const StmtPtr& stmt : block) execute(*stmt, scope);
}

void Interpreter::execute(const Stmt& stmt, Scope& scope) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, LetStmt>) {
          scope.locals[node.name] = evaluate(*node.value, scope);
        } else if constexpr (std::is_same_v<T, AssignStmt>) {
          Value* slot = scope.find(node.name);
          if (slot == nullptr) {
            throw ScriptError("assignment to undeclared variable '" + node.name + "'",
                              stmt.line);
          }
          *slot = evaluate(*node.value, scope);
        } else if constexpr (std::is_same_v<T, ExprStmt>) {
          evaluate(*node.expr, scope);
        } else if constexpr (std::is_same_v<T, DefStmt>) {
          functions_[node.name] = Function{node.params, node.body};
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          if (truthy(evaluate(*node.condition, scope), stmt.line)) {
            Scope inner{{}, &scope, this};
            execute_block(node.then_branch, inner);
          } else if (!node.else_branch.empty()) {
            Scope inner{{}, &scope, this};
            execute_block(node.else_branch, inner);
          }
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          std::size_t iterations = 0;
          while (truthy(evaluate(*node.condition, scope), stmt.line)) {
            if (++iterations > 100000) {
              throw ScriptError("while loop exceeded 100000 iterations", stmt.line);
            }
            Scope inner{{}, &scope, this};
            execute_block(node.body, inner);
          }
        } else if constexpr (std::is_same_v<T, ReturnStmt>) {
          ReturnSignal signal;
          if (node.value != nullptr) signal.value = evaluate(*node.value, scope);
          throw signal;
        }
      },
      stmt.node);
}

Value Interpreter::evaluate(const Expr& expr, Scope& scope) {
  return std::visit(
      [&](const auto& node) -> Value {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, NumberLit>) {
          return Value(json::Value(node.value));
        } else if constexpr (std::is_same_v<T, StringLit>) {
          return Value(json::Value(node.value));
        } else if constexpr (std::is_same_v<T, BoolLit>) {
          return Value(json::Value(node.value));
        } else if constexpr (std::is_same_v<T, NullLit>) {
          return Value(json::Value());
        } else if constexpr (std::is_same_v<T, Ident>) {
          Value* v = scope.find(node.name);
          if (v == nullptr) {
            throw ScriptError("unknown variable '" + node.name + "'", expr.line);
          }
          return *v;
        } else if constexpr (std::is_same_v<T, ListLit>) {
          json::Array arr;
          for (const ExprPtr& item : node.items) {
            Value v = evaluate(*item, scope);
            if (v.is_device()) {
              throw ScriptError("device references cannot be stored in lists", expr.line);
            }
            arr.push_back(std::move(v.data));
          }
          return Value(json::Value(std::move(arr)));
        } else if constexpr (std::is_same_v<T, Unary>) {
          Value operand = evaluate(*node.operand, scope);
          if (node.op == "-") return Value(json::Value(-as_number(operand, expr.line)));
          return Value(json::Value(!truthy(operand, expr.line)));
        } else if constexpr (std::is_same_v<T, Binary>) {
          if (node.op == "and") {
            Value lhs = evaluate(*node.lhs, scope);
            if (!truthy(lhs, expr.line)) return Value(json::Value(false));
            return Value(json::Value(truthy(evaluate(*node.rhs, scope), expr.line)));
          }
          if (node.op == "or") {
            Value lhs = evaluate(*node.lhs, scope);
            if (truthy(lhs, expr.line)) return Value(json::Value(true));
            return Value(json::Value(truthy(evaluate(*node.rhs, scope), expr.line)));
          }
          Value lhs = evaluate(*node.lhs, scope);
          Value rhs = evaluate(*node.rhs, scope);
          if (node.op == "==") return Value(json::Value(values_equal(lhs, rhs)));
          if (node.op == "!=") return Value(json::Value(!values_equal(lhs, rhs)));
          if (node.op == "+" && !lhs.is_device() && lhs.data.is_string()) {
            if (!rhs.data.is_string()) {
              throw ScriptError("string concatenation needs two strings", expr.line);
            }
            return Value(json::Value(lhs.data.as_string() + rhs.data.as_string()));
          }
          double a = as_number(lhs, expr.line);
          double b = as_number(rhs, expr.line);
          if (node.op == "+") return Value(json::Value(a + b));
          if (node.op == "-") return Value(json::Value(a - b));
          if (node.op == "*") return Value(json::Value(a * b));
          if (node.op == "/") {
            if (b == 0.0) throw ScriptError("division by zero", expr.line);
            return Value(json::Value(a / b));
          }
          if (node.op == "%") {
            if (b == 0.0) throw ScriptError("modulo by zero", expr.line);
            return Value(json::Value(std::fmod(a, b)));
          }
          if (node.op == "<") return Value(json::Value(a < b));
          if (node.op == "<=") return Value(json::Value(a <= b));
          if (node.op == ">") return Value(json::Value(a > b));
          if (node.op == ">=") return Value(json::Value(a >= b));
          throw ScriptError("unknown operator '" + node.op + "'", expr.line);
        } else if constexpr (std::is_same_v<T, Call>) {
          std::vector<Value> args;
          for (const CallArg& arg : node.args) {
            if (!arg.name.empty()) {
              throw ScriptError("functions take positional arguments only", expr.line);
            }
            args.push_back(evaluate(*arg.value, scope));
          }
          return call_function(node.callee, std::move(args), expr.line);
        } else if constexpr (std::is_same_v<T, MethodCall>) {
          Value base = evaluate(*node.base, scope);
          if (!base.is_device()) {
            throw ScriptError("method call on a non-device value", expr.line);
          }
          return emit_command(base.device, node.method, node.args, scope, expr.line);
        } else if constexpr (std::is_same_v<T, Index>) {
          Value base = evaluate(*node.base, scope);
          Value index = evaluate(*node.index, scope);
          if (base.is_device()) throw ScriptError("cannot index a device", expr.line);
          if (base.data.is_array()) {
            double raw = as_number(index, expr.line);
            auto i = static_cast<std::size_t>(raw);
            const json::Array& arr = base.data.as_array();
            if (raw < 0 || i >= arr.size()) {
              throw ScriptError("list index out of range", expr.line);
            }
            return Value(arr[i]);
          }
          if (base.data.is_object()) {
            if (index.is_device() || !index.data.is_string()) {
              throw ScriptError("object index must be a string", expr.line);
            }
            const json::Value* v = base.data.as_object().find(index.data.as_string());
            if (v == nullptr) {
              throw ScriptError("no key '" + index.data.as_string() + "'", expr.line);
            }
            return Value(*v);
          }
          throw ScriptError("value is not indexable", expr.line);
        }
      },
      expr.node);
}

Value Interpreter::call_function(const std::string& name, std::vector<Value> args, int line) {
  // Builtins.
  if (name == "len") {
    if (args.size() != 1 || args[0].is_device() || !args[0].data.is_array()) {
      throw ScriptError("len() takes one list argument", line);
    }
    return Value(json::Value(static_cast<std::int64_t>(args[0].data.as_array().size())));
  }
  if (name == "abs") {
    if (args.size() != 1) throw ScriptError("abs() takes one number", line);
    return Value(json::Value(std::abs(as_number(args[0], line))));
  }
  if (name == "min" || name == "max") {
    if (args.size() != 2) throw ScriptError(name + "() takes two numbers", line);
    double a = as_number(args[0], line);
    double b = as_number(args[1], line);
    return Value(json::Value(name == "min" ? std::min(a, b) : std::max(a, b)));
  }

  auto it = functions_.find(name);
  if (it == functions_.end()) throw ScriptError("unknown function '" + name + "'", line);
  const Function& fn = it->second;
  if (fn.params.size() != args.size()) {
    throw ScriptError("function '" + name + "' expects " + std::to_string(fn.params.size()) +
                          " arguments, got " + std::to_string(args.size()),
                      line);
  }
  Scope frame;
  frame.owner = this;  // functions see globals, not the caller's locals
  for (std::size_t i = 0; i < args.size(); ++i) {
    frame.locals[fn.params[i]] = std::move(args[i]);
  }
  try {
    execute_block(*fn.body, frame);
  } catch (ReturnSignal& signal) {
    return std::move(signal.value);
  }
  return Value();
}

Value Interpreter::emit_command(const std::string& device, const std::string& method,
                                const std::vector<CallArg>& args, Scope& scope, int line) {
  dev::Command cmd;
  cmd.device = device;
  cmd.action = method;
  cmd.source_line = line;
  json::Object arg_object;
  for (const CallArg& arg : args) {
    if (arg.name.empty()) {
      throw ScriptError("device commands take named arguments (e.g. position=[x,y,z])", line);
    }
    Value v = evaluate(*arg.value, scope);
    if (v.is_device()) {
      // Passing a device hands over its id (e.g. target=vial_1).
      arg_object[arg.name] = v.device;
    } else {
      arg_object[arg.name] = std::move(v.data);
    }
  }
  cmd.args = json::Value(std::move(arg_object));
  return Value(sink_->on_command(cmd));
}

}  // namespace rabit::script
