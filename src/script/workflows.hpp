// Canonical experiment workflows, written in the lab-script DSL.
//
// These mirror the paper's scripts: the automated solubility measurement of
// Fig. 1(b) (production deck, composite pick/place commands, a measurement-
// driven dosing loop) and the testbed workflow of Fig. 5 (primitive move and
// gripper commands through helper functions, per-arm coordinate tables as in
// the Fig. 6 utilities file).
#pragma once

#include <string>
#include <vector>

#include "devices/device.hpp"
#include "json/json.hpp"
#include "sim/backend.hpp"

namespace rabit::script {

/// Builds the Fig. 6-style hardcoded locations table for `backend`: for
/// every site and every arm, the site's coordinates in that arm's own frame
/// ("pickup") plus a raised approach point ("safe"). Structure:
///   { "<site>": { "<arm>": { "pickup": [x,y,z], "safe": [x,y,z] } } }
[[nodiscard]] json::Value locations_table(const sim::LabBackend& backend,
                                          double safe_lift = 0.22);

/// Shared helper functions (the `workflow_utils` of Fig. 5): primitive
/// pick-up / place sequences over move and gripper commands.
[[nodiscard]] std::string helpers_source();

/// The safe testbed workflow of Fig. 5: ViperX doses vial_1 at the dosing
/// device using primitives, parks, then Ned2 retrieves the vial. Expects the
/// globals `locations` (from locations_table) and registered devices
/// viperx/ned2/dosing_device/vial_1.
[[nodiscard]] std::string testbed_workflow_source();

/// The Fig. 1(b) automated solubility measurement on the production deck:
/// dose solid, add solvent until dissolved (camera feedback loop), stir,
/// return the vial. Uses composite pick_object/place_object commands.
[[nodiscard]] std::string solubility_workflow_source();

/// Convenience: interprets a workflow with a RecordingSink against
/// `backend`'s devices and returns the linear command stream (workflows with
/// measurement feedback unroll with measurements reading as dissolved).
[[nodiscard]] std::vector<dev::Command> record_workflow(const sim::LabBackend& backend,
                                                        const std::string& source);

}  // namespace rabit::script
