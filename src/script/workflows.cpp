#include "script/workflows.hpp"

#include "devices/robot_arm.hpp"
#include "script/interp.hpp"

namespace rabit::script {

json::Value locations_table(const sim::LabBackend& backend, double safe_lift) {
  json::Object table;
  for (const sim::SiteBinding& site : backend.sites()) {
    json::Object per_arm;
    for (const dev::Device* d : backend.registry().all()) {
      const auto* arm = dynamic_cast<const dev::RobotArmDevice*>(d);
      if (arm == nullptr) continue;
      geom::Vec3 pickup = arm->to_local(site.lab_position);
      geom::Vec3 safe = pickup + geom::Vec3(0, 0, safe_lift);
      json::Object coords;
      coords["pickup"] = json::Array{pickup.x, pickup.y, pickup.z};
      coords["safe"] = json::Array{safe.x, safe.y, safe.z};
      per_arm[arm->id()] = std::move(coords);
    }
    table[site.name] = std::move(per_arm);
  }
  return json::Value(std::move(table));
}

std::string helpers_source() {
  // The `workflow_utils` of Fig. 5: pick-up and place helpers over primitive
  // move and gripper commands. A bug inside these definitions (e.g. the
  // reordered gripper commands of §IV category 3) silently changes every
  // workflow that calls them.
  return R"SCRIPT(
def arm_pick_up(arm, safe, grab) {
    arm.move_to(position=safe)
    arm.open_gripper()
    arm.move_to(position=grab)
    arm.close_gripper()
    arm.move_to(position=safe)
}

def arm_place(arm, safe, grab) {
    arm.move_to(position=safe)
    arm.move_to(position=grab)
    arm.open_gripper()
    arm.move_to(position=safe)
}
)SCRIPT";
}

std::string testbed_workflow_source() {
  // The safe workflow of Fig. 5: ViperX doses vial_1 with solid at the
  // dosing device, parks, and Ned2 relocates the vial on the grid.
  return helpers_source() + R"SCRIPT(
# Set vial locations (per-arm frames, as in the Fig. 6 utilities file)
let viperx_grid   = locations["grid.NW"]["viperx"]
let viperx_dosing = locations["dosing_device"]["viperx"]
let ned2_grid_nw  = locations["grid.NW"]["ned2"]
let ned2_grid_sw  = locations["grid.SW"]["ned2"]

# Start workflow
dosing_device.set_door(state="open")
vial_1.decap()
viperx.go_home()

arm_pick_up(viperx, viperx_grid["safe"], viperx_grid["pickup"])
arm_place(viperx, viperx_dosing["safe"], viperx_dosing["pickup"])
viperx.go_home()

dosing_device.set_door(state="closed")
dosing_device.run_action(delay=3, quantity=5)
dosing_device.stop_action(delay=0)
dosing_device.set_door(state="open")

arm_pick_up(viperx, viperx_dosing["safe"], viperx_dosing["pickup"])
arm_place(viperx, viperx_grid["safe"], viperx_grid["pickup"])

dosing_device.set_door(state="closed")
viperx.go_home()
viperx.go_sleep()

arm_pick_up(ned2, ned2_grid_nw["safe"], ned2_grid_nw["pickup"])
arm_place(ned2, ned2_grid_sw["safe"], ned2_grid_sw["pickup"])
ned2.go_sleep()
)SCRIPT";
}

std::string solubility_workflow_source() {
  // Fig. 1(b): automated solubility measurement on the production deck.
  return R"SCRIPT(
# dose solid into the vial
dosing_device.set_door(state="open")
vial_1.decap()
ur3e.pick_object(site="grid.NW")
ur3e.place_object(site="dosing_device")
ur3e.go_home()
dosing_device.set_door(state="closed")
dosing_device.run_action(delay=3, quantity=5)
dosing_device.stop_action(delay=0)
dosing_device.set_door(state="open")
ur3e.pick_object(site="dosing_device")
ur3e.place_object(site="hotplate")
ur3e.go_home()
dosing_device.set_door(state="closed")

# dose initial solvent and stir
syringe_pump.draw_solvent(volume=2)
syringe_pump.dose_solvent(volume=2, target=vial_1)
hotplate.stir(rpm=400)
let solubility = camera.measure_solubility(target=vial_1)

# keep adding solvent until the solid dissolves
while (solubility < 0.95) {
    syringe_pump.draw_solvent(volume=1)
    syringe_pump.dose_solvent(volume=1, target=vial_1)
    hotplate.stir(rpm=400)
    solubility = camera.measure_solubility(target=vial_1)
}

hotplate.stop()
ur3e.pick_object(site="hotplate")
ur3e.place_object(site="grid.NW")
ur3e.go_home()
)SCRIPT";
}

namespace {

/// Recording sink that answers measurement commands as "fully dissolved" so
/// feedback loops unroll to their shortest form.
class UnrollingSink : public RecordingSink {
 public:
  json::Value on_command(const dev::Command& cmd) override {
    RecordingSink::on_command(cmd);
    if (cmd.action == "measure_solubility") return json::Value(1.0);
    return json::Value();
  }
};

}  // namespace

std::vector<dev::Command> record_workflow(const sim::LabBackend& backend,
                                          const std::string& source) {
  UnrollingSink sink;
  Interpreter interp(&sink);
  interp.register_devices(backend.registry());
  interp.set_global("locations", locations_table(backend));
  interp.run(source);
  return sink.take();
}

}  // namespace rabit::script
