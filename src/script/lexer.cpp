#include "script/lexer.hpp"

#include <algorithm>
#include <cctype>

namespace rabit::script {

namespace {

bool is_keyword(const std::string& word) {
  static const char* kKeywords[] = {"let",    "def",  "if",  "else", "while", "return",
                                    "true",   "false", "null", "and",  "or",    "not"};
  for (const char* k : kKeywords) {
    if (word == k) return true;
  }
  return false;
}

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  int line = 1;
  std::size_t line_start = 0;  // index just past the most recent newline

  auto peek = [&](std::size_t offset = 0) -> char {
    return i + offset < source.size() ? source[i + offset] : '\0';
  };
  auto column_at = [&](std::size_t index) -> int {
    return static_cast<int>(index - line_start) + 1;
  };

  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t start = i;
      while (i < source.size() && (std::isalnum(static_cast<unsigned char>(source[i])) != 0 ||
                                   source[i] == '_')) {
        ++i;
      }
      std::string word(source.substr(start, i - start));
      tokens.push_back(Token{is_keyword(word) ? TokenKind::Keyword : TokenKind::Identifier,
                             std::move(word), 0.0, line, column_at(start)});
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
      std::size_t start = i;
      while (i < source.size() && (std::isdigit(static_cast<unsigned char>(source[i])) != 0 ||
                                   source[i] == '.' || source[i] == 'e' || source[i] == 'E' ||
                                   ((source[i] == '+' || source[i] == '-') && i > start &&
                                    (source[i - 1] == 'e' || source[i - 1] == 'E')))) {
        ++i;
      }
      std::string text(source.substr(start, i - start));
      Token t{TokenKind::Number, text, 0.0, line, column_at(start)};
      try {
        t.number = std::stod(text);
      } catch (const std::exception&) {
        throw ScriptError("malformed number '" + text + "'", line, column_at(start));
      }
      tokens.push_back(std::move(t));
      continue;
    }

    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t start = i;
      ++i;
      std::string value;
      while (i < source.size() && source[i] != quote) {
        if (source[i] == '\n') throw ScriptError("unterminated string", line, column_at(start));
        if (source[i] == '\\' && i + 1 < source.size()) {
          ++i;
          switch (source[i]) {
            case 'n': value.push_back('\n'); break;
            case 't': value.push_back('\t'); break;
            case '\\': value.push_back('\\'); break;
            case '"': value.push_back('"'); break;
            case '\'': value.push_back('\''); break;
            default: throw ScriptError("bad escape in string", line, column_at(i));
          }
          ++i;
          continue;
        }
        value.push_back(source[i]);
        ++i;
      }
      if (i >= source.size()) throw ScriptError("unterminated string", line, column_at(start));
      ++i;  // closing quote
      tokens.push_back(Token{TokenKind::String, std::move(value), 0.0, line, column_at(start)});
      continue;
    }

    // Two-character operators first.
    if ((c == '=' || c == '!' || c == '<' || c == '>') && peek(1) == '=') {
      tokens.push_back(Token{TokenKind::Punct, std::string{c, '='}, 0.0, line, column_at(i)});
      i += 2;
      continue;
    }
    static const std::string kSingles = "(){}[],.=<>+-*/%";
    if (kSingles.find(c) != std::string::npos) {
      tokens.push_back(Token{TokenKind::Punct, std::string(1, c), 0.0, line, column_at(i)});
      ++i;
      continue;
    }

    throw ScriptError(std::string("unexpected character '") + c + "'", line, column_at(i));
  }

  tokens.push_back(Token{TokenKind::EndOfFile, "", 0.0, line,
                         column_at(std::min(i, source.size()))});
  return tokens;
}

}  // namespace rabit::script
