// Lexer for the lab-script DSL.
//
// The paper's experiment scripts are Python programs over thin device
// wrappers (Fig. 1b, Fig. 5). This repository substitutes a small imperative
// scripting language with the same shape: device method calls with named
// arguments, helper function definitions, conditionals and loops. RABIT only
// ever sees the resulting command stream, so any front end with these
// constructs exercises the same middleware paths.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rabit::script {

enum class TokenKind {
  Identifier,
  Number,
  String,
  Keyword,  // let def if else while return true false null and or not in
  Punct,    // ( ) { } [ ] , . = == != < <= > >= + - * / %
  EndOfFile,
};

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;
  double number = 0.0;  ///< valid when kind == Number
  int line = 0;         ///< 1-based source line
  int column = 0;       ///< 1-based column of the token's first character
};

class ScriptError : public std::runtime_error {
 public:
  ScriptError(const std::string& message, int line)
      : std::runtime_error("script error at line " + std::to_string(line) + ": " + message),
        line_(line) {}
  ScriptError(const std::string& message, int line, int column)
      : std::runtime_error("script error at line " + std::to_string(line) + ", column " +
                           std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}
  [[nodiscard]] int line() const { return line_; }
  /// 1-based column, or 0 when the error site is known only by line.
  [[nodiscard]] int column() const { return column_; }

 private:
  int line_;
  int column_ = 0;
};

/// Tokenizes a complete script. '#' starts a line comment. Throws
/// ScriptError on malformed input.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace rabit::script
