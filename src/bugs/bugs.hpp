// rabit::bugs — mutation-based bug injection and the §IV bug catalogue.
//
// In the paper, a collaborator acting as a "naive programmer" introduced 16
// potentially unsafe program changes by adding, deleting, updating, or
// reordering one or two lines in the experiment scripts (Figs. 5 and 6).
// This module reproduces that evaluation: each catalogued bug is a small,
// named mutation of a safe command stream, annotated with its §IV category,
// its Table V severity class, and the RABIT variant that first detects it.
// A seeded random mutator generates the "large bug datasets" the paper names
// as future work.
#pragma once

#include <functional>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "devices/device.hpp"
#include "sim/backend.hpp"
#include "trace/trace.hpp"

namespace rabit::bugs {

/// The unsafe-behaviour categories of §IV plus the mutation kinds that do
/// not fit the four named ones.
enum class BugCategory {
  DoorInteraction,   ///< §IV category 1
  ArmArmCollision,   ///< §IV category 2
  MissingVial,       ///< §IV category 3
  CoordinateChange,  ///< §IV category 4
  ArgumentChange,    ///< bad action arguments (overdose, over-temperature)
  OrderChange,       ///< reordered / duplicated commands
};

[[nodiscard]] std::string_view to_string(BugCategory c);

/// Editing operations over a linear command stream — the equivalents of the
/// collaborator's script edits.
class StreamEditor {
 public:
  explicit StreamEditor(std::vector<dev::Command> commands)
      : commands_(std::move(commands)) {}

  [[nodiscard]] const std::vector<dev::Command>& commands() const { return commands_; }
  [[nodiscard]] std::vector<dev::Command> take() { return std::move(commands_); }
  [[nodiscard]] std::size_t size() const { return commands_.size(); }

  /// Index of the nth (0-based) command matching device+action, optionally
  /// refined by an argument predicate. Throws std::out_of_range if absent.
  [[nodiscard]] std::size_t find(std::string_view device, std::string_view action,
                                 std::size_t nth = 0,
                                 const std::function<bool(const json::Value&)>& args_match =
                                     nullptr) const;

  void erase(std::size_t index, std::size_t count = 1);
  void insert(std::size_t index, dev::Command cmd);
  void append(dev::Command cmd) { commands_.push_back(std::move(cmd)); }
  void swap(std::size_t i, std::size_t j);
  void set_arg(std::size_t index, std::string_view key, json::Value value);

  /// Replaces every move_to whose position is within `tol` of `old_position`
  /// (per axis) with `new_position` — editing one entry of the hardcoded
  /// locations file (Fig. 6 / Bug D). Returns the number of edits.
  std::size_t replace_position(std::string_view device, const geom::Vec3& old_position,
                               const geom::Vec3& new_position, double tol = 1e-6);

 private:
  std::vector<dev::Command> commands_;
};

/// Builds commands succinctly.
[[nodiscard]] dev::Command cmd(std::string device, std::string action, json::Object args = {});
[[nodiscard]] dev::Command move_cmd(std::string arm, const geom::Vec3& local_position);

/// One catalogued bug.
struct BugSpec {
  std::string id;  ///< "H1".."H6", "M1".."M6", "L1".."L3", "ML1"
  std::string name;
  std::string description;
  BugCategory category;
  dev::Severity severity;  ///< Table V class of the damage it causes
  /// First RABIT variant that detects it; nullopt = never detected (even
  /// with the Extended Simulator).
  std::optional<core::Variant> detected_from;
  /// Builds the *buggy* command stream for a fresh testbed deck.
  std::function<std::vector<dev::Command>(const sim::LabBackend&)> build;
  /// Builds the corresponding *safe* baseline stream (for the
  /// false-positive check).
  std::function<std::vector<dev::Command>(const sim::LabBackend&)> build_safe;
};

/// The 16 bugs of the paper's uncontrolled evaluation.
[[nodiscard]] const std::vector<BugSpec>& bug_catalogue();

/// Outcome of running one stream under one RABIT variant on a fresh testbed.
struct BugOutcome {
  bool damaged = false;
  std::optional<dev::Severity> damage_severity;
  bool alerted = false;
  std::string alert_rule;
  /// Detected = an alert fired no later than the first damaging command.
  bool detected = false;
  trace::RunReport report;
};

/// Runs `commands` under `variant` (attaching an Extended Simulator for
/// ModifiedWithSim) on a freshly built testbed deck.
[[nodiscard]] BugOutcome evaluate_stream(const std::vector<dev::Command>& commands,
                                         core::Variant variant);

/// Same, but with explicit Supervisor options — used by the chaos-campaign
/// bench to prove the detection progression is unchanged when the recovery
/// ladder is enabled.
[[nodiscard]] BugOutcome evaluate_stream(const std::vector<dev::Command>& commands,
                                         core::Variant variant,
                                         const trace::Supervisor::Options& options);

/// Same, with explicit hot-path toggles — the verdict-parity tests and
/// bench_throughput run every catalogue bug with the optimizations on and
/// off and require identical outcomes.
[[nodiscard]] BugOutcome evaluate_stream(const std::vector<dev::Command>& commands,
                                         core::Variant variant,
                                         const trace::Supervisor::Options& options,
                                         const core::HotPathConfig& hot_path);

/// Convenience: builds the bug's stream and evaluates it.
[[nodiscard]] BugOutcome evaluate_bug(const BugSpec& bug, core::Variant variant);

// ---------------------------------------------------------------------------
// Synthetic bug datasets (the paper's stated future work: "generating large
// bug datasets — a challenging task in itself").
// ---------------------------------------------------------------------------

enum class MutationKind { DeleteCommand, SwapAdjacent, ScaleArgument, ShiftCoordinate };

struct SyntheticBug {
  MutationKind kind;
  std::size_t target_index = 0;
  std::string detail;
  std::vector<dev::Command> commands;
};

/// Applies one random mutation to `base`. Deterministic under a seeded rng.
[[nodiscard]] SyntheticBug random_mutation(const std::vector<dev::Command>& base,
                                           std::mt19937& rng);

/// Same draw over the caller's std::mt19937_64 chain — the scenario factory
/// threads one master seed chain through every generator (rad synthesis,
/// mutations, fault schedules) so a campaign is reproducible end-to-end
/// from a single seed.
[[nodiscard]] SyntheticBug random_mutation(const std::vector<dev::Command>& base,
                                           std::mt19937_64& rng);

}  // namespace rabit::bugs
