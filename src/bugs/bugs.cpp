#include "bugs/bugs.hpp"

#include <cmath>

#include "devices/robot_arm.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"
#include "sim/extended_sim.hpp"

namespace rabit::bugs {

using dev::Command;
using dev::Severity;
using geom::Vec3;
using sim::deck_ids::kDosingDevice;
using sim::deck_ids::kHotplate;
using sim::deck_ids::kCentrifuge;
using sim::deck_ids::kNed2;
using sim::deck_ids::kViperX;
using sim::deck_ids::kVial1;
using sim::deck_ids::kVial2;

std::string_view to_string(BugCategory c) {
  switch (c) {
    case BugCategory::DoorInteraction: return "door interaction";
    case BugCategory::ArmArmCollision: return "two-arm collision";
    case BugCategory::MissingVial: return "experiment without a vial";
    case BugCategory::CoordinateChange: return "position coordinate change";
    case BugCategory::ArgumentChange: return "argument change";
    case BugCategory::OrderChange: return "command order change";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// StreamEditor
// ---------------------------------------------------------------------------

std::size_t StreamEditor::find(std::string_view device, std::string_view action,
                               std::size_t nth,
                               const std::function<bool(const json::Value&)>& args_match) const {
  std::size_t seen = 0;
  for (std::size_t i = 0; i < commands_.size(); ++i) {
    const Command& c = commands_[i];
    if (c.device != device || c.action != action) continue;
    if (args_match && !args_match(c.args)) continue;
    if (seen == nth) return i;
    ++seen;
  }
  throw std::out_of_range("StreamEditor::find: no match for " + std::string(device) + "." +
                          std::string(action) + " #" + std::to_string(nth));
}

void StreamEditor::erase(std::size_t index, std::size_t count) {
  if (index + count > commands_.size()) throw std::out_of_range("StreamEditor::erase");
  commands_.erase(commands_.begin() + static_cast<std::ptrdiff_t>(index),
                  commands_.begin() + static_cast<std::ptrdiff_t>(index + count));
}

void StreamEditor::insert(std::size_t index, Command cmd) {
  if (index > commands_.size()) throw std::out_of_range("StreamEditor::insert");
  commands_.insert(commands_.begin() + static_cast<std::ptrdiff_t>(index), std::move(cmd));
}

void StreamEditor::swap(std::size_t i, std::size_t j) {
  if (i >= commands_.size() || j >= commands_.size()) {
    throw std::out_of_range("StreamEditor::swap");
  }
  std::swap(commands_[i], commands_[j]);
}

void StreamEditor::set_arg(std::size_t index, std::string_view key, json::Value value) {
  if (index >= commands_.size()) throw std::out_of_range("StreamEditor::set_arg");
  commands_[index].args.as_object()[key] = std::move(value);
}

namespace {

std::optional<Vec3> position_of(const Command& c) {
  const json::Value* pos = c.args.find("position");
  if (pos == nullptr || !pos->is_array() || pos->as_array().size() != 3) return std::nullopt;
  const json::Array& p = pos->as_array();
  return Vec3(p[0].as_double(), p[1].as_double(), p[2].as_double());
}

}  // namespace

std::size_t StreamEditor::replace_position(std::string_view device, const Vec3& old_position,
                                           const Vec3& new_position, double tol) {
  std::size_t edits = 0;
  for (Command& c : commands_) {
    if (c.device != device || c.action != "move_to") continue;
    auto pos = position_of(c);
    if (!pos) continue;
    if (std::abs(pos->x - old_position.x) <= tol && std::abs(pos->y - old_position.y) <= tol &&
        std::abs(pos->z - old_position.z) <= tol) {
      c.args.as_object()["position"] =
          json::Array{new_position.x, new_position.y, new_position.z};
      ++edits;
    }
  }
  return edits;
}

Command cmd(std::string device, std::string action, json::Object args) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

Command move_cmd(std::string arm, const Vec3& local_position) {
  json::Object args;
  args["position"] = json::Array{local_position.x, local_position.y, local_position.z};
  return cmd(std::move(arm), "move_to", std::move(args));
}

// ---------------------------------------------------------------------------
// Catalogue helpers
// ---------------------------------------------------------------------------

namespace {

json::Object door_arg(const char* state) {
  json::Object o;
  o["state"] = std::string(state);
  return o;
}

json::Object site_arg(const char* site) {
  json::Object o;
  o["site"] = std::string(site);
  return o;
}

/// Arm-local coordinates of a deck site.
Vec3 site_local(const sim::LabBackend& b, const char* arm, const char* site) {
  const auto& a = dynamic_cast<const dev::RobotArmDevice&>(*b.registry().find(arm));
  return a.to_local(b.find_site(site)->lab_position);
}

Vec3 lab_to_local(const sim::LabBackend& b, const char* arm, const Vec3& lab) {
  const auto& a = dynamic_cast<const dev::RobotArmDevice&>(*b.registry().find(arm));
  return a.to_local(lab);
}

/// The standard primitive testbed workflow (Fig. 5's safe form).
std::vector<Command> base_stream(const sim::LabBackend& b) {
  return script::record_workflow(b, script::testbed_workflow_source());
}

/// A composite-command dosing workflow with two iterations (the production
/// style of Fig. 1b, run on the testbed for the H4 scenario).
std::vector<Command> composite_stream(const sim::LabBackend& b) {
  (void)b;
  std::vector<Command> s;
  auto iteration = [&s](const char* vial, const char* slot) {
    s.push_back(cmd(kDosingDevice, "set_door", door_arg("open")));
    s.push_back(cmd(vial, "decap"));
    s.push_back(cmd(kViperX, "pick_object", site_arg(slot)));
    s.push_back(cmd(kViperX, "place_object", site_arg("dosing_device")));
    s.push_back(cmd(kViperX, "go_home"));
    s.push_back(cmd(kDosingDevice, "set_door", door_arg("closed")));
    s.push_back(cmd(kDosingDevice, "run_action", [] {
      json::Object o;
      o["quantity"] = 5.0;
      o["delay"] = 3;
      return o;
    }()));
    s.push_back(cmd(kDosingDevice, "stop_action"));
    s.push_back(cmd(kDosingDevice, "set_door", door_arg("open")));
    s.push_back(cmd(kViperX, "pick_object", site_arg("dosing_device")));
    s.push_back(cmd(kViperX, "place_object", site_arg(slot)));
    s.push_back(cmd(kViperX, "go_home"));
    s.push_back(cmd(kDosingDevice, "set_door", door_arg("closed")));
  };
  iteration(kVial1, "grid.NW");
  iteration(kVial2, "grid.SE");
  return s;
}

/// Insertion point "after ViperX first returns home mid-workflow".
std::size_t after_second_go_home(const StreamEditor& e) {
  return e.find(kViperX, "go_home", 1) + 1;
}

}  // namespace

// ---------------------------------------------------------------------------
// The 16-bug catalogue
// ---------------------------------------------------------------------------

const std::vector<BugSpec>& bug_catalogue() {
  static const std::vector<BugSpec> kCatalogue = [] {
    std::vector<BugSpec> bugs;

    // ---- High severity: breaking expensive equipment --------------------

    bugs.push_back(BugSpec{
        "H1", "bug-a-door-closed-entry",
        "Fig. 5 Bug A: the set_door(open) before retrieving the vial is omitted; "
        "ViperX drives into the dosing device's closed glass door.",
        BugCategory::DoorInteraction, Severity::High, core::Variant::Initial,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          e.erase(e.find(kDosingDevice, "set_door", 1, [](const json::Value& a) {
            return a.get_or("state", std::string()) == "open";
          }));
          return e.take();
        },
        base_stream});

    bugs.push_back(BugSpec{
        "H2", "door-closed-on-arm",
        "set_door(closed) is issued while ViperX is still inside the dosing device; "
        "the glass door swings into the arm (footnote 1 of the paper).",
        BugCategory::DoorInteraction, Severity::High, core::Variant::Initial,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          Vec3 pickup = site_local(b, kViperX, "dosing_device");
          std::size_t inside = e.find(kViperX, "move_to", 0, [&](const json::Value& a) {
            json::Value copy = a;
            Command probe;
            probe.args = copy;
            auto p = position_of(probe);
            return p && std::abs(p->x - pickup.x) < 1e-6 && std::abs(p->y - pickup.y) < 1e-6 &&
                   std::abs(p->z - pickup.z) < 1e-6;
          });
          e.insert(inside + 1, cmd(kDosingDevice, "set_door", door_arg("closed")));
          return e.take();
        },
        base_stream});

    bugs.push_back(BugSpec{
        "H3", "move-into-hotplate",
        "A waypoint's z coordinate is lowered so the target lies inside the hotplate "
        "body; the arm rams the station.",
        BugCategory::CoordinateChange, Severity::High, core::Variant::Initial,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          std::size_t at = after_second_go_home(e);
          e.insert(at, move_cmd(kViperX, lab_to_local(b, kViperX, Vec3(-0.35, 0.25, 0.08))));
          e.insert(at + 1, cmd(kViperX, "go_home"));
          return e.take();
        },
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          std::size_t at = after_second_go_home(e);
          e.insert(at, move_cmd(kViperX, lab_to_local(b, kViperX, Vec3(-0.35, 0.25, 0.30))));
          e.insert(at + 1, cmd(kViperX, "go_home"));
          return e.take();
        }});

    bugs.push_back(BugSpec{
        "H4", "vial-left-in-dosing-device",
        "The retrieval of the vial from the dosing device is omitted (Fig. 1b line 15); "
        "the next iteration's vial crashes into the one left inside.",
        BugCategory::OrderChange, Severity::High, core::Variant::Initial,
        [](const sim::LabBackend& b) {
          StreamEditor e(composite_stream(b));
          std::size_t pick_back = e.find(kViperX, "pick_object", 0, [](const json::Value& a) {
            return a.get_or("site", std::string()) == "dosing_device";
          });
          e.erase(pick_back, 2);  // pick_object(dosing) + place_object(grid.NW)
          return e.take();
        },
        composite_stream});

    bugs.push_back(BugSpec{
        "H5", "hotplate-over-threshold",
        "The hotplate setpoint is raised past RABIT's configured 150 C threshold "
        "(still below the 340 C firmware limit).",
        BugCategory::ArgumentChange, Severity::High, core::Variant::Initial,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          e.append(cmd(kHotplate, "set_temperature", [] {
            json::Object o;
            o["celsius"] = 200.0;
            return o;
          }()));
          return e.take();
        },
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          e.append(cmd(kHotplate, "set_temperature", [] {
            json::Object o;
            o["celsius"] = 120.0;
            return o;
          }()));
          return e.take();
        }});

    bugs.push_back(BugSpec{
        "H6", "enter-centrifuge-door-closed",
        "ViperX reaches into the centrifuge without opening its door first.",
        BugCategory::DoorInteraction, Severity::High, core::Variant::Initial,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          std::size_t at = after_second_go_home(e);
          e.insert(at, move_cmd(kViperX, lab_to_local(b, kViperX, Vec3(-0.45, 0.0, 0.30))));
          e.insert(at + 1, move_cmd(kViperX, site_local(b, kViperX, "centrifuge")));
          e.insert(at + 2, cmd(kViperX, "go_home"));
          return e.take();
        },
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          std::size_t at = after_second_go_home(e);
          e.insert(at, cmd(kCentrifuge, "set_door", door_arg("open")));
          e.insert(at + 1, move_cmd(kViperX, lab_to_local(b, kViperX, Vec3(-0.45, 0.0, 0.30))));
          e.insert(at + 2, move_cmd(kViperX, site_local(b, kViperX, "centrifuge")));
          e.insert(at + 3,
                   move_cmd(kViperX, lab_to_local(b, kViperX, Vec3(-0.45, 0.0, 0.30))));
          e.insert(at + 4, cmd(kViperX, "go_home"));
          e.insert(at + 5, cmd(kCentrifuge, "set_door", door_arg("closed")));
          return e.take();
        }});

    // ---- Medium-high severity: platform, walls, grid, cheap arms --------

    bugs.push_back(BugSpec{
        "M1", "bug-b-two-arm-collision",
        "Fig. 5 Bug B: Ned2 is sent to a 'random' point near the grid while ViperX "
        "still hovers there; the arms collide.",
        BugCategory::ArmArmCollision, Severity::MediumHigh, core::Variant::Modified,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          // Before the final door-close, while ViperX is still at the grid.
          std::size_t at = e.find(kDosingDevice, "set_door", 1, [](const json::Value& a) {
            return a.get_or("state", std::string()) == "closed";
          });
          e.insert(at, move_cmd(kNed2, lab_to_local(b, kNed2, Vec3(0.30, 0.32, 0.28))));
          return e.take();
        },
        base_stream});

    bugs.push_back(BugSpec{
        "M2", "bug-d-platform-empty",
        "Fig. 6 Bug D (empty hand): the grid pickup height is edited to below the "
        "platform surface; the arm drives into the deck.",
        BugCategory::CoordinateChange, Severity::MediumHigh, core::Variant::Modified,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          Vec3 pickup = site_local(b, kViperX, "grid.NW");
          e.replace_position(kViperX, pickup, Vec3(pickup.x, pickup.y, -0.01));
          return e.take();
        },
        base_stream});

    bugs.push_back(BugSpec{
        "M3", "bug-d-platform-with-vial",
        "Fig. 6 Bug D (holding a vial): the dosing-device placement height is lowered "
        "from 0.08 to 0.06; the held vial crashes into the platform and shatters.",
        BugCategory::CoordinateChange, Severity::MediumHigh, core::Variant::Modified,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          Vec3 pickup = site_local(b, kViperX, "dosing_device");
          e.replace_position(kViperX, pickup, Vec3(pickup.x, pickup.y, 0.06));
          return e.take();
        },
        base_stream});

    bugs.push_back(BugSpec{
        "M4", "silent-skip-collision",
        "Footnote 2: a waypoint is edited to a clearly infeasible height; ViperX "
        "silently skips it and the direct path to the next waypoint sweeps through "
        "the grid.",
        BugCategory::CoordinateChange, Severity::MediumHigh, core::Variant::ModifiedWithSim,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          std::size_t at = after_second_go_home(e);
          e.insert(at, move_cmd(kViperX, lab_to_local(b, kViperX, Vec3(0.18, 0.30, 0.05))));
          e.insert(at + 1, move_cmd(kViperX, lab_to_local(b, kViperX, Vec3(0.35, 0.30, 2.0))));
          e.insert(at + 2, move_cmd(kViperX, lab_to_local(b, kViperX, Vec3(0.48, 0.30, 0.05))));
          e.insert(at + 3, cmd(kViperX, "go_home"));
          return e.take();
        },
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          std::size_t at = after_second_go_home(e);
          e.insert(at, move_cmd(kViperX, lab_to_local(b, kViperX, Vec3(0.18, 0.30, 0.05))));
          e.insert(at + 1, move_cmd(kViperX, lab_to_local(b, kViperX, Vec3(0.35, 0.30, 0.32))));
          e.insert(at + 2, move_cmd(kViperX, lab_to_local(b, kViperX, Vec3(0.48, 0.30, 0.05))));
          e.insert(at + 3, cmd(kViperX, "go_home"));
          return e.take();
        }});

    bugs.push_back(BugSpec{
        "M5", "wall-collision",
        "Ned2 is sent to coordinates inside the east enclosure wall.",
        BugCategory::CoordinateChange, Severity::MediumHigh, core::Variant::Modified,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          std::size_t at = e.find(kNed2, "go_sleep", 0);
          e.insert(at, move_cmd(kNed2, lab_to_local(b, kNed2, Vec3(0.95, 0.2, 0.30))));
          return e.take();
        },
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          std::size_t at = e.find(kNed2, "go_sleep", 0);
          e.insert(at, move_cmd(kNed2, lab_to_local(b, kNed2, Vec3(0.80, 0.2, 0.30))));
          return e.take();
        }});

    bugs.push_back(BugSpec{
        "M6", "frame-misalignment-brush",
        "ViperX is sent to a point just outside Ned2's *configured* parked cuboid "
        "but within reach of its real links — the ~3 cm frame-unification error of "
        "§IV category 2 made such margins untrustworthy.",
        BugCategory::ArmArmCollision, Severity::MediumHigh, std::nullopt,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          std::size_t at = after_second_go_home(e);
          e.insert(at, move_cmd(kViperX, lab_to_local(b, kViperX, Vec3(0.45, 0.175, 0.14))));
          e.insert(at + 1, cmd(kViperX, "go_home"));
          return e.take();
        },
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          std::size_t at = after_second_go_home(e);
          e.insert(at, move_cmd(kViperX, lab_to_local(b, kViperX, Vec3(0.45, 0.32, 0.25))));
          e.insert(at + 1, cmd(kViperX, "go_home"));
          return e.take();
        }});

    // ---- Low severity: wasted chemicals ----------------------------------

    bugs.push_back(BugSpec{
        "L1", "overdose",
        "The dosing quantity is raised from 5 mg to 50 mg, five times the vial's "
        "capacity; the excess spills.",
        BugCategory::ArgumentChange, Severity::Low, core::Variant::Initial,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          e.set_arg(e.find(kDosingDevice, "run_action"), "quantity", json::Value(50.0));
          return e.take();
        },
        base_stream});

    bugs.push_back(BugSpec{
        "L2", "bug-c-missing-pickup",
        "Fig. 5 Bug C: the pick-up call is omitted; the rest of the experiment runs "
        "without a vial and the dose lands in an empty chamber.",
        BugCategory::MissingVial, Severity::Low, std::nullopt,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          // The five primitives of the first arm_pick_up expansion.
          e.erase(e.find(kViperX, "move_to", 0), 5);
          return e.take();
        },
        base_stream});

    bugs.push_back(BugSpec{
        "L3", "gripper-reorder",
        "open_gripper and close_gripper are reordered inside the pick-up helper "
        "(§IV category 3); the gripper closes on air and the vial stays behind.",
        BugCategory::MissingVial, Severity::Low, std::nullopt,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          e.swap(e.find(kViperX, "open_gripper", 0), e.find(kViperX, "close_gripper", 0));
          return e.take();
        },
        base_stream});

    // ---- Medium-low severity: glassware ----------------------------------

    bugs.push_back(BugSpec{
        "ML1", "place-onto-occupied-slot",
        "The return destination is changed from grid.NW to grid.SE, which already "
        "holds the spare vial; the released vial lands on it and the glass breaks.",
        BugCategory::CoordinateChange, Severity::MediumLow, core::Variant::Initial,
        [](const sim::LabBackend& b) {
          StreamEditor e(base_stream(b));
          Vec3 nw = site_local(b, kViperX, "grid.NW");
          Vec3 se = site_local(b, kViperX, "grid.SE");
          // Only the *second* visit to grid.NW pickup (the place) is edited.
          std::size_t place_move = e.find(kViperX, "move_to", 1, [&](const json::Value& a) {
            json::Value copy = a;
            Command probe;
            probe.args = copy;
            auto p = position_of(probe);
            return p && std::abs(p->x - nw.x) < 1e-6 && std::abs(p->y - nw.y) < 1e-6 &&
                   std::abs(p->z - nw.z) < 1e-6;
          });
          e.set_arg(place_move, "position", json::Array{se.x, se.y, se.z});
          return e.take();
        },
        base_stream});

    return bugs;
  }();
  return kCatalogue;
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

BugOutcome evaluate_stream(const std::vector<Command>& commands, core::Variant variant) {
  return evaluate_stream(commands, variant, trace::Supervisor::Options{});
}

BugOutcome evaluate_stream(const std::vector<Command>& commands, core::Variant variant,
                           const trace::Supervisor::Options& options) {
  return evaluate_stream(commands, variant, options, core::HotPathConfig{});
}

BugOutcome evaluate_stream(const std::vector<Command>& commands, core::Variant variant,
                           const trace::Supervisor::Options& options,
                           const core::HotPathConfig& hot_path) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);

  core::EngineConfig config = core::config_from_backend(backend, variant);

  std::optional<sim::ExtendedSimulator> simulator;
  if (variant == core::Variant::ModifiedWithSim) {
    sim::WorldModel world = sim::deck_world_model(backend);
    for (const core::DeviceMeta& m : config.devices) {
      if (m.is_arm && m.sleep_box) {
        world.add_box(m.id, *m.sleep_box, sim::ObstacleKind::ParkedArm);
      }
    }
    sim::ExtendedSimulator::Options sim_options;
    sim_options.use_broad_phase = hot_path.broad_phase;
    sim_options.use_verdict_cache = hot_path.verdict_cache;
    simulator.emplace(std::move(world), sim_options);
    simulator->set_arm_state_provider(
        [&backend](std::string_view arm_id) -> std::optional<Vec3> {
          const auto* arm =
              dynamic_cast<const dev::RobotArmDevice*>(backend.registry().find(arm_id));
          if (arm == nullptr) return std::nullopt;
          return arm->position_lab();
        });
  }

  core::RabitEngine engine(std::move(config), hot_path);
  if (simulator) engine.attach_simulator(&*simulator);

  trace::Supervisor supervisor(&engine, &backend, options);
  BugOutcome outcome;
  outcome.report = supervisor.run(commands);
  outcome.damaged = !outcome.report.damage.empty();
  outcome.damage_severity = outcome.report.max_damage_severity();
  outcome.alerted = outcome.report.first_alert_step.has_value();
  outcome.detected = outcome.report.alert_preceded_damage();
  if (outcome.alerted) {
    for (const trace::SupervisedStep& s : outcome.report.steps) {
      if (s.alert) {
        outcome.alert_rule = s.alert->rule;
        break;
      }
    }
  }
  return outcome;
}

BugOutcome evaluate_bug(const BugSpec& bug, core::Variant variant) {
  sim::LabBackend staging(sim::testbed_profile());
  sim::build_hein_testbed_deck(staging);
  return evaluate_stream(bug.build(staging), variant);
}

// ---------------------------------------------------------------------------
// Synthetic bug generation
// ---------------------------------------------------------------------------

namespace {

/// The mutation draw, generic over the RNG engine (see the header: the
/// std::mt19937_64 overload lets the scenario factory thread one master seed
/// chain through every generator).
template <class Rng>
SyntheticBug random_mutation_draw(const std::vector<Command>& base, Rng& rng) {
  if (base.empty()) throw std::invalid_argument("random_mutation: empty base stream");
  std::uniform_int_distribution<int> kind_dist(0, 3);
  std::uniform_int_distribution<std::size_t> index_dist(0, base.size() - 1);

  SyntheticBug bug;
  bug.commands = base;

  for (int attempt = 0; attempt < 64; ++attempt) {
    auto kind = static_cast<MutationKind>(kind_dist(rng));
    std::size_t index = index_dist(rng);
    Command& target = bug.commands[index];

    switch (kind) {
      case MutationKind::DeleteCommand: {
        bug.kind = kind;
        bug.target_index = index;
        bug.detail = "deleted " + target.describe();
        bug.commands.erase(bug.commands.begin() + static_cast<std::ptrdiff_t>(index));
        return bug;
      }
      case MutationKind::SwapAdjacent: {
        if (index + 1 >= bug.commands.size()) break;
        bug.kind = kind;
        bug.target_index = index;
        bug.detail = "swapped commands " + std::to_string(index) + " and " +
                     std::to_string(index + 1);
        std::swap(bug.commands[index], bug.commands[index + 1]);
        return bug;
      }
      case MutationKind::ScaleArgument: {
        if (!target.args.is_object()) break;
        // Scale the first numeric scalar argument found.
        for (auto& [key, value] : target.args.as_object()) {
          if (!value.is_number()) continue;
          const double factors[] = {10.0, 0.1, 3.0};
          double factor = factors[std::uniform_int_distribution<int>(0, 2)(rng)];
          bug.kind = kind;
          bug.target_index = index;
          bug.detail = "scaled " + target.device + "." + target.action + " " + key + " by " +
                       std::to_string(factor);
          value = json::Value(value.as_double() * factor);
          return bug;
        }
        break;
      }
      case MutationKind::ShiftCoordinate: {
        if (target.action != "move_to") break;
        json::Value* pos = target.args.as_object().find("position");
        if (pos == nullptr || !pos->is_array()) break;
        int axis = std::uniform_int_distribution<int>(0, 2)(rng);
        const double deltas[] = {0.05, -0.05, 0.15, -0.15, 0.4, -0.4};
        double delta = deltas[std::uniform_int_distribution<int>(0, 5)(rng)];
        json::Array& arr = pos->as_array();
        arr[static_cast<std::size_t>(axis)] =
            json::Value(arr[static_cast<std::size_t>(axis)].as_double() + delta);
        bug.kind = kind;
        bug.target_index = index;
        bug.detail = "shifted " + target.device + " move axis " + std::to_string(axis) +
                     " by " + std::to_string(delta);
        return bug;
      }
    }
  }
  // Fallback: guaranteed-applicable deletion.
  bug.kind = MutationKind::DeleteCommand;
  bug.target_index = 0;
  bug.detail = "deleted " + bug.commands.front().describe();
  bug.commands.erase(bug.commands.begin());
  return bug;
}

}  // namespace

SyntheticBug random_mutation(const std::vector<Command>& base, std::mt19937& rng) {
  return random_mutation_draw(base, rng);
}

SyntheticBug random_mutation(const std::vector<Command>& base, std::mt19937_64& rng) {
  return random_mutation_draw(base, rng);
}

}  // namespace rabit::bugs
