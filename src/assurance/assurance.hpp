// rabit::assurance — SOTER-style runtime assurance for in-flight arm motion.
//
// The paper's Fig. 2 loop (and our recovery ladder) only *reacts* once an
// anomaly is observed — too late when the arm is already committed to a
// trajectory that intersects an envelope the configured world got slightly
// wrong (the §IV category-2 frame-unification error was ~3 cm on the
// testbed). SOTER's runtime-assurance architecture pairs every advanced
// controller with a verified-safe controller and a decision module that
// switches *while a safe state is still reachable*; the MPPI+CBF line of
// work supplies the margin math. This module is the decision half:
//
//   * barrier h(s)  — signed clearance along the interpolated tip path
//                     (sim::MarginProfile), sampled at the simulator's
//                     polling resolution against static boxes, device
//                     keep-out zones and other-arms envelopes;
//   * switching point — s_viol is the first arc length where h drops below
//                     the configured floor; the verified-safe controller
//                     (decelerate, then park via the recovery safe-state
//                     builder) needs d_stop = v^2 / (2a) of runway, so the
//                     LAST SAFE SWITCHING POINT is s* = max(0, s_viol -
//                     d_stop): demoting there guarantees the arm halts with
//                     h >= margin floor even in the worst case;
//   * AssuranceEvent — the structured record of one demotion (barrier value,
//                     switching point, controller mode) that lands in the
//                     trace, the obs span stream, and the RecoveryReport.
//
// trace::Supervisor drives the ladder (predict -> demote-to-safe -> retry/
// re-poll -> quarantine -> safe-state -> halt); this library keeps the pure
// math so it is testable without a lab.
#pragma once

#include <string>
#include <vector>

#include "geometry/geometry.hpp"
#include "json/json.hpp"
#include "sim/world.hpp"

namespace rabit::assurance {

/// Tunables of the runtime-assurance decision module.
struct AssuranceConfig {
  bool enabled = true;
  /// Barrier floor in metres: demote when the planned path would pass closer
  /// than this to any non-ignored obstacle. Sized to dominate the paper's
  /// testbed frame-unification error (~3 cm), so a configured world that is
  /// wrong by less than the floor still cannot let the arm make contact.
  double margin_min_m = 0.03;
  /// Verified-safe controller's deceleration model: the arm moves at
  /// `nominal_speed_mps` and the fallback brakes at `decel_mps2`, giving a
  /// stopping distance of v^2 / (2 a) past the switching point.
  double nominal_speed_mps = 0.25;
  double decel_mps2 = 1.5;

  /// Worst-case runway the safe controller needs after the switch.
  [[nodiscard]] double stop_distance_m() const {
    return nominal_speed_mps * nominal_speed_mps / (2.0 * decel_mps2);
  }
};

/// Outcome of evaluating one motion's barrier profile against the config.
struct Decision {
  bool demote = false;
  double h_min_m = 0.0;     ///< minimum barrier value over the whole path
  double s_viol_m = 0.0;    ///< first arc length with h < margin floor
  double s_star_m = 0.0;    ///< last safe switching point: max(0, s_viol - d_stop)
  double stop_distance_m = 0.0;
  std::string obstacle;     ///< obstacle realizing the first violation
};

/// Pure switching-point derivation. `demote` is set iff any sample of the
/// profile dips below cfg.margin_min_m; s* is clamped at 0 (the violation is
/// closer than one stopping distance — the safe controller runs in place).
[[nodiscard]] Decision decide(const sim::MarginProfile& profile, const AssuranceConfig& cfg);

/// Point at arc length `s` along a piecewise-linear path (clamped to the
/// ends). The truncated advance of the safe controller moves here.
[[nodiscard]] geom::Vec3 point_at_arc_length(const std::vector<geom::Vec3>& waypoints, double s);

/// Structured record of one demotion, for traces / spans / RecoveryReport.
struct AssuranceEvent {
  std::string device;           ///< the demoted command's device (the arm)
  std::string action;
  double barrier_m = 0.0;       ///< h_min over the planned path
  double switch_s_m = 0.0;      ///< s*, where the safe controller took over
  double violation_s_m = 0.0;   ///< s_viol, where the floor would be crossed
  double stop_distance_m = 0.0;
  double trajectory_m = 0.0;    ///< full planned arc length
  std::string obstacle;         ///< what the path would have violated
  std::string controller = "verified_safe";  ///< controller mode after the switch
  double modeled_time_s = 0.0;  ///< backend clock at the demotion

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] std::string describe() const;
};

}  // namespace rabit::assurance
