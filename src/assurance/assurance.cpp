#include "assurance/assurance.hpp"

#include <algorithm>
#include <sstream>

namespace rabit::assurance {

Decision decide(const sim::MarginProfile& profile, const AssuranceConfig& cfg) {
  Decision d;
  d.h_min_m = profile.min_margin_m;
  d.stop_distance_m = cfg.stop_distance_m();
  for (const sim::MarginSample& sample : profile.samples) {
    if (sample.h < cfg.margin_min_m) {
      d.demote = true;
      d.s_viol_m = sample.s;
      d.obstacle = sample.obstacle;
      break;
    }
  }
  if (!d.demote) return d;
  d.s_star_m = std::max(0.0, d.s_viol_m - d.stop_distance_m);
  return d;
}

geom::Vec3 point_at_arc_length(const std::vector<geom::Vec3>& waypoints, double s) {
  if (waypoints.empty()) return {};
  if (s <= 0.0) return waypoints.front();
  double walked = 0.0;
  for (std::size_t leg = 1; leg < waypoints.size(); ++leg) {
    double length = waypoints[leg - 1].distance_to(waypoints[leg]);
    if (walked + length >= s && length > 0.0) {
      return geom::lerp(waypoints[leg - 1], waypoints[leg], (s - walked) / length);
    }
    walked += length;
  }
  return waypoints.back();
}

json::Value AssuranceEvent::to_json() const {
  json::Object out;
  out["device"] = device;
  out["action"] = action;
  out["barrier_m"] = barrier_m;
  out["switch_s_m"] = switch_s_m;
  out["violation_s_m"] = violation_s_m;
  out["stop_distance_m"] = stop_distance_m;
  out["trajectory_m"] = trajectory_m;
  out["obstacle"] = obstacle;
  out["controller"] = controller;
  out["t"] = modeled_time_s;
  return json::Value(std::move(out));
}

std::string AssuranceEvent::describe() const {
  std::ostringstream os;
  os << "demoted " << device << "." << action << " to " << controller << ": barrier "
     << barrier_m << " m vs '" << obstacle << "' (floor crossed at s=" << violation_s_m
     << " m of " << trajectory_m << " m, switched at s=" << switch_s_m << " m)";
  return os.str();
}

}  // namespace rabit::assurance
