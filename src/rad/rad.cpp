#include "rad/rad.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "devices/robot_arm.hpp"
#include "devices/stations.hpp"
#include "sim/deck.hpp"

namespace rabit::rad {

using dev::Command;
using geom::Vec3;

// ---------------------------------------------------------------------------
// Abstraction
// ---------------------------------------------------------------------------

std::vector<Event> abstract_events(const std::vector<Command>& commands,
                                   const sim::LabBackend& deck) {
  std::vector<Event> out;
  for (const Command& cmd : commands) {
    Event e;
    if (cmd.action == "set_door") {
      const json::Value* s = cmd.args.find("state");
      if (s != nullptr && s->is_string()) {
        e = (s->as_string() == "open" ? "open:" : "close:") + cmd.device;
      }
    } else if (cmd.action == "move_to") {
      // A move whose target lands inside a doored station is an entry.
      const json::Value* pos = cmd.args.find("position");
      const dev::Device* device = deck.registry().find(cmd.device);
      const auto* arm = dynamic_cast<const dev::RobotArmDevice*>(device);
      if (arm != nullptr && pos != nullptr && pos->is_array() && pos->as_array().size() == 3) {
        const json::Array& p = pos->as_array();
        Vec3 lab = arm->to_lab(Vec3(p[0].as_double(), p[1].as_double(), p[2].as_double()));
        for (const dev::Device* d : deck.registry().all()) {
          if (dynamic_cast<const dev::DoorMixin*>(d) == nullptr) continue;
          if (auto fp = d->footprint(); fp && fp->inflated(0.01).contains(lab)) {
            e = "enter:" + d->id();
            break;
          }
        }
      }
    } else if (cmd.action == "close_gripper") {
      e = "grab:" + cmd.device;
    } else if (cmd.action == "open_gripper") {
      e = "release:" + cmd.device;
    } else if (cmd.action == "run_action") {
      e = "dose_solid:" + cmd.device;
    } else if (cmd.action == "dose_solvent") {
      e = "dose_liquid:" + cmd.device;
    } else if (cmd.action == "decap") {
      e = "decap:" + cmd.device;
    } else if (cmd.action == "recap") {
      e = "recap:" + cmd.device;
    } else if (cmd.action == "start_spin") {
      e = "spin:" + cmd.device;
    }
    if (!e.empty()) out.push_back(std::move(e));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

namespace {

Command make(std::string device, std::string action, json::Object args = {}) {
  Command cmd;
  cmd.device = std::move(device);
  cmd.action = std::move(action);
  cmd.args = json::Value(std::move(args));
  return cmd;
}

Command move_cmd(const std::string& arm, const Vec3& local) {
  json::Object args;
  args["position"] = json::Array{local.x, local.y, local.z};
  return make(arm, "move_to", std::move(args));
}

/// One synthetic dosing experiment. Independent steps are deliberately
/// shuffled across sessions so that only genuine orderings survive mining.
/// Generic over the RNG engine: the legacy dataset entry point keeps its
/// std::mt19937, while synth_session threads the scenario factory's
/// std::mt19937_64 master chain.
template <class Rng>
std::vector<Command> synth_experiment(const sim::LabBackend& deck, Rng& rng,
                                      double noise_rate) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> quantity(2.0, 8.0);
  const char* arm = sim::deck_ids::kViperX;
  const auto& viperx = dynamic_cast<const dev::RobotArmDevice&>(
      *deck.registry().find(arm));

  const sim::SiteBinding* dosing_site = deck.find_site("dosing_device");
  const char* slots[] = {"grid.NW", "grid.NE", "grid.SW", "grid.SE"};
  const sim::SiteBinding* grid_site =
      deck.find_site(slots[std::uniform_int_distribution<int>(0, 3)(rng)]);

  Vec3 grid_local = viperx.to_local(grid_site->lab_position);
  Vec3 dosing_local = viperx.to_local(dosing_site->lab_position);
  Vec3 lift(0, 0, 0.22);

  std::vector<Command> cmds;
  auto noise = [&] {
    if (unit(rng) < noise_rate) cmds.push_back(make(arm, "go_home"));
  };

  // Preparation: decap and door-open commute freely.
  std::vector<Command> prep;
  prep.push_back(make(sim::deck_ids::kVial1, "decap"));
  prep.push_back(make(sim::deck_ids::kDosingDevice, "set_door",
                      [] { json::Object o; o["state"] = std::string("open"); return o; }()));
  if (unit(rng) < 0.5) std::swap(prep[0], prep[1]);
  for (Command& c : prep) cmds.push_back(std::move(c));
  noise();

  // Fetch the vial and load it into the dosing device.
  cmds.push_back(move_cmd(arm, grid_local + lift));
  cmds.push_back(move_cmd(arm, grid_local));
  cmds.push_back(make(arm, "close_gripper"));
  cmds.push_back(move_cmd(arm, grid_local + lift));
  noise();
  cmds.push_back(move_cmd(arm, dosing_local + lift));
  cmds.push_back(move_cmd(arm, dosing_local));  // entry into the station
  cmds.push_back(make(arm, "open_gripper"));
  cmds.push_back(move_cmd(arm, dosing_local + lift));
  cmds.push_back(make(sim::deck_ids::kDosingDevice, "set_door",
                      [] { json::Object o; o["state"] = std::string("closed"); return o; }()));
  noise();
  cmds.push_back(make(sim::deck_ids::kDosingDevice, "run_action", [&] {
    json::Object o;
    o["quantity"] = quantity(rng);
    o["delay"] = 3;
    return o;
  }()));
  cmds.push_back(make(sim::deck_ids::kDosingDevice, "stop_action"));

  // Optional solvent stage (plants: solid before liquid).
  if (unit(rng) < 0.7) {
    cmds.push_back(make(sim::deck_ids::kSyringePump, "draw_solvent", [] {
      json::Object o;
      o["volume"] = 2.0;
      return o;
    }()));
    cmds.push_back(make(sim::deck_ids::kSyringePump, "dose_solvent", [] {
      json::Object o;
      o["volume"] = 2.0;
      o["target"] = std::string(sim::deck_ids::kVial1);
      return o;
    }()));
    noise();
  }

  // Retrieve the vial.
  cmds.push_back(make(sim::deck_ids::kDosingDevice, "set_door",
                      [] { json::Object o; o["state"] = std::string("open"); return o; }()));
  cmds.push_back(move_cmd(arm, dosing_local + lift));
  cmds.push_back(move_cmd(arm, dosing_local));
  cmds.push_back(make(arm, "close_gripper"));
  cmds.push_back(move_cmd(arm, dosing_local + lift));
  cmds.push_back(move_cmd(arm, grid_local + lift));
  cmds.push_back(move_cmd(arm, grid_local));
  cmds.push_back(make(arm, "open_gripper"));
  cmds.push_back(move_cmd(arm, grid_local + lift));
  cmds.push_back(make(sim::deck_ids::kDosingDevice, "set_door",
                      [] { json::Object o; o["state"] = std::string("closed"); return o; }()));
  noise();
  return cmds;
}

}  // namespace

std::vector<TraceSession> generate_dataset(const sim::LabBackend& deck,
                                           const GeneratorOptions& options) {
  std::mt19937 rng(options.seed);
  std::uniform_int_distribution<int> per_day(options.experiments_per_day_min,
                                             options.experiments_per_day_max);
  std::vector<TraceSession> sessions;
  for (int day = 0; day < options.days; ++day) {
    int n = per_day(rng);
    for (int i = 0; i < n; ++i) {
      sessions.push_back(TraceSession{day, synth_experiment(deck, rng, options.noise_rate)});
    }
  }
  return sessions;
}

std::vector<Command> synth_session(const sim::LabBackend& deck, std::mt19937_64& rng,
                                   double noise_rate) {
  return synth_experiment(deck, rng, noise_rate);
}

// ---------------------------------------------------------------------------
// Miner
// ---------------------------------------------------------------------------

std::string MinedRule::describe() const {
  return antecedent + " must precede " + consequent + " (support " + std::to_string(support) +
         ", confidence " + std::to_string(confidence) + ")";
}

std::vector<MinedRule> mine_rules(const std::vector<std::vector<Event>>& sessions,
                                  const MinerOptions& options) {
  // For each (A, B) pair: how many occurrences of B, and how many of them had
  // an A within the preceding window.
  std::map<std::pair<Event, Event>, std::size_t> preceded;
  std::map<Event, std::size_t> totals;

  for (const std::vector<Event>& session : sessions) {
    for (std::size_t j = 0; j < session.size(); ++j) {
      const Event& b = session[j];
      ++totals[b];
      std::set<Event> seen;
      std::size_t start = j > options.window ? j - options.window : 0;
      for (std::size_t i = start; i < j; ++i) {
        if (session[i] != b) seen.insert(session[i]);
      }
      for (const Event& a : seen) ++preceded[{a, b}];
    }
  }

  std::vector<MinedRule> rules;
  for (const auto& [pair, count] : preceded) {
    std::size_t total = totals[pair.second];
    if (total < options.min_support) continue;
    double confidence = static_cast<double>(count) / static_cast<double>(total);
    if (confidence < options.min_confidence) continue;
    rules.push_back(MinedRule{pair.first, pair.second, total, confidence});
  }
  std::sort(rules.begin(), rules.end(), [](const MinedRule& x, const MinedRule& y) {
    return x.confidence > y.confidence ||
           (x.confidence == y.confidence && x.support > y.support);
  });
  return rules;
}

std::vector<std::pair<Event, Event>> planted_rules() {
  return {
      {"open:dosing_device", "enter:dosing_device"},     // Table III rule 1
      {"close:dosing_device", "dose_solid:dosing_device"},  // Table III rule 9
      {"dose_solid:dosing_device", "dose_liquid:syringe_pump"},  // Table IV rule 1
      {"decap:vial_1", "dose_solid:dosing_device"},      // Table III rule 7
      {"grab:viperx", "release:viperx"},                 // pick before place
  };
}

double MiningScore::precision() const {
  std::size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

double MiningScore::recall() const {
  std::size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

MiningScore score_mining(const std::vector<MinedRule>& mined) {
  auto planted = planted_rules();
  // Regularities that genuinely hold in the workflows but are implied by (or
  // weaker than) the planted constraints; mining them is sound, not a false
  // positive.
  const std::vector<std::pair<Event, Event>> implied = {
      {"open:dosing_device", "dose_solid:dosing_device"},
      {"open:dosing_device", "grab:viperx"},
      {"open:dosing_device", "release:viperx"},
      {"open:dosing_device", "close:dosing_device"},
      {"open:dosing_device", "dose_liquid:syringe_pump"},
      {"enter:dosing_device", "release:viperx"},
      {"enter:dosing_device", "close:dosing_device"},
      {"enter:dosing_device", "dose_solid:dosing_device"},
      {"enter:dosing_device", "dose_liquid:syringe_pump"},
      {"grab:viperx", "enter:dosing_device"},
      {"grab:viperx", "close:dosing_device"},
      {"grab:viperx", "dose_solid:dosing_device"},
      {"grab:viperx", "dose_liquid:syringe_pump"},
      {"release:viperx", "close:dosing_device"},
      {"release:viperx", "dose_solid:dosing_device"},
      {"release:viperx", "dose_liquid:syringe_pump"},
      {"close:dosing_device", "dose_liquid:syringe_pump"},
      {"decap:vial_1", "enter:dosing_device"},
      {"decap:vial_1", "grab:viperx"},
      {"decap:vial_1", "release:viperx"},
      {"decap:vial_1", "close:dosing_device"},
      {"decap:vial_1", "dose_liquid:syringe_pump"},
      {"dose_solid:dosing_device", "open:dosing_device"},  // dose precedes reopen
  };

  MiningScore score;
  std::set<std::pair<Event, Event>> found;
  for (const MinedRule& r : mined) {
    std::pair<Event, Event> key{r.antecedent, r.consequent};
    if (std::find(planted.begin(), planted.end(), key) != planted.end()) {
      ++score.true_positives;
      found.insert(key);
    } else if (std::find(implied.begin(), implied.end(), key) == implied.end()) {
      ++score.false_positives;
    }
  }
  for (const auto& rule : planted) {
    if (!found.contains(rule)) ++score.false_negatives;
  }
  return score;
}

}  // namespace rabit::rad
