// rabit::rad — the Robot Arm Dataset substitute and the rule miner.
//
// The paper's rulebase construction (§II-A) started from RAD, three months
// of command traces captured in the Hein Lab, mined for rules implied by
// command ordering ("device doors must be opened before a robot arm can
// enter them"; "solids must be added to containers before liquids"). The
// dataset itself is not available here, so this module synthesizes an
// equivalent: weeks of workflow executions with parameter jitter and
// occasional harmless reordering noise, plus a precedence-rule miner with
// support/confidence thresholds that recovers the planted rules.
#pragma once

#include <random>
#include <string>
#include <vector>

#include "devices/device.hpp"
#include "sim/backend.hpp"

namespace rabit::rad {

/// A command abstracted to a mining symbol, e.g. "open:dosing_device",
/// "enter:dosing_device", "dose_solid:vial_1", "dose_liquid:vial_1".
using Event = std::string;

/// Maps raw commands to mining symbols using deck knowledge (which device
/// cuboid a move target enters, which vial a dose lands in). Commands with
/// no safety-relevant abstraction map to "" and are dropped.
[[nodiscard]] std::vector<Event> abstract_events(const std::vector<dev::Command>& commands,
                                                 const sim::LabBackend& deck);

/// Synthetic-dataset parameters. Defaults approximate RAD's scale: ~90 days,
/// several experiments per day.
struct GeneratorOptions {
  int days = 90;
  int experiments_per_day_min = 2;
  int experiments_per_day_max = 6;
  unsigned seed = 7;
  /// Probability that an experiment inserts harmless extra commands
  /// (status checks, extra stirs) — noise the miner must tolerate.
  double noise_rate = 0.15;
};

/// One captured experiment run.
struct TraceSession {
  int day = 0;
  std::vector<dev::Command> commands;
};

/// Generates the synthetic dataset against a deck (used only for geometry
/// and device names; nothing is executed).
[[nodiscard]] std::vector<TraceSession> generate_dataset(const sim::LabBackend& deck,
                                                         const GeneratorOptions& options);

/// One synthetic dosing experiment drawn from the caller's RNG chain (grid
/// slot, dose quantity, optional solvent stage, reordering noise all come
/// from `rng`). The scenario factory threads one master std::mt19937_64
/// through every generator so a campaign is reproducible end-to-end from a
/// single seed; generate_dataset keeps its own legacy-seeded engine.
[[nodiscard]] std::vector<dev::Command> synth_session(const sim::LabBackend& deck,
                                                      std::mt19937_64& rng,
                                                      double noise_rate = 0.15);

/// A mined precedence rule: within a session, every occurrence of
/// `consequent` is preceded by `antecedent` (since the consequent's last
/// occurrence), e.g. open:dosing_device ≺ enter:dosing_device.
struct MinedRule {
  Event antecedent;
  Event consequent;
  std::size_t support = 0;   ///< number of consequent occurrences observed
  double confidence = 0.0;   ///< fraction of occurrences preceded by antecedent

  [[nodiscard]] std::string describe() const;
};

struct MinerOptions {
  std::size_t min_support = 20;
  double min_confidence = 0.97;
  /// Only consider antecedents at most this many events before the
  /// consequent (precedence is session-scoped, window-limited).
  std::size_t window = 32;
};

/// Mines precedence rules from abstracted sessions.
[[nodiscard]] std::vector<MinedRule> mine_rules(const std::vector<std::vector<Event>>& sessions,
                                                const MinerOptions& options);

/// The rules the generator plants (ground truth for precision/recall):
/// pairs of (antecedent, consequent) symbols.
[[nodiscard]] std::vector<std::pair<Event, Event>> planted_rules();

/// Scores mined rules against the planted ones.
struct MiningScore {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
};
[[nodiscard]] MiningScore score_mining(const std::vector<MinedRule>& mined);

}  // namespace rabit::rad
