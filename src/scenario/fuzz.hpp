// rabit::scenario fuzzing — coverage-guided campaign search, soundness
// oracles, delta-debugging shrink, and the checked-in regression corpus.
//
// run_scenario executes one ScenarioSpec end to end: the static pre-flight
// (config lint, per-stream analysis, interference/shard analysis, script
// probes) plus the runtime half (a supervised single-stream run with fault
// injection and the recovery/assurance ladder, or a sharded fleet campaign
// with the certificate validation oracle). Everything observable lands in a
// deterministic ScenarioVerdict; coverage keys are read from the analyzer
// reports and the run's obs::Registry / obs::Collector rung records.
//
// The FuzzEngine drives an AFL-style loop over specs — a pool of
// coverage-increasing genomes, mutation-or-generate draws, and steering that
// biases generation toward whole coverage families still dark (an uncovered
// CFG rule forces the matching ConfigPerturb; dark rungs force a faulted
// supervised run; dark interference rules force multi-stream campaigns).
// Any spec whose verdict trips a soundness oracle (static-pass-but-
// runtime-block, sharded-vs-monolithic divergence, certificate breach,
// false halt, false alarm) is shrunk to a minimal reproduction and emitted
// as a corpus entry; corpus/ files replay under ctest with their verdict
// pinned byte-for-byte.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "analysis/rulecheck.hpp"
#include "core/config.hpp"
#include "json/json.hpp"
#include "scenario/scenario.hpp"

namespace rabit::scenario {

// ---------------------------------------------------------------------------
// Verdicts
// ---------------------------------------------------------------------------

/// Everything a scenario run pins for regression replay. Strictly
/// deterministic: no wall-clock, no worker-count-dependent field.
struct ScenarioVerdict {
  bool halted = false;
  bool damage = false;
  /// "s<stream>:<command>:<rule>" in dispatch order.
  std::vector<std::string> alerts;
  std::size_t cross_stream_alerts = 0;
  std::size_t shards = 0;  ///< 0 for single-stream supervised runs
  /// Sorted unique diagnostic rule ids across every static report
  /// (A/CFG/I/S families plus rulebase ids the analyzer resolved).
  std::vector<std::string> diagnostics;
  /// Sorted unique recovery-ladder rung kinds the run emitted.
  std::vector<std::string> rungs;
  /// Sorted unique oracle findings, "<class>" or "<class>:<detail>"; empty
  /// means every soundness invariant held.
  std::vector<std::string> oracle_failures;

  [[nodiscard]] bool failing() const { return !oracle_failures.empty(); }
  /// The class name (prefix before ':') of the first oracle failure; ""
  /// when passing. Shrinking preserves this class.
  [[nodiscard]] std::string primary_failure_class() const;

  friend bool operator==(const ScenarioVerdict&, const ScenarioVerdict&) = default;
};

[[nodiscard]] json::Value verdict_to_json(const ScenarioVerdict& verdict);
[[nodiscard]] ScenarioVerdict verdict_from_json(const json::Value& doc);

struct ScenarioResult {
  ScenarioVerdict verdict;
  /// Sorted unique coverage keys this run exercised: "rule:<id>",
  /// "diag:<A-id>", "cfg:<CFG-id>", "ifr:<I-id>", "shard:<S-id>",
  /// "rung:<kind>".
  std::vector<std::string> coverage;
};

/// Executes a spec end to end (static pre-flight + runtime). Deterministic:
/// equal specs yield equal results, independent of worker scheduling.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);

// ---------------------------------------------------------------------------
// Coverage
// ---------------------------------------------------------------------------

class CoverageMap {
 public:
  /// Returns true when the key was new.
  bool add(const std::string& key) { return keys_.insert(key).second; }
  /// Adds every key; returns how many were new.
  std::size_t add_all(const std::vector<std::string>& keys);

  [[nodiscard]] const std::set<std::string>& keys() const { return keys_; }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] bool covered(const std::string& key) const { return keys_.contains(key); }
  /// Keys sharing a family prefix ("rung:", "cfg:", ...).
  [[nodiscard]] std::size_t count_prefix(std::string_view prefix) const;

  /// {"keys": [...], "total": N} — the rabit_fuzz coverage-report shape.
  [[nodiscard]] json::Value to_json() const;

 private:
  std::set<std::string> keys_;
};

/// The closed coverage vocabulary the generator can reach on the Hein
/// testbed deck — measured empirically by long fuzz campaigns and pruned to
/// keys an actual run produced (an honest denominator for the >= 80%
/// coverage gate, not an aspirational list).
[[nodiscard]] const std::vector<std::string>& reachable_coverage();

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

struct ShrinkResult {
  ScenarioSpec spec;        ///< no heavier than the input (weight-monotone)
  ScenarioVerdict verdict;  ///< still failing with the same primary class
  std::size_t attempts = 0;  ///< candidate executions the search consumed
};

/// Delta-debugs `failing` to a fixpoint: drops streams, clears mutation
/// counts, truncates prefixes, disables fault/perturb/probe genes — keeping
/// a candidate only when it still fails with `original`'s primary oracle
/// class. Every accepted step strictly decreases weight(spec), so the
/// search terminates; the result is 1-minimal with respect to the candidate
/// moves. Throws std::invalid_argument when `original` is not failing.
[[nodiscard]] ShrinkResult shrink(const ScenarioSpec& failing,
                                  const ScenarioVerdict& original);

/// The generalized form `shrink` is built on: minimizes `spec` while
/// `keep(verdict)` stays true for the re-run candidate. `keep(original)`
/// must hold (std::invalid_argument otherwise). Exposed so callers (and the
/// shrinker's own property tests) can minimize toward predicates other than
/// "same oracle class" — e.g. "still raises rule G9".
[[nodiscard]] ShrinkResult shrink_while(
    const ScenarioSpec& spec, const ScenarioVerdict& original,
    const std::function<bool(const ScenarioVerdict&)>& keep);

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

/// One corpus/ file: a named spec plus its pinned verdict.
struct CorpusEntry {
  std::string name;
  ScenarioSpec spec;
  ScenarioVerdict verdict;
};

[[nodiscard]] json::Value corpus_entry_to_json(const CorpusEntry& entry);
/// Throws std::runtime_error naming the offending field on malformed input.
[[nodiscard]] CorpusEntry corpus_entry_from_json(const json::Value& doc);

/// Loads every *.json under `dir`, sorted by filename (deterministic replay
/// order). Throws std::runtime_error naming the offending file on parse or
/// schema failure; a missing directory yields an empty corpus.
[[nodiscard]] std::vector<CorpusEntry> load_corpus_dir(const std::string& dir);

/// Writes `<dir>/<entry.name>.json` (pretty-printed, trailing newline).
/// Returns false and fills *error on I/O failure.
bool save_corpus_entry(const std::string& dir, const CorpusEntry& entry,
                       std::string* error = nullptr);

// ---------------------------------------------------------------------------
// Rulebase-verifier witnesses (src/analysis/rulecheck) in corpus-spec form
// ---------------------------------------------------------------------------

/// Wraps one rulecheck finding as a self-contained corpus document:
/// {"name", "config" (full config_to_json), "diagnostic", "witness"?,
/// "proof"?}. `rabit_fuzz --replay` recognizes the "witness"/"proof" keys
/// and confirms the counterexample against a fresh engine instead of
/// replaying a campaign spec.
[[nodiscard]] json::Value witness_entry_to_json(const std::string& name,
                                               const core::EngineConfig& config,
                                               const analysis::RuleFinding& finding);

/// True when `doc` is a rulecheck witness document rather than a campaign
/// corpus entry (it carries a "config" plus a "witness" or "proof" key).
[[nodiscard]] bool is_witness_entry(const json::Value& doc);

struct WitnessEntryReplay {
  std::string name;
  bool confirmed = false;
  std::string detail;  ///< mismatch or proof-tag summary, human-readable
};

/// Replays a witness document: witness steps run through a fresh engine
/// over the embedded config (every step's verdict must match); a proof-only
/// document re-runs check_rules over the embedded config and confirms the
/// same proof tag is still derived.
[[nodiscard]] WitnessEntryReplay replay_witness_entry(const json::Value& doc);

/// The rulebase verifier with the fuzzer's measured coverage map wired into
/// R8 — the dark-key classification (dead-by-construction vs needs-steering)
/// the coverage report cites.
[[nodiscard]] analysis::RuleCheckReport check_rules_with_coverage(
    const core::EngineConfig& config);

// ---------------------------------------------------------------------------
// The fuzzing engine
// ---------------------------------------------------------------------------

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t iterations = 200;
  /// Wall-clock cap; 0 = iteration-bounded only. Iteration draws stay a
  /// pure function of (seed, iteration index) either way — the budget only
  /// decides how far the deterministic sequence gets.
  double time_budget_s = 0.0;
  bool shrink_failures = true;
  /// Replay these first (corpus warm-up): their coverage seeds the map and
  /// their specs seed the mutation pool.
  std::vector<ScenarioSpec> corpus;
};

struct FuzzReport {
  std::size_t iterations = 0;   ///< scenario executions (incl. corpus warm-up)
  CoverageMap coverage;
  /// (iteration, cumulative key count) at every coverage increase — the
  /// bench's coverage-growth curve.
  std::vector<std::pair<std::size_t, std::size_t>> growth;
  /// Shrunk reproductions, at most one per oracle failure class.
  std::vector<CorpusEntry> repros;
  double wall_s = 0.0;

  /// Fraction of reachable_coverage() covered, in [0, 1].
  [[nodiscard]] double coverage_fraction() const;
  /// The rabit_fuzz --out JSON: iterations, coverage keys + fraction,
  /// growth curve, repro names.
  [[nodiscard]] json::Value to_json() const;
};

/// Runs the coverage-guided loop. Deterministic modulo the time budget.
[[nodiscard]] FuzzReport fuzz(const FuzzOptions& options);

}  // namespace rabit::scenario
