#include "scenario/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

#include "analysis/analysis.hpp"
#include "analysis/interference.hpp"
#include "analysis/shard_plan.hpp"
#include "devices/fault.hpp"
#include "devices/robot_arm.hpp"
#include "sim/deck.hpp"
#include "sim/extended_sim.hpp"
#include "trace/trace.hpp"

namespace rabit::scenario {

using dev::Command;

// ---------------------------------------------------------------------------
// Verdicts
// ---------------------------------------------------------------------------

std::string ScenarioVerdict::primary_failure_class() const {
  if (oracle_failures.empty()) return "";
  const std::string& first = oracle_failures.front();
  return first.substr(0, first.find(':'));
}

namespace {

json::Array strings_to_json(const std::vector<std::string>& values) {
  json::Array out;
  for (const std::string& v : values) out.emplace_back(v);
  return out;
}

std::vector<std::string> strings_from_json(const json::Value& doc, std::string_view key) {
  std::vector<std::string> out;
  const json::Value* arr = doc.find(key);
  if (arr == nullptr) return out;
  if (!arr->is_array()) {
    throw std::runtime_error("scenario verdict: '" + std::string(key) + "' is not an array");
  }
  for (const json::Value& v : arr->as_array()) out.push_back(v.as_string());
  return out;
}

std::vector<std::string> sorted_unique(std::set<std::string> keys) {
  return {keys.begin(), keys.end()};
}

}  // namespace

json::Value verdict_to_json(const ScenarioVerdict& verdict) {
  json::Object o;
  o["halted"] = verdict.halted;
  o["damage"] = verdict.damage;
  o["alerts"] = strings_to_json(verdict.alerts);
  o["cross_stream_alerts"] = static_cast<std::int64_t>(verdict.cross_stream_alerts);
  o["shards"] = static_cast<std::int64_t>(verdict.shards);
  o["diagnostics"] = strings_to_json(verdict.diagnostics);
  o["rungs"] = strings_to_json(verdict.rungs);
  o["oracle_failures"] = strings_to_json(verdict.oracle_failures);
  return json::Value(std::move(o));
}

ScenarioVerdict verdict_from_json(const json::Value& doc) {
  if (!doc.is_object()) throw std::runtime_error("scenario verdict: not an object");
  ScenarioVerdict v;
  v.halted = doc.get_or("halted", false);
  v.damage = doc.get_or("damage", false);
  v.alerts = strings_from_json(doc, "alerts");
  v.cross_stream_alerts =
      static_cast<std::size_t>(doc.get_or("cross_stream_alerts", std::int64_t{0}));
  v.shards = static_cast<std::size_t>(doc.get_or("shards", std::int64_t{0}));
  v.diagnostics = strings_from_json(doc, "diagnostics");
  v.rungs = strings_from_json(doc, "rungs");
  v.oracle_failures = strings_from_json(doc, "oracle_failures");
  return v;
}

// ---------------------------------------------------------------------------
// Scenario execution
// ---------------------------------------------------------------------------

namespace {

/// Workflows whose unmutated, unfaulted single-stream run is known alert-free
/// under supervision (pinned by scenario_test). RadDosing is excluded because
/// synth_session draws reordering noise whose alert-freeness is not a
/// generator invariant; Dosing is excluded because it is *intentionally*
/// dirty — dosing solvent into a solid-free vial trips C1 by design, which is
/// how the C1/G8 rule family and the I3/I6 budget races stay reachable.
bool oracle_safe_workflow(WorkflowKind kind) {
  switch (kind) {
    case WorkflowKind::Testbed:
    case WorkflowKind::Hotplate:
    case WorkflowKind::Park:
      return true;
    case WorkflowKind::RadDosing:
    case WorkflowKind::Dosing:
    case WorkflowKind::DirtyV3:  // intentionally inside the assurance margin
      return false;
  }
  return false;
}

bool clean_gene(const StreamGene& gene) {
  return gene.mutations == 0 && oracle_safe_workflow(gene.workflow);
}

std::string alert_key(std::size_t stream, std::size_t command, const std::string& rule) {
  return "s" + std::to_string(stream) + ":" + std::to_string(command) + ":" + rule;
}

/// Collects one static report's rule ids into the verdict sets. Analyzer-only
/// findings (A family) and the campaign-level families mint coverage keys;
/// mirrored runtime rules (G/C/M/S1/POST) do not — those count only when the
/// runtime actually raises them, which keeps the coverage map honest.
void absorb_report(const analysis::AnalysisReport& report, std::set<std::string>& diagnostics,
                   std::set<std::string>& coverage) {
  for (const analysis::Diagnostic& d : report.diagnostics) {
    diagnostics.insert(d.rule);
    if (d.rule.rfind("CFG", 0) == 0) {
      coverage.insert("cfg:" + d.rule);
    } else if (d.rule.size() >= 2 && d.rule[0] == 'A' && std::isdigit(d.rule[1]) != 0) {
      coverage.insert("diag:" + d.rule);
    } else if (d.rule.size() >= 2 && d.rule[0] == 'I' && std::isdigit(d.rule[1]) != 0) {
      coverage.insert("ifr:" + d.rule);
    }
  }
}

struct SupervisedOutcome {
  trace::RunReport report;
  std::vector<std::string> rung_kinds;  ///< emission order, with duplicates
};

/// The single-stream runtime harness: the bugs::evaluate_stream construction
/// (fresh testbed lab, variant-derived config, V3 world model + parked-arm
/// boxes + live arm-state provider) plus the scenario extras — a seeded fault
/// schedule, the recovery/assurance ladder, and an observability collector
/// the rung coverage is read from.
SupervisedOutcome run_supervised(const ScenarioSpec& spec, const std::vector<Command>& commands) {
  sim::LabBackend backend(sim::testbed_profile());
  sim::build_hein_testbed_deck(backend);

  if (spec.faults.transients > 0 || spec.faults.permanent) {
    dev::FaultSchedule schedule;
    if (spec.faults.transients > 0) {
      std::vector<std::pair<std::string, std::string>> pairs;
      for (const Command& c : commands) {
        std::pair<std::string, std::string> p{c.device, c.action};
        if (std::find(pairs.begin(), pairs.end(), p) == pairs.end()) pairs.push_back(p);
      }
      dev::FaultSchedule::ChaosOptions chaos;
      chaos.transient_count = spec.faults.transients;
      chaos.horizon_s = spec.faults.horizon_s;
      chaos.include_status_faults = spec.faults.include_status;
      std::mt19937_64 rng(derive_seed(spec.seed, 7));
      schedule = dev::FaultSchedule::chaos(rng, pairs, chaos);
    }
    if (spec.faults.permanent) {
      // Kill the first commanded action whose postconditions RABIT tracks: a
      // dead tracked action is observable, so the ladder retries, exhausts,
      // and escalates (quarantine -> safe state -> halt rung coverage).
      const std::vector<std::string>& safe = dev::FaultSchedule::default_dead_safe_actions();
      for (const Command& c : commands) {
        if (std::find(safe.begin(), safe.end(), c.action) == safe.end()) continue;
        dev::FaultPlan plan;
        plan.dead_actions = {c.action};
        schedule.add_permanent(c.device, plan);
        break;
      }
    }
    backend.set_fault_schedule(std::move(schedule));
  }

  core::EngineConfig config = core::config_from_backend(backend, spec.variant);
  core::HotPathConfig hot_path;

  std::optional<sim::ExtendedSimulator> simulator;
  if (spec.variant == core::Variant::ModifiedWithSim) {
    sim::WorldModel world = sim::deck_world_model(backend);
    for (const core::DeviceMeta& m : config.devices) {
      if (m.is_arm && m.sleep_box) {
        world.add_box(m.id, *m.sleep_box, sim::ObstacleKind::ParkedArm);
      }
    }
    sim::ExtendedSimulator::Options sim_options;
    sim_options.use_broad_phase = hot_path.broad_phase;
    sim_options.use_verdict_cache = hot_path.verdict_cache;
    simulator.emplace(std::move(world), sim_options);
    simulator->set_arm_state_provider(
        [&backend](std::string_view arm_id) -> std::optional<geom::Vec3> {
          const auto* arm =
              dynamic_cast<const dev::RobotArmDevice*>(backend.registry().find(arm_id));
          if (arm == nullptr) return std::nullopt;
          return arm->position_lab();
        });
  }

  core::RabitEngine engine(std::move(config), hot_path);
  if (simulator) engine.attach_simulator(&*simulator);

  obs::Collector collector;
  obs::Registry registry;
  trace::Supervisor::Options options;
  options.halt_on_alert = spec.halt_on_alert;
  if (spec.recovery) options.recovery = recovery::RecoveryPolicy{};
  if (spec.assurance && spec.variant == core::Variant::ModifiedWithSim) {
    options.assurance = assurance::AssuranceConfig{};
  }
  options.obs_sink = &collector;
  options.obs_metrics = &registry;
  options.obs_stream = "s0";

  trace::Supervisor supervisor(&engine, &backend, options);
  SupervisedOutcome outcome;
  outcome.report = supervisor.run(commands);
  for (const obs::RungRecord& rung : collector.rungs()) {
    outcome.rung_kinds.push_back(rung.kind);
  }
  return outcome;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  MaterializedScenario mat = materialize(spec);

  std::set<std::string> coverage;
  std::set<std::string> diagnostics;
  std::set<std::string> rungs;
  std::set<std::string> oracles;
  ScenarioVerdict verdict;

  // --- static pre-flight -------------------------------------------------
  absorb_report(analysis::lint_config(mat.linted_config), diagnostics, coverage);
  absorb_report(analysis::lint_recovery_policy(mat.linted_policy), diagnostics, coverage);

  std::vector<analysis::AnalysisReport> stream_reports;
  stream_reports.reserve(mat.streams.size());
  for (const fleet::CampaignStreamSpec& stream : mat.streams) {
    stream_reports.push_back(analysis::analyze_stream(mat.config, stream.commands));
    absorb_report(stream_reports.back(), diagnostics, coverage);
  }
  if (!mat.probe_script.empty()) {
    absorb_report(analysis::analyze_script(mat.config, mat.probe_script), diagnostics, coverage);
  }

  analysis::AnalysisReport interference;
  if (mat.streams.size() > 1) {
    std::vector<analysis::CampaignStream> campaign;
    for (const fleet::CampaignStreamSpec& stream : mat.streams) {
      campaign.push_back(analysis::CampaignStream{stream.name, stream.commands});
    }
    interference = analysis::analyze_campaign(mat.config, campaign);
    absorb_report(interference, diagnostics, coverage);
  }

  // --- runtime ------------------------------------------------------------
  // (stream index, command index, alert, cross-stream) across both regimes.
  struct RuntimeAlert {
    std::size_t stream;
    std::size_t command;
    core::Alert alert;
    bool cross_stream;
  };
  std::vector<RuntimeAlert> runtime_alerts;

  bool demoted = false;
  if (mat.streams.size() == 1) {
    SupervisedOutcome outcome = run_supervised(spec, mat.streams.front().commands);
    verdict.halted = outcome.report.halted;
    verdict.damage = !outcome.report.damage.empty();
    for (std::size_t i = 0; i < outcome.report.steps.size(); ++i) {
      const trace::SupervisedStep& step = outcome.report.steps[i];
      if (step.alert) runtime_alerts.push_back({0, i, *step.alert, false});
      if (step.demoted) demoted = true;
    }
    for (const std::string& kind : outcome.rung_kinds) {
      rungs.insert(kind);
      coverage.insert("rung:" + kind);
    }
  } else {
    fleet::CampaignSpec campaign;
    campaign.variant = spec.variant;
    campaign.seed = static_cast<unsigned>(spec.seed);
    campaign.halt_on_alert = spec.halt_on_alert;
    campaign.streams = mat.streams;
    fleet::ShardedCampaignOptions options;
    options.workers = 2;
    // The monolithic-vs-sharded diff is only meaningful when both runs check
    // their full schedules: a global halt (monolithic) vs a shard-local halt
    // truncates the two alert sets differently by design.
    options.validate_certificates = !spec.halt_on_alert;
    analysis::ShardPlan plan;
    fleet::CampaignReport report = fleet::Fleet::run(campaign, options, &plan);

    verdict.shards = report.shards;
    for (const analysis::Diagnostic& d : plan.diagnostics.diagnostics) {
      diagnostics.insert(d.rule);
      if (d.rule.size() >= 2 && d.rule[0] == 'S' && std::isdigit(d.rule[1]) != 0) {
        coverage.insert("shard:" + d.rule);
      }
    }
    for (const fleet::CampaignAlert& a : report.alerts) {
      runtime_alerts.push_back({a.stream, a.command_index, a.alert, a.cross_stream});
      if (a.cross_stream) ++verdict.cross_stream_alerts;
    }
    for (const std::string& breach : report.certificate_breaches) {
      oracles.insert("certificate_breach:" + breach);
    }
    for (const std::string& violation : report.oracle_violations) {
      oracles.insert("shard_divergence:" + violation);
    }
  }

  for (const RuntimeAlert& a : runtime_alerts) {
    verdict.alerts.push_back(alert_key(a.stream, a.command, a.alert.rule));
    coverage.insert("rule:" + a.alert.rule);
  }

  // --- soundness oracles --------------------------------------------------
  const bool faulted = spec.faults.transients > 0 || spec.faults.permanent;

  // static_miss: the stream's FIRST precondition alert must be statically
  // predicted (the differential-soundness property). Only the first alert is
  // comparable: a blocked command is never executed, so the runtime and the
  // analyzer (which assumes commands proceed) see different device state past
  // it — later alerts may be block cascades the analyzer correctly roots
  // elsewhere. The check is single-stream only: in a campaign another stream
  // can rearrange shared state (park the arm, reopen a door) in ways
  // per-stream analysis cannot see, and the fleet's cross-stream attribution
  // (same rule at the same solo index) can be fooled by coincidence — the
  // interference_miss / shard / certificate oracles own the campaign side.
  // Fault-injected and demoted runs are exempt (fault/assurance effects are
  // runtime-only), as are truncated reports.
  if (mat.streams.size() == 1 && !faulted && !demoted && !runtime_alerts.empty()) {
    const RuntimeAlert* first = &runtime_alerts.front();
    for (const RuntimeAlert& a : runtime_alerts) {
      if (a.command < first->command) first = &a;
    }
    const analysis::AnalysisReport& report = stream_reports[first->stream];
    if (first->alert.kind == core::AlertKind::InvalidCommand && !report.truncated) {
      bool predicted = false;
      for (const analysis::Diagnostic& d : report.diagnostics) {
        if (d.rule == first->alert.rule) predicted = true;
      }
      if (!predicted) {
        oracles.insert("static_miss:s" + std::to_string(first->stream) + ":" +
                       first->alert.rule);
      }
    }
  }

  // interference_miss: a cross-stream precondition alert with no campaign
  // I-diagnostic naming the alerting device (the sweep's soundness contract
  // for analyze_campaign).
  for (const RuntimeAlert& a : runtime_alerts) {
    if (!a.cross_stream || interference.truncated) continue;
    if (a.alert.kind != core::AlertKind::InvalidCommand) continue;
    bool mapped = false;
    for (const analysis::Diagnostic& d : interference.diagnostics) {
      if (std::find(d.subjects.begin(), d.subjects.end(), a.alert.command.device) !=
          d.subjects.end()) {
        mapped = true;
      }
    }
    if (!mapped) {
      oracles.insert("interference_miss:" + a.alert.command.device + ":" + a.alert.rule);
    }
  }

  // false_alarm / false_halt: a clean, unfaulted, known-safe stream must run
  // alert-free; a halt must be justified by an alert or an escalation rung.
  if (!faulted) {
    for (const RuntimeAlert& a : runtime_alerts) {
      if (a.cross_stream) continue;
      if (!clean_gene(spec.streams[a.stream])) continue;
      oracles.insert("false_alarm:s" + std::to_string(a.stream) + ":" + a.alert.rule);
    }
  }
  if (verdict.halted && runtime_alerts.empty() && !rungs.contains("halt")) {
    oracles.insert("false_halt");
  }

  verdict.diagnostics = sorted_unique(std::move(diagnostics));
  verdict.rungs = sorted_unique(std::move(rungs));
  verdict.oracle_failures = sorted_unique(std::move(oracles));

  ScenarioResult result;
  result.verdict = std::move(verdict);
  result.coverage = sorted_unique(std::move(coverage));
  return result;
}

// ---------------------------------------------------------------------------
// Coverage
// ---------------------------------------------------------------------------

std::size_t CoverageMap::add_all(const std::vector<std::string>& keys) {
  std::size_t fresh = 0;
  for (const std::string& key : keys) {
    if (add(key)) ++fresh;
  }
  return fresh;
}

std::size_t CoverageMap::count_prefix(std::string_view prefix) const {
  std::size_t n = 0;
  for (const std::string& key : keys_) {
    if (key.rfind(prefix, 0) == 0) ++n;
  }
  return n;
}

json::Value CoverageMap::to_json() const {
  json::Object o;
  json::Array keys;
  for (const std::string& key : keys_) keys.emplace_back(key);
  o["keys"] = std::move(keys);
  o["total"] = static_cast<std::int64_t>(keys_.size());
  return json::Value(std::move(o));
}

const std::vector<std::string>& reachable_coverage() {
  // Measured by long rabit_fuzz campaigns on the Hein testbed deck: two
  // independent 4000-iteration runs (--seed 1 and --seed 7) converge on
  // exactly this 44-key set. Extend only with keys you have seen a scenario
  // emit — the >= 80% gate divides by this list.
  static const std::vector<std::string> kReachable = {
      // clang-format off
      "cfg:CFG1", "cfg:CFG2", "cfg:CFG3", "cfg:CFG4", "cfg:CFG5", "cfg:CFG6",
      "cfg:CFG7", "cfg:CFG8", "cfg:CFG9", "cfg:CFG10", "cfg:CFG11",
      "diag:A1", "diag:A2", "diag:A3", "diag:A5", "diag:A6", "diag:A7",
      "diag:A8",
      "ifr:I1", "ifr:I2", "ifr:I3", "ifr:I4", "ifr:I5",
      "shard:S1", "shard:S2",
      "rule:G1", "rule:G2", "rule:G3", "rule:G4", "rule:G8", "rule:G9",
      "rule:G10", "rule:G11", "rule:C1", "rule:M1", "rule:POST", "rule:RTA",
      "rule:SIM",
      "rung:retry", "rung:repoll", "rung:demote", "rung:quarantine",
      "rung:safe_state", "rung:halt",
      // clang-format on
  };
  return kReachable;
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

namespace {

/// Every one-step reduction of `spec` the shrinker may try. Each candidate
/// weighs strictly less than `spec` (the caller re-checks; weight() makes
/// every lever here a descent step).
std::vector<ScenarioSpec> shrink_candidates(const ScenarioSpec& spec) {
  std::vector<ScenarioSpec> out;
  auto push = [&out, &spec](ScenarioSpec candidate) {
    if (candidate.streams.size() <= 1) {
      // Dropping to a single stream keeps the single-stream-only genes legal.
    } else {
      candidate.faults = FaultGene{};
      candidate.recovery = false;
      candidate.assurance = false;
    }
    if (weight(candidate) < weight(spec)) out.push_back(std::move(candidate));
  };

  for (std::size_t i = 0; i < spec.streams.size() && spec.streams.size() > 1; ++i) {
    ScenarioSpec c = spec;
    c.streams.erase(c.streams.begin() + static_cast<std::ptrdiff_t>(i));
    push(std::move(c));
  }
  for (std::size_t i = 0; i < spec.streams.size(); ++i) {
    if (spec.streams[i].mutations > 0) {
      ScenarioSpec c = spec;
      c.streams[i].mutations = 0;
      push(std::move(c));
      if (spec.streams[i].mutations > 1) {
        c = spec;
        c.streams[i].mutations /= 2;
        push(std::move(c));
      }
    }
    // Truncation: an untruncated stream first tries a short prefix, then the
    // prefix halves toward 1.
    if (spec.streams[i].prefix == 0) {
      ScenarioSpec c = spec;
      c.streams[i].prefix = 8;
      push(std::move(c));
    } else if (spec.streams[i].prefix > 1) {
      ScenarioSpec c = spec;
      c.streams[i].prefix /= 2;
      push(std::move(c));
    }
  }
  if (spec.faults.transients > 0) {
    ScenarioSpec c = spec;
    c.faults.transients = 0;
    push(std::move(c));
  }
  if (spec.faults.permanent) {
    ScenarioSpec c = spec;
    c.faults.permanent = false;
    push(std::move(c));
  }
  if (spec.perturb != ConfigPerturb::None) {
    ScenarioSpec c = spec;
    c.perturb = ConfigPerturb::None;
    push(std::move(c));
  }
  if (spec.probe != ScriptProbe::None) {
    ScenarioSpec c = spec;
    c.probe = ScriptProbe::None;
    push(std::move(c));
  }
  if (spec.assurance) {
    ScenarioSpec c = spec;
    c.assurance = false;
    push(std::move(c));
  }
  if (spec.recovery) {
    ScenarioSpec c = spec;
    c.recovery = false;
    push(std::move(c));
  }
  return out;
}

}  // namespace

ShrinkResult shrink_while(const ScenarioSpec& spec, const ScenarioVerdict& original,
                          const std::function<bool(const ScenarioVerdict&)>& keep) {
  if (!keep(original)) {
    throw std::invalid_argument("scenario: shrink requires a verdict the predicate keeps");
  }

  ShrinkResult best;
  best.spec = spec;
  best.verdict = original;
  // Greedy descent to a fixpoint. Every accepted candidate strictly
  // decreases weight(spec) (a positive integer), so the loop terminates; at
  // exit no single candidate move satisfies the predicate (1-minimal).
  bool progress = true;
  while (progress) {
    progress = false;
    for (ScenarioSpec& candidate : shrink_candidates(best.spec)) {
      ++best.attempts;
      ScenarioResult result = run_scenario(candidate);
      if (keep(result.verdict)) {
        best.spec = std::move(candidate);
        best.verdict = std::move(result.verdict);
        progress = true;
        break;
      }
    }
  }
  return best;
}

ShrinkResult shrink(const ScenarioSpec& failing, const ScenarioVerdict& original) {
  if (!original.failing()) {
    throw std::invalid_argument("scenario: shrink() requires a failing verdict");
  }
  const std::string cls = original.primary_failure_class();
  return shrink_while(failing, original, [&cls](const ScenarioVerdict& v) {
    return v.failing() && v.primary_failure_class() == cls;
  });
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

json::Value corpus_entry_to_json(const CorpusEntry& entry) {
  json::Object o;
  o["name"] = entry.name;
  o["spec"] = spec_to_json(entry.spec);
  o["verdict"] = verdict_to_json(entry.verdict);
  return json::Value(std::move(o));
}

CorpusEntry corpus_entry_from_json(const json::Value& doc) {
  if (!doc.is_object()) throw std::runtime_error("corpus entry: not an object");
  const json::Value* spec = doc.find("spec");
  const json::Value* verdict = doc.find("verdict");
  if (spec == nullptr) throw std::runtime_error("corpus entry: missing 'spec'");
  if (verdict == nullptr) throw std::runtime_error("corpus entry: missing 'verdict'");
  CorpusEntry entry;
  entry.name = doc.get_or("name", std::string(""));
  entry.spec = spec_from_json(*spec);
  entry.verdict = verdict_from_json(*verdict);
  return entry;
}

std::vector<CorpusEntry> load_corpus_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<CorpusEntry> entries;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return entries;

  std::vector<fs::path> files;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".json") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof()) {
      throw std::runtime_error("corpus: cannot read " + path.string());
    }
    try {
      CorpusEntry entry = corpus_entry_from_json(json::parse(buffer.str()));
      if (entry.name.empty()) entry.name = path.stem().string();
      entries.push_back(std::move(entry));
    } catch (const std::exception& e) {
      throw std::runtime_error("corpus: " + path.string() + ": " + e.what());
    }
  }
  return entries;
}

bool save_corpus_entry(const std::string& dir, const CorpusEntry& entry, std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create " + dir + ": " + ec.message();
    return false;
  }
  fs::path path = fs::path(dir) / (entry.name + ".json");
  std::ofstream out(path);
  out << json::serialize_pretty(corpus_entry_to_json(entry)) << '\n';
  if (!out.good()) {
    if (error != nullptr) *error = "cannot write " + path.string();
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// The fuzzing engine
// ---------------------------------------------------------------------------

double FuzzReport::coverage_fraction() const {
  const std::vector<std::string>& reachable = reachable_coverage();
  if (reachable.empty()) return 1.0;
  std::size_t hit = 0;
  for (const std::string& key : reachable) {
    if (coverage.covered(key)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(reachable.size());
}

json::Value FuzzReport::to_json() const {
  json::Object o;
  o["iterations"] = static_cast<std::int64_t>(iterations);
  o["coverage"] = coverage.to_json();
  o["reachable"] = static_cast<std::int64_t>(reachable_coverage().size());
  o["coverage_fraction"] = coverage_fraction();
  json::Array curve;
  for (const auto& [iteration, keys] : growth) {
    json::Array point;
    point.emplace_back(static_cast<std::int64_t>(iteration));
    point.emplace_back(static_cast<std::int64_t>(keys));
    curve.emplace_back(std::move(point));
  }
  o["growth"] = std::move(curve);
  json::Array repro_names;
  for (const CorpusEntry& r : repros) repro_names.emplace_back(r.name);
  o["repros"] = std::move(repro_names);
  o["wall_s"] = wall_s;
  return json::Value(std::move(o));
}

namespace {

StreamGene steered_stream(WorkflowKind kind, std::uint64_t seed, std::uint64_t salt) {
  StreamGene g;
  g.workflow = kind;
  g.seed = derive_seed(seed, 300 + salt);
  return g;
}

/// Biases `spec` toward one still-dark coverage key. Best-effort and purely
/// gene-level: the steered spec stays a valid genome, so a steering miss
/// costs nothing but the iteration.
void steer(ScenarioSpec& spec, const std::string& target, std::uint64_t it_seed,
           std::mt19937_64& rng) {
  if (target.rfind("cfg:CFG", 0) == 0) {
    // ConfigPerturb enumerators 1..11 line up with CFG1..CFG11.
    int n = std::stoi(target.substr(7));
    if (n >= 1 && n < static_cast<int>(kConfigPerturbs)) {
      spec.perturb = static_cast<ConfigPerturb>(n);
    }
  } else if (target.rfind("diag:A", 0) == 0) {
    switch (target.back()) {
      case '5': spec.probe = ScriptProbe::UnresolvedThreshold; break;
      case '6': spec.probe = ScriptProbe::UndefinedVariable; break;
      case '7': spec.probe = ScriptProbe::UnresolvedIndex; break;
      case '8': spec.probe = ScriptProbe::LoopBudget; break;
      default: break;  // A1..A4 come from mutated streams; nothing to force
    }
  } else if (target == "rung:demote" || target == "rule:RTA") {
    // Demotion (and its RTA alert) needs a trajectory the preconditions
    // admit but the predictive assurance ladder rejects: the DirtyV3 grid
    // skim, under the V3 simulator with the assurance module armed.
    spec.streams = {steered_stream(WorkflowKind::DirtyV3, it_seed, 0)};
    spec.variant = core::Variant::ModifiedWithSim;
    spec.recovery = true;
    spec.assurance = true;
    spec.faults = FaultGene{};
  } else if (target.rfind("rung:", 0) == 0) {
    const std::string kind = target.substr(5);
    spec.streams = {steered_stream(WorkflowKind::Testbed, it_seed, 0)};
    spec.recovery = true;
    spec.faults.transients = 4;
    spec.faults.include_status = true;
    spec.faults.permanent =
        kind == "quarantine" || kind == "safe_state" || kind == "halt";
  } else if (target.rfind("ifr:I", 0) == 0 || target.rfind("shard:", 0) == 0) {
    // Pairs chosen so the two streams share exactly the surface the rule
    // inspects: setpoints (I4), consumable budgets (I3/I6) and the same
    // stations (I1, and the S1 single-shard collapse), or one arm with
    // asymmetric ignore declarations (I2/I5).
    WorkflowKind a = WorkflowKind::Dosing;
    WorkflowKind b = WorkflowKind::Dosing;
    if (target == "ifr:I4") {
      a = b = WorkflowKind::Hotplate;
    } else if (target == "ifr:I2" || target == "ifr:I5") {
      a = WorkflowKind::Testbed;
      b = WorkflowKind::Park;
    }
    spec.streams = {steered_stream(a, it_seed, 1), steered_stream(b, it_seed, 2)};
  } else if (target.rfind("rule:", 0) == 0) {
    // Runtime rules come from buggy streams: mutate a testbed workflow.
    if (spec.streams.empty()) spec.streams = {steered_stream(WorkflowKind::Testbed, it_seed, 3)};
    StreamGene& g = spec.streams[rng() % spec.streams.size()];
    g.workflow = WorkflowKind::Testbed;
    g.mutations = 1 + static_cast<std::uint32_t>(rng() % 3);
  }
  if (spec.streams.size() > 1) {
    spec.faults = FaultGene{};
    spec.recovery = false;
    spec.assurance = false;
  }
}

}  // namespace

FuzzReport fuzz(const FuzzOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  FuzzReport report;
  std::vector<ScenarioSpec> pool;
  std::map<std::string, CorpusEntry> repro_by_class;
  std::set<std::string> pinned_classes;

  auto note = [&](const ScenarioSpec& spec, const ScenarioResult& result, bool pinned = false) {
    ++report.iterations;
    if (report.coverage.add_all(result.coverage) > 0) {
      report.growth.emplace_back(report.iterations, report.coverage.size());
      pool.push_back(spec);
    }
    if (!result.verdict.failing()) return;
    const std::string cls = result.verdict.primary_failure_class();
    if (pinned) {
      // A checked-in corpus entry that fails its oracle is a *triaged* known
      // failure (pinned by the corpus gate with its verdict); claiming the
      // class here keeps the nightly from re-reporting it as a fresh repro.
      pinned_classes.insert(cls);
      return;
    }
    if (pinned_classes.contains(cls) || repro_by_class.contains(cls)) return;
    CorpusEntry entry;
    entry.spec = spec;
    entry.verdict = result.verdict;
    if (options.shrink_failures) {
      ShrinkResult minimal = shrink(spec, result.verdict);
      entry.spec = std::move(minimal.spec);
      entry.verdict = std::move(minimal.verdict);
    }
    entry.name = cls + "_" + std::to_string(entry.spec.seed);
    repro_by_class.emplace(cls, std::move(entry));
  };

  for (const ScenarioSpec& spec : options.corpus) {
    note(spec, run_scenario(spec), /*pinned=*/true);
  }

  const std::vector<std::string>& reachable = reachable_coverage();
  for (std::size_t it = 0; it < options.iterations; ++it) {
    if (options.time_budget_s > 0.0) {
      const double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      if (elapsed >= options.time_budget_s) break;
    }

    const std::uint64_t it_seed = derive_seed(options.seed, 10'000 + it);
    std::mt19937_64 rng(derive_seed(it_seed, 2));
    ScenarioSpec spec;
    if (!pool.empty() && (rng() % 100) < 60) {
      spec = mutate(pool[rng() % pool.size()], it_seed);
    } else {
      spec = generate(it_seed);
    }

    // Steering: rotate through the families still dark so no single hard
    // target starves the rest.
    std::vector<const std::string*> dark;
    for (const std::string& key : reachable) {
      if (!report.coverage.covered(key)) dark.push_back(&key);
    }
    if (!dark.empty() && (rng() % 100) < 70) {
      steer(spec, *dark[it % dark.size()], it_seed, rng);
    }

    note(spec, run_scenario(spec));
  }

  for (auto& [cls, entry] : repro_by_class) {
    report.repros.push_back(std::move(entry));
  }
  report.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return report;
}

}  // namespace rabit::scenario
