// Rulebase-verifier witnesses in corpus-spec form: self-contained JSON
// documents `rabit_fuzz --replay` (and the sanitizer CI jobs) confirm
// against a fresh engine, plus the R8 dark-key classification that marries
// the verifier to the fuzzer's measured coverage map.
#include <algorithm>
#include <utility>

#include "analysis/rulecheck.hpp"
#include "core/config.hpp"
#include "scenario/fuzz.hpp"

namespace rabit::scenario {

json::Value witness_entry_to_json(const std::string& name, const core::EngineConfig& config,
                                  const analysis::RuleFinding& finding) {
  json::Object root;
  root["name"] = name;
  root["config"] = core::config_to_json(config);
  root["diagnostic"] = analysis::diagnostic_to_json(finding.diagnostic);
  if (finding.witness) root["witness"] = analysis::witness_to_json(*finding.witness);
  if (!finding.proof.empty()) root["proof"] = finding.proof;
  return json::Value(std::move(root));
}

bool is_witness_entry(const json::Value& doc) {
  if (!doc.is_object()) return false;
  const json::Object& root = doc.as_object();
  return root.contains("config") && (root.contains("witness") || root.contains("proof"));
}

WitnessEntryReplay replay_witness_entry(const json::Value& doc) {
  WitnessEntryReplay result;
  const json::Object& root = doc.as_object();
  result.name = root.contains("name") ? root.at("name").as_string() : "<unnamed>";
  core::EngineConfig config = core::config_from_json(root.at("config"));

  if (const json::Value* witness_doc = doc.find("witness")) {
    analysis::RuleWitness witness = analysis::witness_from_json(*witness_doc);
    analysis::WitnessReplay replay = analysis::replay_witness(config, witness);
    result.confirmed = replay.confirmed;
    result.detail = replay.confirmed
                        ? std::to_string(witness.steps.size()) + " step(s) reproduced"
                        : replay.detail;
    return result;
  }

  // Proof-only document (R3/R4/R8): re-derive the findings and confirm the
  // same machine-checkable tag still falls out of the config.
  std::string proof = root.at("proof").as_string();
  analysis::RuleCheckReport report = check_rules_with_coverage(config);
  result.confirmed =
      std::any_of(report.findings.begin(), report.findings.end(),
                  [&proof](const analysis::RuleFinding& f) { return f.proof == proof; });
  result.detail = result.confirmed ? "proof tag re-derived: " + proof
                                   : "proof tag no longer derived: " + proof;
  return result;
}

analysis::RuleCheckReport check_rules_with_coverage(const core::EngineConfig& config) {
  analysis::RuleCheckOptions options;
  options.measured_coverage = reachable_coverage();
  return analysis::check_rules(config, options);
}

}  // namespace rabit::scenario
