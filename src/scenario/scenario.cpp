#include "scenario/scenario.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "bugs/bugs.hpp"
#include "devices/robot_arm.hpp"
#include "rad/rad.hpp"
#include "script/workflows.hpp"
#include "sim/deck.hpp"

namespace rabit::scenario {

using dev::Command;

// ---------------------------------------------------------------------------
// Seed derivation
// ---------------------------------------------------------------------------

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t index) {
  // splitmix64 with the golden-gamma stride; see Steele et al., "Fast
  // Splittable Pseudorandom Number Generators".
  std::uint64_t z = root + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// ---------------------------------------------------------------------------
// Enum names
// ---------------------------------------------------------------------------

std::string_view to_string(WorkflowKind k) {
  switch (k) {
    case WorkflowKind::Testbed: return "testbed";
    case WorkflowKind::RadDosing: return "rad_dosing";
    case WorkflowKind::Hotplate: return "hotplate";
    case WorkflowKind::Dosing: return "dosing";
    case WorkflowKind::Park: return "park";
    case WorkflowKind::DirtyV3: return "dirty_v3";
  }
  return "?";
}

std::string_view to_string(ConfigPerturb p) {
  switch (p) {
    case ConfigPerturb::None: return "none";
    case ConfigPerturb::DuplicateDeviceId: return "duplicate_device_id";
    case ConfigPerturb::UnknownSiteDevice: return "unknown_site_device";
    case ConfigPerturb::UnknownSoftWallArm: return "unknown_soft_wall_arm";
    case ConfigPerturb::ThresholdUnknownAction: return "threshold_unknown_action";
    case ConfigPerturb::AliasShadowsCanonical: return "alias_shadows_canonical";
    case ConfigPerturb::UnreachableSite: return "unreachable_site";
    case ConfigPerturb::OverlappingCuboids: return "overlapping_cuboids";
    case ConfigPerturb::NonPositiveThreshold: return "non_positive_threshold";
    case ConfigPerturb::OverlappingArmWorkspaces: return "overlapping_arm_workspaces";
    case ConfigPerturb::CapacityBelowThresholds: return "capacity_below_thresholds";
    case ConfigPerturb::FatalRecoveryPolicy: return "fatal_recovery_policy";
  }
  return "?";
}

std::string_view to_string(ScriptProbe p) {
  switch (p) {
    case ScriptProbe::None: return "none";
    case ScriptProbe::UndefinedVariable: return "undefined_variable";
    case ScriptProbe::UnresolvedIndex: return "unresolved_index";
    case ScriptProbe::LoopBudget: return "loop_budget";
    case ScriptProbe::UnresolvedThreshold: return "unresolved_threshold";
  }
  return "?";
}

namespace {

template <class Enum>
Enum enum_from_string(std::string_view name, std::size_t count, const char* what) {
  for (std::size_t i = 0; i < count; ++i) {
    if (to_string(static_cast<Enum>(i)) == name) return static_cast<Enum>(i);
  }
  throw std::runtime_error(std::string("scenario: unknown ") + what + " '" +
                           std::string(name) + "'");
}

std::string_view variant_name(core::Variant v) {
  switch (v) {
    case core::Variant::Initial: return "initial";
    case core::Variant::Modified: return "modified";
    case core::Variant::ModifiedWithSim: return "modified_with_sim";
  }
  return "?";
}

core::Variant variant_from_name(std::string_view name) {
  if (name == "initial") return core::Variant::Initial;
  if (name == "modified") return core::Variant::Modified;
  if (name == "modified_with_sim") return core::Variant::ModifiedWithSim;
  throw std::runtime_error("scenario: unknown variant '" + std::string(name) + "'");
}

}  // namespace

// ---------------------------------------------------------------------------
// Weight and description
// ---------------------------------------------------------------------------

std::size_t weight(const ScenarioSpec& spec) {
  std::size_t w = 0;
  for (const StreamGene& g : spec.streams) {
    w += 1000;
    w += static_cast<std::size_t>(g.mutations) * 10;
    // An untruncated stream weighs more than any explicit prefix the
    // shrinker would introduce, so truncation is always a descent step.
    w += g.prefix == 0 ? 500 : std::min<std::size_t>(g.prefix, 499);
  }
  w += static_cast<std::size_t>(spec.faults.transients) * 5;
  if (spec.faults.permanent) w += 5;
  if (spec.perturb != ConfigPerturb::None) w += 3;
  if (spec.probe != ScriptProbe::None) w += 3;
  if (spec.recovery) w += 1;
  if (spec.assurance) w += 1;
  return w;
}

std::string describe(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "seed=" << spec.seed << ' ' << variant_name(spec.variant)
     << (spec.halt_on_alert ? " halt" : " continue") << " streams=[";
  for (std::size_t i = 0; i < spec.streams.size(); ++i) {
    const StreamGene& g = spec.streams[i];
    if (i != 0) os << ',';
    os << to_string(g.workflow);
    if (g.mutations > 0) os << '+' << g.mutations << "mut";
    if (g.prefix > 0) os << "/#" << g.prefix;
  }
  os << ']';
  if (spec.faults.transients > 0) os << " faults=" << spec.faults.transients;
  if (spec.faults.permanent) os << " permfault";
  if (spec.recovery) os << " recovery";
  if (spec.assurance) os << " assurance";
  if (spec.perturb != ConfigPerturb::None) os << " perturb=" << to_string(spec.perturb);
  if (spec.probe != ScriptProbe::None) os << " probe=" << to_string(spec.probe);
  return os.str();
}

// ---------------------------------------------------------------------------
// Generation and mutation
// ---------------------------------------------------------------------------

namespace {

StreamGene draw_stream(std::mt19937_64& rng, std::uint64_t master, std::uint64_t index) {
  StreamGene g;
  g.workflow = static_cast<WorkflowKind>(
      std::uniform_int_distribution<int>(0, static_cast<int>(kWorkflowKinds) - 1)(rng));
  g.seed = derive_seed(master, 100 + index);
  // Most streams are clean; mutated streams carry 1..3 edits like the
  // paper's naive-programmer protocol ("adding, deleting, updating, or
  // reordering one or two lines").
  if (std::uniform_real_distribution<double>(0.0, 1.0)(rng) < 0.45) {
    g.mutations = std::uniform_int_distribution<std::uint32_t>(1, 3)(rng);
  }
  return g;
}

}  // namespace

ScenarioSpec generate(std::uint64_t seed) {
  std::mt19937_64 rng(derive_seed(seed, 0));
  auto coin = [&rng](double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
  };

  ScenarioSpec spec;
  spec.seed = seed;
  int variant_draw = std::uniform_int_distribution<int>(0, 9)(rng);
  spec.variant = variant_draw < 6   ? core::Variant::ModifiedWithSim
                 : variant_draw < 9 ? core::Variant::Modified
                                    : core::Variant::Initial;
  spec.halt_on_alert = coin(0.7);

  // 60% single-stream supervised runs (the fault/recovery/assurance regime),
  // 40% campaigns of 2..3 streams (the interference/shard regime).
  std::size_t stream_count = coin(0.6) ? 1 : std::uniform_int_distribution<std::size_t>(2, 3)(rng);
  for (std::size_t i = 0; i < stream_count; ++i) {
    spec.streams.push_back(draw_stream(rng, seed, i));
  }

  if (stream_count == 1) {
    if (coin(0.5)) {
      spec.faults.transients = std::uniform_int_distribution<std::uint32_t>(2, 8)(rng);
      spec.faults.horizon_s = std::uniform_real_distribution<double>(30.0, 180.0)(rng);
      spec.faults.include_status = coin(0.7);
      spec.faults.permanent = coin(0.2);
      spec.recovery = true;
    }
    if (spec.variant == core::Variant::ModifiedWithSim) spec.assurance = coin(0.3);
  }

  if (coin(0.25)) {
    spec.perturb = static_cast<ConfigPerturb>(
        std::uniform_int_distribution<int>(1, static_cast<int>(kConfigPerturbs) - 1)(rng));
  }
  if (coin(0.2)) {
    spec.probe = static_cast<ScriptProbe>(
        std::uniform_int_distribution<int>(1, static_cast<int>(kScriptProbes) - 1)(rng));
  }
  return spec;
}

ScenarioSpec mutate(const ScenarioSpec& parent, std::uint64_t seed) {
  std::mt19937_64 rng(derive_seed(seed, 1));
  ScenarioSpec spec = parent;
  spec.seed = seed;

  int op = std::uniform_int_distribution<int>(0, 7)(rng);
  std::uniform_int_distribution<std::size_t> pick(0, spec.streams.size() - 1);
  switch (op) {
    case 0:  // add a stream (campaigns grow the interference surface)
      if (spec.streams.size() < 4) {
        spec.streams.push_back(draw_stream(rng, seed, spec.streams.size()));
      }
      break;
    case 1:  // drop a stream
      if (spec.streams.size() > 1) {
        spec.streams.erase(spec.streams.begin() +
                           static_cast<std::ptrdiff_t>(pick(rng) % spec.streams.size()));
      }
      break;
    case 2: {  // retarget a stream's workflow
      StreamGene& g = spec.streams[pick(rng)];
      g.workflow = static_cast<WorkflowKind>(
          std::uniform_int_distribution<int>(0, static_cast<int>(kWorkflowKinds) - 1)(rng));
      break;
    }
    case 3: {  // bump / clear a stream's mutation count
      StreamGene& g = spec.streams[pick(rng)];
      g.mutations = g.mutations >= 3 ? 0 : g.mutations + 1;
      break;
    }
    case 4: {  // reseed a stream chain
      StreamGene& g = spec.streams[pick(rng)];
      g.seed = derive_seed(seed, 200 + pick(rng));
      break;
    }
    case 5:  // toggle the fault gene (single-stream regime only)
      if (spec.streams.size() == 1) {
        if (spec.faults.transients == 0) {
          spec.faults.transients = std::uniform_int_distribution<std::uint32_t>(2, 8)(rng);
          spec.recovery = true;
        } else if (!spec.faults.permanent) {
          spec.faults.permanent = true;
        } else {
          spec.faults = FaultGene{};
        }
      }
      break;
    case 6:  // rotate the config perturbation
      spec.perturb = static_cast<ConfigPerturb>(
          std::uniform_int_distribution<int>(0, static_cast<int>(kConfigPerturbs) - 1)(rng));
      break;
    default:  // rotate the script probe
      spec.probe = static_cast<ScriptProbe>(
          std::uniform_int_distribution<int>(0, static_cast<int>(kScriptProbes) - 1)(rng));
      break;
  }
  // A campaign cannot carry the single-stream-only genes.
  if (spec.streams.size() > 1) {
    spec.faults.transients = 0;
    spec.recovery = false;
    spec.assurance = false;
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Materialization
// ---------------------------------------------------------------------------

namespace {

Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  Command c;
  c.device = std::move(device);
  c.action = std::move(action);
  c.args = json::Value(std::move(args));
  return c;
}

std::vector<Command> workflow_commands(const sim::LabBackend& staging, WorkflowKind kind,
                                       std::mt19937_64& rng) {
  namespace ids = sim::deck_ids;
  switch (kind) {
    case WorkflowKind::Testbed:
      return script::record_workflow(staging, script::testbed_workflow_source());
    case WorkflowKind::RadDosing:
      return rad::synth_session(staging, rng, /*noise_rate=*/0.15);
    case WorkflowKind::Hotplate: {
      // Setpoint writes stay under the configured threshold (150 C) so the
      // stream is individually safe; two streams with different draws race
      // the setpoint (I4). Deliberately no `stir`: stirring is an *active*
      // action and G5 rejects it with no container on the plate.
      double celsius = std::uniform_real_distribution<double>(40.0, 120.0)(rng);
      double hold = std::uniform_real_distribution<double>(40.0, 120.0)(rng);
      std::vector<Command> cmds;
      cmds.push_back(make_cmd(ids::kHotplate, "set_temperature",
                              [&] { json::Object o; o["celsius"] = celsius; return o; }()));
      cmds.push_back(make_cmd(ids::kHotplate, "set_temperature",
                              [&] { json::Object o; o["celsius"] = hold; return o; }()));
      cmds.push_back(make_cmd(ids::kHotplate, "stop"));
      return cmds;
    }
    case WorkflowKind::Dosing: {
      // Station dosing without arm motion: each draw fits the per-command
      // budget, while two such streams can jointly overdraw vial capacity
      // (I3) or the G11 cumulative cap (I6).
      double quantity = std::uniform_real_distribution<double>(2.0, 8.0)(rng);
      double volume = std::uniform_real_distribution<double>(1.0, 6.0)(rng);
      std::vector<Command> cmds;
      cmds.push_back(make_cmd(ids::kDosingDevice, "run_action", [&] {
        json::Object o;
        o["delay"] = 1;
        o["quantity"] = quantity;
        return o;
      }()));
      cmds.push_back(make_cmd(ids::kDosingDevice, "stop_action",
                              [] { json::Object o; o["delay"] = 0; return o; }()));
      cmds.push_back(make_cmd(ids::kSyringePump, "draw_solvent",
                              [&] { json::Object o; o["volume"] = volume; return o; }()));
      cmds.push_back(make_cmd(ids::kSyringePump, "dose_solvent", [&] {
        json::Object o;
        o["volume"] = volume;
        o["target"] = ids::kVial1;
        return o;
      }()));
      return cmds;
    }
    case WorkflowKind::Park: {
      std::vector<Command> cmds;
      cmds.push_back(make_cmd(ids::kViperX, "go_home"));
      cmds.push_back(make_cmd(ids::kViperX, "go_sleep"));
      cmds.push_back(make_cmd(ids::kNed2, "go_home"));
      cmds.push_back(make_cmd(ids::kNed2, "go_sleep"));
      return cmds;
    }
    case WorkflowKind::DirtyV3: {
      // A V3-only dirty trajectory: the move skims 1.5-2.5 cm above the vial
      // grid (top z = 0.06). Every obstacle stays clear, so precondition
      // checking and the plain simulator admit it — but the clearance sits
      // inside the runtime-assurance margin (3 cm), so the predictive ladder
      // demotes the move to the fallback controller (rung:demote, rule:RTA).
      // x/y jitter stays >= 3.5 cm from every grid slot site, clear of G4.
      double x = std::uniform_real_distribution<double>(0.33, 0.37)(rng);
      double y = std::uniform_real_distribution<double>(0.23, 0.27)(rng);
      double clearance = std::uniform_real_distribution<double>(0.015, 0.025)(rng);
      const auto* arm =
          dynamic_cast<const dev::RobotArmDevice*>(staging.registry().find(ids::kViperX));
      if (arm == nullptr) throw std::logic_error("scenario: deck has no viperx arm");
      geom::Vec3 local = arm->to_local(geom::Vec3(x, y, 0.06 + clearance));
      std::vector<Command> cmds;
      cmds.push_back(make_cmd(ids::kViperX, "move_to", [&] {
        json::Object o;
        json::Array p;
        p.emplace_back(local.x);
        p.emplace_back(local.y);
        p.emplace_back(local.z);
        o["position"] = std::move(p);
        return o;
      }()));
      cmds.push_back(make_cmd(ids::kViperX, "go_sleep"));
      return cmds;
    }
  }
  throw std::logic_error("scenario: unhandled workflow kind");
}

/// CFG-targeted edits of the derived config. Each arm of the switch nudges
/// exactly the condition its lint rule checks; the edits must keep the
/// config schema-valid (the mutation-validity test pins that).
void apply_perturb(core::EngineConfig& config, ConfigPerturb perturb) {
  namespace ids = sim::deck_ids;
  switch (perturb) {
    case ConfigPerturb::None:
    case ConfigPerturb::FatalRecoveryPolicy:  // handled on the policy, not here
      return;
    case ConfigPerturb::DuplicateDeviceId:
      if (!config.devices.empty()) config.devices.push_back(config.devices.front());
      return;
    case ConfigPerturb::UnknownSiteDevice:
      for (core::SiteMeta& s : config.sites) {
        if (s.is_receptacle()) {
          s.receptacle_device = "ghost_station";
          return;
        }
      }
      return;
    case ConfigPerturb::UnknownSoftWallArm:
      config.soft_walls.push_back(core::SoftWallSpec{
          "ghost_arm", geom::Aabb(geom::Vec3(0, 0, 0), geom::Vec3(0.1, 0.1, 0.1))});
      return;
    case ConfigPerturb::ThresholdUnknownAction:
      for (core::DeviceMeta& d : config.devices) {
        if (d.id == ids::kHotplate) {
          d.thresholds.push_back(core::ThresholdSpec{"engage_warp_drive", "factor", 9.0});
          return;
        }
      }
      return;
    case ConfigPerturb::AliasShadowsCanonical:
      for (core::DeviceMeta& d : config.devices) {
        if (d.id == ids::kHotplate) {
          // "stir" is a canonical hotplate action; aliasing it shadows it.
          d.action_aliases.emplace_back("stir", "set_temperature");
          return;
        }
      }
      return;
    case ConfigPerturb::UnreachableSite:
      // A corner of the workspace no arm can reach — but still inside the
      // config schema's coordinate bounds, so only the CFG6 lint trips.
      config.sites.push_back(core::SiteMeta{"orbit", geom::Vec3(1.9, 1.9, 1.9), "", "", ""});
      return;
    case ConfigPerturb::OverlappingCuboids:
      for (core::DeviceMeta& d : config.devices) {
        if (d.id == ids::kHotplate && d.box) {
          // Slide the hotplate cuboid onto the centrifuge's.
          geom::Vec3 size = d.box->size();
          *d.box = geom::Aabb::from_center(geom::Vec3(-0.45, 0.0, 0.10), size);
          return;
        }
      }
      return;
    case ConfigPerturb::NonPositiveThreshold:
      for (core::DeviceMeta& d : config.devices) {
        if (!d.thresholds.empty()) {
          d.thresholds.front().max = -5.0;
          return;
        }
      }
      return;
    case ConfigPerturb::OverlappingArmWorkspaces:
      // The testbed arms genuinely overlap; dropping the time-multiplex
      // declaration (and any covering soft wall) exposes CFG9.
      config.time_multiplex = false;
      config.soft_walls.clear();
      return;
    case ConfigPerturb::CapacityBelowThresholds:
      for (core::DeviceMeta& d : config.devices) {
        // Give the syringe pump a volume-dosing threshold so two devices
        // dose liquid, then the vial capacity sits below the summed caps.
        if (d.id == ids::kSyringePump) {
          d.thresholds.push_back(core::ThresholdSpec{"dose_solvent", "volume", 12.0});
        }
        if (d.id == ids::kHotplate) {
          d.thresholds.push_back(core::ThresholdSpec{"add_liquid", "ml", 8.0});
        }
      }
      return;
  }
}

std::string probe_source(ScriptProbe probe) {
  switch (probe) {
    case ScriptProbe::None:
      return "";
    case ScriptProbe::UndefinedVariable:
      return "viperx.go_home()\nlet spot = ghost_location\n";
    case ScriptProbe::UnresolvedIndex:
      return "let s = camera.measure_solubility(target=vial_1)\n"
             "let spot = locations[s]\n";
    case ScriptProbe::LoopBudget:
      return "let i = 0\nwhile (i < 1000) {\n    i = i + 1\n}\n";
    case ScriptProbe::UnresolvedThreshold:
      return "let m = camera.measure_solubility(target=vial_1)\n"
             "hotplate.set_temperature(celsius=m * 100)\n";
  }
  return "";
}

}  // namespace

MaterializedScenario materialize(const ScenarioSpec& spec) {
  if (spec.streams.empty()) {
    throw std::runtime_error("scenario: spec has no streams");
  }

  sim::LabBackend staging(sim::testbed_profile());
  sim::build_hein_testbed_deck(staging);

  MaterializedScenario mat;
  mat.config = core::config_from_backend(staging, spec.variant);
  mat.linted_config = core::config_from_backend(staging, spec.variant);
  apply_perturb(mat.linted_config, spec.perturb);
  if (spec.perturb == ConfigPerturb::FatalRecoveryPolicy) {
    mat.linted_policy.backoff_base_s = -1.0;  // fatal per recovery::validate
    mat.linted_policy.backoff_factor = 0.5;
  }

  for (std::size_t i = 0; i < spec.streams.size(); ++i) {
    const StreamGene& gene = spec.streams[i];
    std::uint64_t chain = gene.seed != 0 ? gene.seed : derive_seed(spec.seed, 100 + i);
    std::mt19937_64 rng(chain);
    std::vector<Command> commands = workflow_commands(staging, gene.workflow, rng);
    for (std::uint32_t m = 0; m < gene.mutations && commands.size() > 1; ++m) {
      commands = bugs::random_mutation(commands, rng).commands;
    }
    if (gene.prefix > 0 && gene.prefix < commands.size()) {
      commands.resize(gene.prefix);
    }
    fleet::CampaignStreamSpec stream;
    stream.name = "s" + std::to_string(i);
    stream.commands = std::move(commands);
    mat.streams.push_back(std::move(stream));
  }

  mat.probe_script = probe_source(spec.probe);
  return mat;
}

// ---------------------------------------------------------------------------
// JSON round trip
// ---------------------------------------------------------------------------

json::Value spec_to_json(const ScenarioSpec& spec) {
  json::Object o;
  o["seed"] = static_cast<std::int64_t>(spec.seed);
  o["variant"] = std::string(variant_name(spec.variant));
  o["halt_on_alert"] = spec.halt_on_alert;
  o["recovery"] = spec.recovery;
  o["assurance"] = spec.assurance;
  o["perturb"] = std::string(to_string(spec.perturb));
  o["probe"] = std::string(to_string(spec.probe));
  json::Object faults;
  faults["transients"] = static_cast<std::int64_t>(spec.faults.transients);
  faults["horizon_s"] = spec.faults.horizon_s;
  faults["include_status"] = spec.faults.include_status;
  faults["permanent"] = spec.faults.permanent;
  o["faults"] = json::Value(std::move(faults));
  json::Array streams;
  for (const StreamGene& g : spec.streams) {
    json::Object s;
    s["workflow"] = std::string(to_string(g.workflow));
    s["seed"] = static_cast<std::int64_t>(g.seed);
    s["mutations"] = static_cast<std::int64_t>(g.mutations);
    s["prefix"] = static_cast<std::int64_t>(g.prefix);
    streams.emplace_back(std::move(s));
  }
  o["streams"] = std::move(streams);
  return json::Value(std::move(o));
}

ScenarioSpec spec_from_json(const json::Value& doc) {
  if (!doc.is_object()) throw std::runtime_error("scenario spec: not an object");
  ScenarioSpec spec;
  spec.seed = static_cast<std::uint64_t>(doc.as_object().at("seed").as_int());
  spec.variant = variant_from_name(doc.as_object().at("variant").as_string());
  spec.halt_on_alert = doc.get_or("halt_on_alert", true);
  spec.recovery = doc.get_or("recovery", false);
  spec.assurance = doc.get_or("assurance", false);
  spec.perturb = enum_from_string<ConfigPerturb>(
      doc.get_or("perturb", std::string("none")), kConfigPerturbs, "perturb");
  spec.probe = enum_from_string<ScriptProbe>(doc.get_or("probe", std::string("none")),
                                             kScriptProbes, "probe");
  if (const json::Value* f = doc.find("faults")) {
    spec.faults.transients =
        static_cast<std::uint32_t>(f->get_or("transients", std::int64_t{0}));
    spec.faults.horizon_s = f->get_or("horizon_s", 120.0);
    spec.faults.include_status = f->get_or("include_status", true);
    spec.faults.permanent = f->get_or("permanent", false);
  }
  const json::Value* streams = doc.find("streams");
  if (streams == nullptr || !streams->is_array() || streams->as_array().empty()) {
    throw std::runtime_error("scenario spec: missing or empty 'streams'");
  }
  for (const json::Value& sv : streams->as_array()) {
    StreamGene g;
    g.workflow = enum_from_string<WorkflowKind>(sv.as_object().at("workflow").as_string(),
                                                kWorkflowKinds, "workflow");
    g.seed = static_cast<std::uint64_t>(sv.get_or("seed", std::int64_t{0}));
    g.mutations = static_cast<std::uint32_t>(sv.get_or("mutations", std::int64_t{0}));
    g.prefix = static_cast<std::uint32_t>(sv.get_or("prefix", std::int64_t{0}));
    spec.streams.push_back(g);
  }
  return spec;
}

json::Schema spec_schema() {
  return json::Schema(R"SCHEMA({
    "type": "object",
    "required": ["seed", "variant", "streams"],
    "properties": {
      "seed": {"type": "integer"},
      "variant": {"enum": ["initial", "modified", "modified_with_sim"]},
      "halt_on_alert": {"type": "boolean"},
      "recovery": {"type": "boolean"},
      "assurance": {"type": "boolean"},
      "perturb": {"enum": ["none", "duplicate_device_id", "unknown_site_device",
                           "unknown_soft_wall_arm", "threshold_unknown_action",
                           "alias_shadows_canonical", "unreachable_site",
                           "overlapping_cuboids", "non_positive_threshold",
                           "overlapping_arm_workspaces", "capacity_below_thresholds",
                           "fatal_recovery_policy"]},
      "probe": {"enum": ["none", "undefined_variable", "unresolved_index",
                         "loop_budget", "unresolved_threshold"]},
      "faults": {
        "type": "object",
        "properties": {
          "transients": {"type": "integer", "minimum": 0},
          "horizon_s": {"type": "number", "minimum": 0},
          "include_status": {"type": "boolean"},
          "permanent": {"type": "boolean"}
        }
      },
      "streams": {
        "type": "array",
        "minItems": 1,
        "items": {
          "type": "object",
          "required": ["workflow"],
          "properties": {
            "workflow": {"enum": ["testbed", "rad_dosing", "hotplate", "dosing", "park",
                                  "dirty_v3"]},
            "seed": {"type": "integer"},
            "mutations": {"type": "integer", "minimum": 0},
            "prefix": {"type": "integer", "minimum": 0}
          }
        }
      }
    }
  })SCHEMA");
}

}  // namespace rabit::scenario
