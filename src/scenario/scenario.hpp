// rabit::scenario — the generative scenario factory behind campaign fuzzing.
//
// The paper's evaluation runs 16 hand-written bugs against one testbed
// workflow; its stated future work is "generating large bug datasets — a
// challenging task in itself". This module is that generator, grown to
// production scope: a ScenarioSpec is a small declarative genome — workflow
// mix, per-stream mutation counts, a transient-fault gene, a config
// perturbation keyed to the CFG lint family, a script probe keyed to the
// analyzer-only A rules, recovery/assurance toggles — and every derived
// artifact (commands, fault schedules, perturbed configs) is a pure function
// of the spec. One master std::mt19937_64 seed chain threads through every
// generator (rad synthesis, bug mutations, chaos fault draws), so a whole
// campaign reproduces byte-identically from a single 64-bit seed.
//
// The fuzzing layer on top (fuzz.hpp) executes specs, reads coverage, and
// shrinks failures; this header owns the genome itself: generation,
// mutation, materialization, and the JSON form the regression corpus pins.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "fleet/fleet.hpp"
#include "json/json.hpp"
#include "recovery/recovery.hpp"

namespace rabit::scenario {

// ---------------------------------------------------------------------------
// Seed derivation
// ---------------------------------------------------------------------------

/// splitmix64 of (root + index * golden-gamma): the canonical way to derive
/// independent child seeds from one master seed. Deterministic, stateless,
/// and collision-resistant enough that per-stream / per-iteration chains
/// never correlate.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t root, std::uint64_t index);

// ---------------------------------------------------------------------------
// The genome
// ---------------------------------------------------------------------------

/// Workflow archetypes a stream gene can materialize. Each targets a
/// different slice of the rule / diagnostic space.
enum class WorkflowKind {
  Testbed,    ///< the Fig. 5 safe dosing workflow (recorded from the DSL)
  RadDosing,  ///< a rad::synth_session dosing experiment (seed-jittered)
  Hotplate,   ///< setpoint writes + stir (I4 setpoint races across streams)
  Dosing,     ///< station dosing without arm motion (I1/I3/I6 budgets)
  Park,       ///< arms home + sleep (trivially safe; multiplexing token)
  DirtyV3,    ///< a grid skim inside the assurance margin (RTA demote path)
};
inline constexpr std::size_t kWorkflowKinds = 6;

[[nodiscard]] std::string_view to_string(WorkflowKind k);

/// Config perturbation operators, one per CFG lint rule. Applied to the
/// derived EngineConfig before the static pre-flight; the runtime half of a
/// scenario always executes against the clean config (a perturbed config
/// models a researcher mistake the pre-flight gate would have rejected).
enum class ConfigPerturb {
  None,
  DuplicateDeviceId,         ///< CFG1
  UnknownSiteDevice,         ///< CFG2
  UnknownSoftWallArm,        ///< CFG3
  ThresholdUnknownAction,    ///< CFG4
  AliasShadowsCanonical,     ///< CFG5
  UnreachableSite,           ///< CFG6
  OverlappingCuboids,        ///< CFG7
  NonPositiveThreshold,      ///< CFG8
  OverlappingArmWorkspaces,  ///< CFG9
  CapacityBelowThresholds,   ///< CFG10
  FatalRecoveryPolicy,       ///< CFG11 (perturbs the recovery policy instead)
};
inline constexpr std::size_t kConfigPerturbs = 12;

[[nodiscard]] std::string_view to_string(ConfigPerturb p);

/// Script probes: short DSL fragments materialized alongside the streams and
/// analyzed statically (never executed), each aimed at one analyzer-only
/// diagnostic the linear command streams cannot reach.
enum class ScriptProbe {
  None,
  UndefinedVariable,    ///< A6: use of an undefined variable
  UnresolvedIndex,      ///< A7: index not statically resolvable
  LoopBudget,           ///< A8: unknown-bound loop hits the unroll budget
  UnresolvedThreshold,  ///< A5: thresholded argument statically unresolvable
};
inline constexpr std::size_t kScriptProbes = 5;

[[nodiscard]] std::string_view to_string(ScriptProbe p);

/// One stream of the campaign genome.
struct StreamGene {
  WorkflowKind workflow = WorkflowKind::Testbed;
  /// Per-stream chain seed (derive_seed of the master); drives workflow
  /// jitter and the mutation draws.
  std::uint64_t seed = 0;
  /// bugs::random_mutation applications, chained (mutant feeds mutant).
  std::uint32_t mutations = 0;
  /// Keep only the first `prefix` commands; 0 keeps the whole stream. The
  /// shrinker's truncation lever.
  std::uint32_t prefix = 0;

  friend bool operator==(const StreamGene&, const StreamGene&) = default;
};

/// Transient-fault gene; transients == 0 disables the schedule entirely.
/// Clearing bounds stay at dev::FaultSchedule::ChaosOptions defaults (clear
/// within <= 3 attempts or <= 4 modeled seconds), which the default recovery
/// ladder absorbs with margin — the false-halt oracle depends on that.
struct FaultGene {
  std::uint32_t transients = 0;
  double horizon_s = 120.0;
  bool include_status = true;
  /// Additionally arm one *permanent* dead-action fault on the stream's
  /// first non-arm device — a retry can never absorb it, so the ladder
  /// escalates (quarantine → safe state → halt rung coverage).
  bool permanent = false;

  friend bool operator==(const FaultGene&, const FaultGene&) = default;
};

struct ScenarioSpec {
  std::uint64_t seed = 0;  ///< master seed; every derived draw chains off it
  core::Variant variant = core::Variant::ModifiedWithSim;
  bool halt_on_alert = true;
  bool recovery = false;   ///< supervise with the default RecoveryPolicy
  bool assurance = false;  ///< enable the runtime-assurance decision module
  ConfigPerturb perturb = ConfigPerturb::None;
  ScriptProbe probe = ScriptProbe::None;
  FaultGene faults;
  std::vector<StreamGene> streams;  ///< >= 1; > 1 runs as a sharded campaign

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Shrink metric: a strictly positive integer that every accepted shrink
/// step strictly decreases (termination proof for the shrinker). Streams
/// dominate, then mutations, then prefix length, then the scalar genes.
[[nodiscard]] std::size_t weight(const ScenarioSpec& spec);

/// One-line human summary ("seed=42 v3 streams=2[testbed+2mut,hotplate] ...").
[[nodiscard]] std::string describe(const ScenarioSpec& spec);

// ---------------------------------------------------------------------------
// Generation and mutation
// ---------------------------------------------------------------------------

/// Generates a fresh spec from a master seed. Pure: same seed, same spec.
/// Draws 1..3 streams, biased toward single-stream supervised runs (the
/// regime where the recovery/assurance rungs live) but visiting campaigns
/// often enough to exercise the interference and shard families.
[[nodiscard]] ScenarioSpec generate(std::uint64_t seed);

/// Applies one structural mutation to `parent` (add/remove/retarget a
/// stream, bump mutations, toggle a scalar gene, reseed a stream chain).
/// Pure in (parent, seed); the result's master seed is re-derived so the
/// child is a self-contained reproducible genome.
[[nodiscard]] ScenarioSpec mutate(const ScenarioSpec& parent, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Materialization
// ---------------------------------------------------------------------------

/// Everything a spec denotes, concretely. Streams are materialized against a
/// pristine Hein testbed deck; the perturbed config/policy feed the static
/// pre-flight only (see ConfigPerturb).
struct MaterializedScenario {
  /// The clean derived config (config_from_backend at spec.variant).
  core::EngineConfig config;
  /// The perturbed copy the lint runs against (== config when perturb=None).
  core::EngineConfig linted_config;
  /// Recovery policy for the CFG11 lint (fatal when FatalRecoveryPolicy).
  recovery::RecoveryPolicy linted_policy;
  /// One entry per StreamGene, named "s0", "s1", ... in gene order.
  std::vector<fleet::CampaignStreamSpec> streams;
  /// DSL source of the script probe; empty when probe == None.
  std::string probe_script;
};

/// Materializes a spec. Deterministic: byte-identical streams for equal
/// specs. Throws std::runtime_error on an empty stream list.
[[nodiscard]] MaterializedScenario materialize(const ScenarioSpec& spec);

// ---------------------------------------------------------------------------
// JSON round trip (the corpus format's "spec" object)
// ---------------------------------------------------------------------------

[[nodiscard]] json::Value spec_to_json(const ScenarioSpec& spec);
/// Throws std::runtime_error naming the offending field on malformed input.
[[nodiscard]] ScenarioSpec spec_from_json(const json::Value& doc);

/// Schema for the spec JSON (what `rabit_fuzz --replay <file>` accepts);
/// the corpus gate validates every checked-in spec against it.
[[nodiscard]] json::Schema spec_schema();

}  // namespace rabit::scenario
