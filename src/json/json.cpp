#include "json/json.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace rabit::json {

// ---------------------------------------------------------------------------
// Object
// ---------------------------------------------------------------------------

const Value* Object::find(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value* Object::find(std::string_view key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value& Object::operator[](std::string_view key) {
  if (Value* v = find(key)) return *v;
  entries_.emplace_back(std::string(key), Value());
  return entries_.back().second;
}

const Value& Object::at(std::string_view key) const {
  if (const Value* v = find(key)) return *v;
  throw std::out_of_range("json::Object: missing key '" + std::string(key) + "'");
}

void Object::erase(std::string_view key) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) { return e.first == key; }),
                 entries_.end());
}

bool operator==(const Object& a, const Object& b) {
  // Order-insensitive comparison: researcher-edited files may reorder keys.
  if (a.size() != b.size()) return false;
  for (const auto& [k, v] : a.entries_) {
    const Value* other = b.find(k);
    if (other == nullptr || !(*other == v)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

Type Value::type() const {
  switch (data_.index()) {
    case 0: return Type::Null;
    case 1: return Type::Boolean;
    case 2: return Type::Integer;
    case 3: return Type::Double;
    case 4: return Type::String;
    case 5: return Type::Array;
    default: return Type::Object;
  }
}

std::string_view to_string(Type t) {
  switch (t) {
    case Type::Null: return "null";
    case Type::Boolean: return "boolean";
    case Type::Integer: return "integer";
    case Type::Double: return "double";
    case Type::String: return "string";
    case Type::Array: return "array";
    case Type::Object: return "object";
  }
  return "unknown";
}

namespace {
[[noreturn]] void type_mismatch(Type want, Type got) {
  throw std::runtime_error("json::Value: expected " + std::string(to_string(want)) +
                           ", got " + std::string(to_string(got)));
}
}  // namespace

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  type_mismatch(Type::Boolean, type());
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  type_mismatch(Type::Integer, type());
}

double Value::as_double() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*i);
  type_mismatch(Type::Double, type());
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  type_mismatch(Type::String, type());
}

const Array& Value::as_array() const {
  if (const auto* a = std::get_if<Array>(&data_)) return *a;
  type_mismatch(Type::Array, type());
}

Array& Value::as_array() {
  if (auto* a = std::get_if<Array>(&data_)) return *a;
  type_mismatch(Type::Array, type());
}

const Object& Value::as_object() const {
  if (const auto* o = std::get_if<Object>(&data_)) return *o;
  type_mismatch(Type::Object, type());
}

Object& Value::as_object() {
  if (auto* o = std::get_if<Object>(&data_)) return *o;
  type_mismatch(Type::Object, type());
}

const Value* Value::find(std::string_view key) const {
  const auto* o = std::get_if<Object>(&data_);
  return o != nullptr ? o->find(key) : nullptr;
}

bool Value::get_or(std::string_view key, bool fallback) const {
  const Value* v = as_object().find(key);
  return v != nullptr ? v->as_bool() : fallback;
}

std::int64_t Value::get_or(std::string_view key, std::int64_t fallback) const {
  const Value* v = as_object().find(key);
  return v != nullptr ? v->as_int() : fallback;
}

double Value::get_or(std::string_view key, double fallback) const {
  const Value* v = as_object().find(key);
  return v != nullptr ? v->as_double() : fallback;
}

std::string Value::get_or(std::string_view key, const std::string& fallback) const {
  const Value* v = as_object().find(key);
  return v != nullptr ? v->as_string() : fallback;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

ParseError::ParseError(std::string message, int line, int column)
    : std::runtime_error("JSON parse error at line " + std::to_string(line) + ", column " +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_whitespace();
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, line_, column_);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (eof()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void expect(char c) {
    if (eof() || peek() != c) fail(std::string("expected '") + c + "'");
    advance();
  }

  void skip_whitespace() {
    while (!eof()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    for (std::size_t i = 0; i < lit.size(); ++i) advance();
    return true;
  }

  Value parse_value() {
    if (eof()) fail("unexpected end of input");
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Value(nullptr);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_whitespace();
    if (!eof() && peek() == '}') {
      advance();
      return Value(std::move(obj));
    }
    while (true) {
      skip_whitespace();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (obj.contains(key)) fail("duplicate object key '" + key + "'");
      skip_whitespace();
      expect(':');
      skip_whitespace();
      obj[key] = parse_value();
      skip_whitespace();
      if (eof()) fail("unterminated object");
      char c = advance();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_whitespace();
    if (!eof() && peek() == ']') {
      advance();
      return Value(std::move(arr));
    }
    while (true) {
      skip_whitespace();
      arr.push_back(parse_value());
      skip_whitespace();
      if (eof()) fail("unterminated array");
      char c = advance();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      char c = advance();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape sequence");
      char e = advance();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape sequence");
      }
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("unterminated \\u escape");
      char c = advance();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code += static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code += static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (eof() || peek() != '\\') fail("unpaired surrogate");
      advance();
      if (eof() || peek() != 'u') fail("unpaired surrogate");
      advance();
      unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unexpected low surrogate");
    }
    append_utf8(out, code);
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Value parse_number() {
    std::size_t start = pos_;
    bool is_double = false;
    if (peek() == '-') advance();
    if (eof()) fail("invalid number");
    if (peek() == '0') {
      advance();
    } else if (peek() >= '1' && peek() <= '9') {
      while (!eof() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) advance();
    } else {
      fail("invalid number");
    }
    if (!eof() && peek() == '.') {
      is_double = true;
      advance();
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        fail("expected digits after decimal point");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) advance();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      is_double = true;
      advance();
      if (!eof() && (peek() == '+' || peek() == '-')) advance();
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        fail("expected digits in exponent");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) advance();
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (!is_double) {
      std::int64_t i = 0;
      auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc() && ptr == token.data() + token.size()) return Value(i);
      // Falls through on overflow: represent as double.
    }
    double d = 0;
    auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc() || ptr != token.data() + token.size()) fail("invalid number");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", static_cast<unsigned char>(c));
          out += buf.data();
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; null is the conventional lossy fallback.
    out += "null";
    return;
  }
  std::array<char, 32> buf{};
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
  if (ec != std::errc()) {
    out += "0";
    return;
  }
  std::string_view token(buf.data(), static_cast<std::size_t>(ptr - buf.data()));
  out += token;
  // Keep a trailing ".0" so the value re-parses as a double, not an integer.
  if (token.find('.') == std::string_view::npos && token.find('e') == std::string_view::npos &&
      token.find('E') == std::string_view::npos) {
    out += ".0";
  }
}

void serialize_impl(const Value& v, std::string& out, int indent, int depth) {
  auto newline_and_pad = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.type()) {
    case Type::Null: out += "null"; break;
    case Type::Boolean: out += v.as_bool() ? "true" : "false"; break;
    case Type::Integer: out += std::to_string(v.as_int()); break;
    case Type::Double: append_double(out, v.as_double()); break;
    case Type::String: append_escaped(out, v.as_string()); break;
    case Type::Array: {
      const Array& arr = v.as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_and_pad(depth + 1);
        serialize_impl(arr[i], out, indent, depth + 1);
      }
      newline_and_pad(depth);
      out.push_back(']');
      break;
    }
    case Type::Object: {
      const Object& obj = v.as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [k, val] : obj) {
        if (!first) out.push_back(',');
        first = false;
        newline_and_pad(depth + 1);
        append_escaped(out, k);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        serialize_impl(val, out, indent, depth + 1);
      }
      newline_and_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string serialize(const Value& v) {
  std::string out;
  serialize_impl(v, out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string serialize_pretty(const Value& v) {
  std::string out;
  serialize_impl(v, out, /*indent=*/2, /*depth=*/0);
  return out;
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

struct Schema::Node {
  // Empty means any type is accepted.
  std::vector<Type> types;
  bool integer_only = false;  // distinguishes "integer" from "number"

  std::optional<double> minimum;
  std::optional<double> maximum;
  std::optional<double> exclusive_minimum;
  std::optional<double> exclusive_maximum;

  std::optional<std::size_t> min_length;  // strings
  std::optional<std::size_t> max_length;

  std::optional<std::size_t> min_items;  // arrays
  std::optional<std::size_t> max_items;
  std::shared_ptr<const Node> items;

  std::vector<std::pair<std::string, std::shared_ptr<const Node>>> properties;
  std::vector<std::string> required;
  bool additional_properties = true;

  std::vector<Value> enum_values;
};

namespace {

Type schema_type_from_name(const std::string& name, bool& integer_only) {
  if (name == "null") return Type::Null;
  if (name == "boolean") return Type::Boolean;
  if (name == "integer") {
    integer_only = true;
    return Type::Integer;
  }
  if (name == "number") return Type::Double;
  if (name == "string") return Type::String;
  if (name == "array") return Type::Array;
  if (name == "object") return Type::Object;
  throw std::runtime_error("json::Schema: unknown type name '" + name + "'");
}

std::shared_ptr<const Schema::Node> build_node(const Value& def);

void apply_type_field(Schema::Node& node, const Value& type_field) {
  auto add_one = [&](const Value& v) {
    bool integer_only = false;
    Type t = schema_type_from_name(v.as_string(), integer_only);
    node.types.push_back(t);
    if (integer_only) node.integer_only = true;
  };
  if (type_field.is_array()) {
    for (const Value& v : type_field.as_array()) add_one(v);
  } else {
    add_one(type_field);
  }
}

std::shared_ptr<const Schema::Node> build_node(const Value& def) {
  if (!def.is_object()) throw std::runtime_error("json::Schema: schema node must be an object");
  auto node = std::make_shared<Schema::Node>();
  const Object& obj = def.as_object();

  if (const Value* t = obj.find("type")) apply_type_field(*node, *t);
  if (const Value* v = obj.find("minimum")) node->minimum = v->as_double();
  if (const Value* v = obj.find("maximum")) node->maximum = v->as_double();
  if (const Value* v = obj.find("exclusiveMinimum")) node->exclusive_minimum = v->as_double();
  if (const Value* v = obj.find("exclusiveMaximum")) node->exclusive_maximum = v->as_double();
  if (const Value* v = obj.find("minLength")) {
    node->min_length = static_cast<std::size_t>(v->as_int());
  }
  if (const Value* v = obj.find("maxLength")) {
    node->max_length = static_cast<std::size_t>(v->as_int());
  }
  if (const Value* v = obj.find("minItems")) {
    node->min_items = static_cast<std::size_t>(v->as_int());
  }
  if (const Value* v = obj.find("maxItems")) {
    node->max_items = static_cast<std::size_t>(v->as_int());
  }
  if (const Value* v = obj.find("items")) node->items = build_node(*v);
  if (const Value* v = obj.find("properties")) {
    for (const auto& [key, sub] : v->as_object()) {
      node->properties.emplace_back(key, build_node(sub));
    }
  }
  if (const Value* v = obj.find("required")) {
    for (const Value& r : v->as_array()) node->required.push_back(r.as_string());
  }
  if (const Value* v = obj.find("additionalProperties")) {
    node->additional_properties = v->as_bool();
  }
  if (const Value* v = obj.find("enum")) {
    node->enum_values = v->as_array();
    if (node->enum_values.empty()) {
      throw std::runtime_error("json::Schema: enum must be non-empty");
    }
  }
  return node;
}

bool type_matches(const Schema::Node& node, const Value& v) {
  if (node.types.empty()) return true;
  for (Type t : node.types) {
    switch (t) {
      case Type::Null:
        if (v.is_null()) return true;
        break;
      case Type::Boolean:
        if (v.is_bool()) return true;
        break;
      case Type::Integer:
        if (v.is_int()) return true;
        break;
      case Type::Double:
        // "number" accepts integers too.
        if (v.is_number()) return true;
        break;
      case Type::String:
        if (v.is_string()) return true;
        break;
      case Type::Array:
        if (v.is_array()) return true;
        break;
      case Type::Object:
        if (v.is_object()) return true;
        break;
    }
  }
  return false;
}

std::string type_list_string(const Schema::Node& node) {
  std::string out;
  for (std::size_t i = 0; i < node.types.size(); ++i) {
    if (i > 0) out += " or ";
    Type t = node.types[i];
    out += (t == Type::Integer && node.integer_only) ? "integer"
           : (t == Type::Double)                     ? "number"
                                                     : std::string(to_string(t));
  }
  return out;
}

void validate_node(const Schema::Node& node, const Value& v, const std::string& path,
                   std::vector<SchemaIssue>& issues) {
  if (!type_matches(node, v)) {
    issues.push_back({path, "expected " + type_list_string(node) + ", got " +
                                std::string(to_string(v.type()))});
    return;  // further constraints are type-specific; stop here
  }

  if (!node.enum_values.empty()) {
    bool found = std::any_of(node.enum_values.begin(), node.enum_values.end(),
                             [&](const Value& e) { return e == v; });
    if (!found) issues.push_back({path, "value not in enumeration"});
  }

  if (v.is_number()) {
    double d = v.as_double();
    if (node.minimum && d < *node.minimum) {
      issues.push_back({path, "value " + std::to_string(d) + " below minimum " +
                                  std::to_string(*node.minimum)});
    }
    if (node.maximum && d > *node.maximum) {
      issues.push_back({path, "value " + std::to_string(d) + " above maximum " +
                                  std::to_string(*node.maximum)});
    }
    if (node.exclusive_minimum && d <= *node.exclusive_minimum) {
      issues.push_back({path, "value " + std::to_string(d) + " not above exclusive minimum " +
                                  std::to_string(*node.exclusive_minimum)});
    }
    if (node.exclusive_maximum && d >= *node.exclusive_maximum) {
      issues.push_back({path, "value " + std::to_string(d) + " not below exclusive maximum " +
                                  std::to_string(*node.exclusive_maximum)});
    }
  }

  if (v.is_string()) {
    std::size_t n = v.as_string().size();
    if (node.min_length && n < *node.min_length) {
      issues.push_back({path, "string shorter than minLength"});
    }
    if (node.max_length && n > *node.max_length) {
      issues.push_back({path, "string longer than maxLength"});
    }
  }

  if (v.is_array()) {
    const Array& arr = v.as_array();
    if (node.min_items && arr.size() < *node.min_items) {
      issues.push_back({path, "array has " + std::to_string(arr.size()) +
                                  " items, fewer than minItems " +
                                  std::to_string(*node.min_items)});
    }
    if (node.max_items && arr.size() > *node.max_items) {
      issues.push_back({path, "array has " + std::to_string(arr.size()) +
                                  " items, more than maxItems " + std::to_string(*node.max_items)});
    }
    if (node.items) {
      for (std::size_t i = 0; i < arr.size(); ++i) {
        validate_node(*node.items, arr[i], path + "/" + std::to_string(i), issues);
      }
    }
  }

  if (v.is_object()) {
    const Object& obj = v.as_object();
    for (const std::string& req : node.required) {
      if (!obj.contains(req)) issues.push_back({path, "missing required property '" + req + "'"});
    }
    for (const auto& [key, sub] : node.properties) {
      if (const Value* child = obj.find(key)) {
        validate_node(*sub, *child, path + "/" + key, issues);
      }
    }
    if (!node.additional_properties) {
      for (const auto& [key, child] : obj) {
        (void)child;
        bool known = std::any_of(node.properties.begin(), node.properties.end(),
                                 [&](const auto& p) { return p.first == key; });
        if (!known) issues.push_back({path, "unexpected property '" + key + "'"});
      }
    }
  }
}

}  // namespace

Schema::Schema(const Value& definition) : root_(build_node(definition)) {}

std::vector<SchemaIssue> Schema::validate(const Value& instance) const {
  std::vector<SchemaIssue> issues;
  validate_node(*root_, instance, "", issues);
  return issues;
}

}  // namespace rabit::json
