// rabit::json — a small, self-contained JSON library.
//
// RABIT's device descriptions, rulebase extensions, and lab configuration are
// all expressed as JSON files edited by lab researchers (paper §II-C). This
// module provides the value model, a strict parser with line/column error
// reporting, serialization, and a schema validator used to catch the
// configuration mistakes observed in the pilot study (§V-A), such as sign
// errors in coordinates and malformed syntax.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace rabit::json {

class Value;

/// Ordered object representation: preserves insertion order so that emitted
/// configuration files diff cleanly against researcher-edited originals.
class Object {
 public:
  using Entry = std::pair<std::string, Value>;

  Object() = default;

  /// Returns the value for `key`, or nullptr if absent.
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] Value* find(std::string_view key);

  /// Returns the value for `key`; inserts a null value if absent.
  Value& operator[](std::string_view key);

  /// Returns the value for `key`; throws std::out_of_range if absent.
  [[nodiscard]] const Value& at(std::string_view key) const;

  [[nodiscard]] bool contains(std::string_view key) const { return find(key) != nullptr; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  void erase(std::string_view key);

  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }
  [[nodiscard]] auto begin() { return entries_.begin(); }
  [[nodiscard]] auto end() { return entries_.end(); }

  friend bool operator==(const Object& a, const Object& b);

 private:
  std::vector<Entry> entries_;
};

using Array = std::vector<Value>;

enum class Type { Null, Boolean, Integer, Double, String, Array, Object };

[[nodiscard]] std::string_view to_string(Type t);

/// A JSON value. Integers and doubles are kept distinct so that device
/// state variables (often exact counters) round-trip without precision loss.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::int64_t i) : data_(i) {}
  Value(std::size_t i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  [[nodiscard]] Type type() const;

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(data_); }

  /// Checked accessors; throw std::runtime_error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;  // accepts both Integer and Double
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object convenience: value for `key`, or nullptr when this is not an
  /// object or the key is absent.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Object convenience with defaults; throw when this is not an object.
  [[nodiscard]] bool get_or(std::string_view key, bool fallback) const;
  [[nodiscard]] std::int64_t get_or(std::string_view key, std::int64_t fallback) const;
  [[nodiscard]] double get_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::string get_or(std::string_view key, const std::string& fallback) const;

  friend bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> data_;
};

/// Thrown on malformed input; carries 1-based line and column.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, int line, int column);
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Parses a complete JSON document. Trailing garbage is an error.
[[nodiscard]] Value parse(std::string_view text);

/// Serializes compactly (no whitespace).
[[nodiscard]] std::string serialize(const Value& v);

/// Serializes with 2-space indentation.
[[nodiscard]] std::string serialize_pretty(const Value& v);

// ---------------------------------------------------------------------------
// Schema validation
//
// A pragmatic subset of JSON Schema, sufficient to express RABIT's device
// configuration contracts: type constraints, required properties, numeric
// ranges (catches the pilot study's sign errors), enumerations, array item
// schemas and length bounds, and closed objects.
// ---------------------------------------------------------------------------

struct SchemaIssue {
  std::string path;     ///< JSON-pointer-like location, e.g. "/devices/0/door"
  std::string message;  ///< human-readable description of the violation
};

class Schema {
 public:
  /// Builds a schema from its JSON description. Throws std::runtime_error on
  /// malformed schema documents.
  explicit Schema(const Value& definition);
  explicit Schema(std::string_view definition_text) : Schema(parse(definition_text)) {}
  explicit Schema(const char* definition_text) : Schema(std::string_view(definition_text)) {}

  /// Returns all violations (empty means valid).
  [[nodiscard]] std::vector<SchemaIssue> validate(const Value& instance) const;

  struct Node;  // implementation detail, public only for the builder

 private:
  std::shared_ptr<const Node> root_;
};

}  // namespace rabit::json
