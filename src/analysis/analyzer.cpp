// The abstract interpreter: a path-set walk over the script AST.
//
// Each path carries a concrete StateTracker (the same symbolic device-state
// model the runtime supervisor advances) plus an abstract variable
// environment. Branches whose condition is statically undecidable fork the
// path set; loops unroll while their condition stays decidable and speculate
// a bounded number of iterations otherwise. Every device command whose
// arguments resolve to constants is checked against the full runtime
// rulebase via check_preconditions, then applied through the tracker's
// postconditions — so the static analysis and the runtime middleware can
// never disagree about what a rule means.
#include <algorithm>
#include <functional>
#include <optional>
#include <set>
#include <tuple>

#include "analysis/analysis.hpp"
#include "core/rules.hpp"
#include "core/tracker.hpp"
#include "script/parser.hpp"
#include "sim/world.hpp"

namespace rabit::analysis {

namespace {

using core::DeviceMeta;
using core::EngineConfig;
using core::SiteMeta;
using core::StateTracker;
using dev::Command;

const SiteMeta* receptacle_site_of(const EngineConfig& config, std::string_view device) {
  for (const SiteMeta& s : config.sites) {
    if (s.receptacle_device == device) return &s;
  }
  return nullptr;
}

/// The configured deck envelope: the union of everything the researcher
/// described as occupying space. A motion target far outside it is almost
/// certainly a typo'd coordinate (the silently-skipped waypoint of §IV
/// footnote 2 sat at z = 2.0, a metre above the enclosure).
std::optional<geom::Aabb> workspace_envelope(const EngineConfig& config) {
  std::optional<geom::Aabb> env;
  auto extend = [&env](const geom::Aabb& box) {
    env = env ? env->united(box) : box;
  };
  for (const sim::NamedBox& b : config.static_obstacles) extend(b.box);
  for (const DeviceMeta& d : config.devices) {
    if (d.box) extend(*d.box);
    if (d.sleep_box) extend(*d.sleep_box);
    if (d.sensor_zone) extend(*d.sensor_zone);
  }
  for (const SiteMeta& s : config.sites) extend(geom::Aabb(s.lab_position, s.lab_position));
  return env;
}

using EmitFn = std::function<void(Severity, const std::string&, const std::string&)>;

/// Analyzer-only checks (A1..A4): hazards the runtime rulebase deliberately
/// or provably cannot flag, but that a pre-flight pass can warn about.
void extra_command_checks(const EngineConfig& config, const StateTracker& tracker,
                          const Command& cmd, const AnalyzeOptions& opts, const EmitFn& emit) {
  const DeviceMeta* meta = config.find_device(cmd.device);
  if (meta == nullptr) return;  // unknown device is check_preconditions' G3
  std::string_view action = meta->canonical_action(cmd.action);

  // A1 — dry run: the dosing device runs with no container believed inside.
  // Table III has no rule against it (exactly why the paper's Bug C evades
  // runtime detection), but statically it is almost always a missing pickup.
  if (meta->category == dev::DeviceCategory::DosingSystem && action == "run_action") {
    const SiteMeta* site = receptacle_site_of(config, meta->id);
    if (site != nullptr && tracker.site_occupant(site->name).empty()) {
      emit(Severity::Warning, "A1",
           meta->id + " runs with no container believed inside (dry run — was a pickup "
                      "omitted?)");
    }
  }

  if (!meta->is_arm) return;

  // A2 — gripper closing on air / picking from an empty slot: the gripper
  // has no pressure sensor, so the runtime can never notice; statically the
  // tracked occupancy says whether there is anything to grab.
  if (action == "close_gripper" && tracker.arm_holding(meta->id).empty()) {
    geom::Vec3 tip = tracker.arm_position_lab(meta->id);
    const SiteMeta* site = config.site_near(tip);
    if (site == nullptr) {
      emit(Severity::Warning, "A2",
           meta->id + " closes its gripper away from any known site (grabs air)");
    } else if (tracker.site_occupant(site->name).empty()) {
      emit(Severity::Warning, "A2", meta->id + " closes its gripper at '" + site->name +
                                        "', which is believed empty");
    }
  }
  if (action == "pick_object") {
    const json::Value* site_arg = cmd.args.find("site");
    if (site_arg != nullptr && site_arg->is_string()) {
      const SiteMeta* site = config.find_site(site_arg->as_string());
      if (site != nullptr && tracker.site_occupant(site->name).empty()) {
        emit(Severity::Warning, "A2", meta->id + " picks at '" + site->name +
                                          "', which is believed empty");
      }
    }
  }

  if (!core::is_motion_command(cmd)) return;
  auto motion = core::analyze_motion(config, tracker, cmd);
  if (!motion) return;

  // A3 — near-miss of a parked arm: §IV category 2 found ~3 cm of frame-
  // unification error between the two arms' coordinate systems, so a target
  // that skims a parked cuboid is unsafe even though no rule forbids it.
  sim::WorldModel world = core::assemble_rule_world(config, tracker, meta->id);
  for (const sim::NamedBox& box : world.boxes) {
    if (box.kind != sim::ObstacleKind::ParkedArm) continue;
    if (std::find(motion->ignores.begin(), motion->ignores.end(), box.name) !=
        motion->ignores.end()) {
      continue;
    }
    double d = box.box.distance_to(motion->target_lab);
    if (d > 0.0 && d < opts.parked_arm_margin) {
      emit(Severity::Warning, "A3",
           meta->id + " target passes within " + std::to_string(d * 100.0).substr(0, 4) +
               " cm of parked arm '" + box.name +
               "' — inside the frame-calibration margin");
    }
  }

  // A4 — target outside the configured workspace: unreachable coordinates
  // are silently skipped by some controllers (footnote 2), after which the
  // shortcut path sweeps through whatever stood between the neighbours.
  if (auto envelope = workspace_envelope(config)) {
    if (!envelope->inflated(opts.workspace_margin).contains(motion->target_lab)) {
      emit(Severity::Warning, "A4",
           meta->id + " target lies outside the configured workspace — an unreachable "
                      "point may be silently skipped and the shortcut path is unchecked");
    }
  }
}

// ---------------------------------------------------------------------------
// The path-set interpreter
// ---------------------------------------------------------------------------

using script::Block;
using script::CallArg;
using script::Expr;
using script::Stmt;

struct Path {
  StateTracker tracker;
  std::map<std::string, AbstractValue> globals;
  /// Function-call frames (innermost last). Mirrors the runtime interpreter:
  /// a function body sees its own frame plus the globals, never the caller's
  /// locals.
  std::vector<std::map<std::string, AbstractValue>> frames;
  /// True once this path has crossed a statically undecidable branch: rule
  /// hits downstream are "may happen on this path", not certainties.
  bool speculative = false;
  bool returned = false;
  AbstractValue return_value;

  explicit Path(const EngineConfig* config) : tracker(config) {}
};

struct FunctionDef {
  std::vector<std::string> params;
  std::shared_ptr<Block> body;
};

class Analyzer {
 public:
  Analyzer(const EngineConfig& config, const AnalyzeOptions& opts)
      : config_(config), opts_(opts) {}

  void seed_global(const std::string& name, json::Value value) {
    seeds_[name] = std::move(value);
  }

  AnalysisReport run(const script::Program& program) {
    Path initial(&config_);
    initial.tracker.initialize({});  // the configured initial symbolic state
    for (const auto& [name, value] : seeds_) {
      initial.globals[name] = AbstractValue::make_const(value);
    }
    std::vector<Path> paths;
    paths.push_back(std::move(initial));
    exec_block(program.statements, std::move(paths));
    return std::move(report_);
  }

 private:
  // -- diagnostics ---------------------------------------------------------

  void emit(Severity severity, const std::string& rule, std::string message, int line,
            bool speculative) {
    if (speculative && severity == Severity::Error) {
      severity = Severity::Warning;
      message += " (may happen on this path)";
    }
    if (!seen_.insert(std::make_tuple(rule, line, message)).second) return;
    if (report_.diagnostics.size() >= static_cast<std::size_t>(opts_.max_diagnostics)) {
      report_.truncated = true;
      return;
    }
    report_.diagnostics.push_back(Diagnostic{severity, rule, std::move(message), line});
  }

  void note_budget(const std::string& what, int line) {
    report_.truncated = true;
    emit(Severity::Info, "A8", "analysis budget reached (" + what + "); later findings may "
                               "be incomplete", line, false);
  }

  // -- command handling ----------------------------------------------------

  void check_and_apply(Path& p, const Command& cmd, int line) {
    if (opts_.observe_command) {
      CommandObservation obs;
      obs.cmd = &cmd;
      obs.tracker = &p.tracker;
      obs.line = line;
      obs.speculative = p.speculative;
      opts_.observe_command(obs);
    }
    if (auto hit = core::check_preconditions(config_, p.tracker, cmd)) {
      emit(Severity::Error, hit->rule, hit->message, line, p.speculative);
    }
    extra_command_checks(config_, p.tracker, cmd, opts_,
                         [&](Severity s, const std::string& rule, const std::string& msg) {
                           emit(s, rule, msg, line, p.speculative);
                         });
    // Apply postconditions even after a hit so one mistake does not cascade
    // into a page of follow-on diagnostics.
    try {
      p.tracker.apply_postconditions(cmd);
    } catch (const std::exception&) {
      // Malformed arguments (e.g. move_to without a position) were already
      // reported as an unresolvable motion target.
    }
  }

  // -- variable environment ------------------------------------------------

  AbstractValue* lookup(Path& p, const std::string& name) {
    if (!p.frames.empty()) {
      auto it = p.frames.back().find(name);
      if (it != p.frames.back().end()) return &it->second;
    }
    auto it = p.globals.find(name);
    return it == p.globals.end() ? nullptr : &it->second;
  }

  void define(Path& p, const std::string& name, AbstractValue value) {
    (p.frames.empty() ? p.globals : p.frames.back())[name] = std::move(value);
  }

  void assign(Path& p, const std::string& name, AbstractValue value, int line) {
    if (!p.frames.empty()) {
      auto it = p.frames.back().find(name);
      if (it != p.frames.back().end()) {
        it->second = std::move(value);
        return;
      }
    }
    auto it = p.globals.find(name);
    if (it != p.globals.end()) {
      it->second = std::move(value);
      return;
    }
    emit(Severity::Error, "A6", "assignment to undefined variable '" + name + "'", line,
         p.speculative);
    define(p, name, std::move(value));
  }

  // -- expression evaluation (single path, no forking) ---------------------

  AbstractValue eval(const Expr& expr, Path& p) {
    return std::visit([&](const auto& node) { return eval_node(node, expr.line, p); },
                      expr.node);
  }

  AbstractValue eval_node(const script::NumberLit& n, int, Path&) {
    return AbstractValue::make_const(json::Value(n.value));
  }
  AbstractValue eval_node(const script::StringLit& n, int, Path&) {
    return AbstractValue::make_const(json::Value(n.value));
  }
  AbstractValue eval_node(const script::BoolLit& n, int, Path&) {
    return AbstractValue::make_const(json::Value(n.value));
  }
  AbstractValue eval_node(const script::NullLit&, int, Path&) {
    return AbstractValue::make_const(json::Value());
  }

  AbstractValue eval_node(const script::Ident& n, int line, Path& p) {
    if (AbstractValue* v = lookup(p, n.name)) return *v;
    if (config_.find_device(n.name) != nullptr) return AbstractValue::device_ref(n.name);
    emit(Severity::Error, "A6",
         "unknown identifier '" + n.name + "' (neither a variable nor a configured device)",
         line, p.speculative);
    return AbstractValue::top();
  }

  AbstractValue eval_node(const script::ListLit& n, int, Path& p) {
    json::Array items;
    bool all_const = true;
    for (const script::ExprPtr& item : n.items) {
      AbstractValue v = eval(*item, p);
      if (v.is_const() && v.device.empty()) {
        items.push_back(v.constant);
      } else {
        all_const = false;
      }
    }
    if (!all_const) return AbstractValue::top();
    return AbstractValue::make_const(json::Value(std::move(items)));
  }

  AbstractValue eval_node(const script::Unary& n, int line, Path& p) {
    AbstractValue v = eval(*n.operand, p);
    if (n.op == "-") {
      double lo = 0.0, hi = 0.0;
      if (v.numeric_bounds(lo, hi)) {
        return lo == hi ? AbstractValue::make_const(json::Value(-lo))
                        : AbstractValue::make_range(-hi, -lo);
      }
      return AbstractValue::top();
    }
    if (n.op == "not") {
      if (auto t = v.truth()) return AbstractValue::make_const(json::Value(!*t));
      return AbstractValue::top();
    }
    (void)line;
    return AbstractValue::top();
  }

  AbstractValue eval_node(const script::Binary& n, int, Path& p) {
    AbstractValue lhs = eval(*n.lhs, p);
    AbstractValue rhs = eval(*n.rhs, p);
    return abstract_binary(n.op, lhs, rhs);
  }

  AbstractValue eval_node(const script::Index& n, int line, Path& p) {
    AbstractValue base = eval(*n.base, p);
    AbstractValue index = eval(*n.index, p);
    if (base.is_top()) return AbstractValue::top();
    if (!index.is_const()) {
      // A dynamic index defeats constant propagation — a documented
      // soundness limit (DESIGN.md).
      emit(Severity::Info, "A7", "index is not statically resolvable", line, p.speculative);
      return AbstractValue::top();
    }
    if (base.constant.is_object() && index.constant.is_string()) {
      if (const json::Value* v = base.constant.find(index.constant.as_string())) {
        return AbstractValue::make_const(*v);
      }
      emit(Severity::Error, "A6", "key '" + index.constant.as_string() + "' not found",
           line, p.speculative);
      return AbstractValue::top();
    }
    if (base.constant.is_array() && index.constant.is_number()) {
      const json::Array& items = base.constant.as_array();
      auto i = static_cast<std::size_t>(index.constant.as_double());
      if (i < items.size()) return AbstractValue::make_const(items[i]);
      emit(Severity::Error, "A6", "list index out of range", line, p.speculative);
      return AbstractValue::top();
    }
    return AbstractValue::top();
  }

  AbstractValue eval_node(const script::Call& n, int line, Path& p) {
    std::vector<AbstractValue> args;
    args.reserve(n.args.size());
    for (const CallArg& a : n.args) args.push_back(eval(*a.value, p));

    if (auto builtin = eval_builtin(n.callee, args)) return *builtin;

    auto fn = functions_.find(n.callee);
    if (fn == functions_.end()) {
      emit(Severity::Error, "A6", "call to undefined function '" + n.callee + "'", line,
           p.speculative);
      return AbstractValue::top();
    }
    return call_function_inline(fn->second, std::move(args), p, line);
  }

  AbstractValue eval_node(const script::MethodCall& n, int line, Path& p) {
    AbstractValue base = eval(*n.base, p);
    if (base.device.empty()) {
      if (!base.is_top()) {
        emit(Severity::Error, "A6", "method call on a value that is not a device", line,
             p.speculative);
      }
      return AbstractValue::top();
    }

    Command cmd;
    cmd.device = base.device;
    cmd.action = n.method;
    cmd.source_line = line;
    json::Object args;
    std::vector<std::pair<std::string, AbstractValue>> unresolved;
    for (const CallArg& a : n.args) {
      AbstractValue v = eval(*a.value, p);
      if (a.name.empty()) {
        emit(Severity::Error, "A6", "device commands take named arguments", line,
             p.speculative);
        return AbstractValue::top();
      }
      if (!v.device.empty()) {
        args[a.name] = json::Value(v.device);  // device refs pass as id strings
      } else if (v.is_const()) {
        args[a.name] = v.constant;
      } else {
        unresolved.emplace_back(a.name, v);
      }
    }
    cmd.args = json::Value(std::move(args));

    if (unresolved.empty()) {
      check_and_apply(p, cmd, line);
    } else {
      check_unresolved(p, cmd, unresolved, line);
    }
    // A command's script-visible result (e.g. a solubility measurement) is
    // environment input: never statically known.
    return AbstractValue::top();
  }

  /// G11 is still decidable for a non-constant argument when its *interval*
  /// clears or crosses the threshold (A5).
  void check_unresolved(Path& p, const Command& cmd,
                        const std::vector<std::pair<std::string, AbstractValue>>& unresolved,
                        int line) {
    if (opts_.observe_command) {
      CommandObservation obs;
      obs.cmd = &cmd;
      obs.tracker = &p.tracker;
      obs.line = line;
      obs.speculative = p.speculative;
      obs.unresolved = &unresolved;
      opts_.observe_command(obs);
    }
    const DeviceMeta* meta = config_.find_device(cmd.device);
    if (meta == nullptr) {
      emit(Severity::Error, "G3", "command addresses unknown device '" + cmd.device + "'",
           line, p.speculative);
      return;
    }
    const core::ThresholdSpec* threshold = meta->threshold_for(cmd.action);
    for (const auto& [name, value] : unresolved) {
      if (threshold != nullptr && threshold->argument == name) {
        double lo = 0.0, hi = 0.0;
        if (value.numeric_bounds(lo, hi)) {
          if (lo > threshold->max) {
            emit(Severity::Error, "G11",
                 meta->id + "." + cmd.action + ": " + name + " ∈ [" + std::to_string(lo) +
                     ", " + std::to_string(hi) + "] always exceeds the threshold " +
                     std::to_string(threshold->max),
                 line, p.speculative);
          } else if (hi > threshold->max) {
            emit(Severity::Warning, "G11",
                 meta->id + "." + cmd.action + ": " + name + " may reach " +
                     std::to_string(hi) + ", above the threshold " +
                     std::to_string(threshold->max) + " on some path",
                 line, p.speculative);
          }
        } else {
          emit(Severity::Warning, "A5",
               meta->id + "." + cmd.action + ": thresholded argument '" + name +
                   "' is not statically resolvable",
               line, p.speculative);
        }
      } else {
        emit(Severity::Info, "A7",
             meta->id + "." + cmd.action + ": argument '" + name +
                 "' is not statically resolvable; command not checked",
             line, p.speculative);
      }
    }
  }

  std::optional<AbstractValue> eval_builtin(const std::string& name,
                                            const std::vector<AbstractValue>& args) {
    if (name == "len" && args.size() == 1) {
      const AbstractValue& v = args[0];
      if (v.is_const() && v.constant.is_array()) {
        return AbstractValue::make_const(json::Value(v.constant.as_array().size()));
      }
      return AbstractValue::top();
    }
    if (name == "abs" && args.size() == 1) {
      double lo = 0.0, hi = 0.0;
      if (args[0].numeric_bounds(lo, hi)) {
        if (lo >= 0) return AbstractValue::make_range(lo, hi);
        if (hi <= 0) return AbstractValue::make_range(-hi, -lo);
        return AbstractValue::make_range(0.0, std::max(-lo, hi));
      }
      return AbstractValue::top();
    }
    if ((name == "min" || name == "max") && args.size() == 2) {
      double alo = 0.0, ahi = 0.0, blo = 0.0, bhi = 0.0;
      if (args[0].numeric_bounds(alo, ahi) && args[1].numeric_bounds(blo, bhi)) {
        if (name == "min") return AbstractValue::make_range(std::min(alo, blo), std::min(ahi, bhi));
        return AbstractValue::make_range(std::max(alo, blo), std::max(ahi, bhi));
      }
      return AbstractValue::top();
    }
    return std::nullopt;
  }

  /// Expression-position function call: runs the body on this single path.
  /// Statement-position calls (the common case) go through exec_stmt and
  /// fork freely; here an undecidable branch inside the callee is skipped
  /// with an A7 note — a documented soundness limit.
  AbstractValue call_function_inline(const FunctionDef& fn, std::vector<AbstractValue> args,
                                     Path& p, int line) {
    if (call_depth_ >= 16) {
      note_budget("recursion depth", line);
      return AbstractValue::top();
    }
    std::map<std::string, AbstractValue> frame;
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      frame[fn.params[i]] =
          i < args.size() ? std::move(args[i]) : AbstractValue::make_const(json::Value());
    }
    p.frames.push_back(std::move(frame));
    ++call_depth_;
    std::vector<Path> result = exec_block(*fn.body, make_single(std::move(p)));
    --call_depth_;
    // Non-forking context: keep the first resulting path, note if forks were
    // collapsed.
    if (result.size() > 1) {
      emit(Severity::Info, "A7",
           "branches inside this call could not all be followed in expression position",
           line, true);
      report_.truncated = true;
    }
    p = std::move(result.front());
    p.frames.pop_back();
    AbstractValue ret = p.returned ? p.return_value : AbstractValue::make_const(json::Value());
    p.returned = false;
    return ret;
  }

  static std::vector<Path> make_single(Path p) {
    std::vector<Path> v;
    v.push_back(std::move(p));
    return v;
  }

  // -- statement execution (path-set) --------------------------------------

  std::vector<Path> exec_block(const Block& block, std::vector<Path> paths) {
    for (const script::StmtPtr& stmt : block) {
      std::vector<Path> next;
      for (Path& p : paths) {
        if (p.returned) {
          next.push_back(std::move(p));
          continue;
        }
        std::vector<Path> out = exec_stmt(*stmt, std::move(p));
        for (Path& q : out) next.push_back(std::move(q));
      }
      paths = std::move(next);
      if (paths.empty()) break;
    }
    return paths;
  }

  std::vector<Path> exec_stmt(const Stmt& stmt, Path p) {
    return std::visit(
        [&](const auto& node) { return exec_node(node, stmt.line, std::move(p)); }, stmt.node);
  }

  std::vector<Path> exec_node(const script::LetStmt& n, int, Path p) {
    AbstractValue v = eval(*n.value, p);
    define(p, n.name, std::move(v));
    return make_single(std::move(p));
  }

  std::vector<Path> exec_node(const script::AssignStmt& n, int line, Path p) {
    AbstractValue v = eval(*n.value, p);
    assign(p, n.name, std::move(v), line);
    return make_single(std::move(p));
  }

  std::vector<Path> exec_node(const script::DefStmt& n, int, Path p) {
    functions_[n.name] = FunctionDef{n.params, n.body};
    return make_single(std::move(p));
  }

  std::vector<Path> exec_node(const script::ReturnStmt& n, int, Path p) {
    p.return_value =
        n.value != nullptr ? eval(*n.value, p) : AbstractValue::make_const(json::Value());
    p.returned = true;
    return make_single(std::move(p));
  }

  std::vector<Path> exec_node(const script::ExprStmt& n, int line, Path p) {
    // A statement-position user-function call forks freely through the body.
    if (const auto* call = std::get_if<script::Call>(&n.expr->node)) {
      auto fn = functions_.find(call->callee);
      if (fn != functions_.end()) {
        std::vector<AbstractValue> args;
        args.reserve(call->args.size());
        for (const CallArg& a : call->args) args.push_back(eval(*a.value, p));
        std::map<std::string, AbstractValue> frame;
        for (std::size_t i = 0; i < fn->second.params.size(); ++i) {
          frame[fn->second.params[i]] =
              i < args.size() ? std::move(args[i]) : AbstractValue::make_const(json::Value());
        }
        p.frames.push_back(std::move(frame));
        std::vector<Path> out = exec_block(*fn->second.body, make_single(std::move(p)));
        for (Path& q : out) {
          q.frames.pop_back();
          q.returned = false;
        }
        return out;
      }
    }
    eval(*n.expr, p);
    (void)line;
    return make_single(std::move(p));
  }

  std::vector<Path> exec_node(const script::IfStmt& n, int line, Path p) {
    AbstractValue cond = eval(*n.condition, p);
    std::optional<bool> t = cond.truth();
    if (t.has_value()) {
      return exec_block(*t ? n.then_branch : n.else_branch, make_single(std::move(p)));
    }
    // Undecidable: fork (both sides are speculative).
    p.speculative = true;
    std::vector<Path> out;
    if (live_paths_ + 1 <= opts_.max_paths) {
      ++live_paths_;
      Path other = p;
      std::vector<Path> else_out = exec_block(n.else_branch, make_single(std::move(other)));
      for (Path& q : else_out) out.push_back(std::move(q));
      --live_paths_;
    } else {
      note_budget("path fork limit", line);
    }
    std::vector<Path> then_out = exec_block(n.then_branch, make_single(std::move(p)));
    for (Path& q : then_out) out.push_back(std::move(q));
    return out;
  }

  std::vector<Path> exec_node(const script::WhileStmt& n, int line, Path p) {
    struct LoopPath {
      Path path;
      int speculative_iters = 0;
    };
    std::vector<Path> done;
    std::vector<LoopPath> active;
    active.push_back(LoopPath{std::move(p), 0});

    for (int iter = 0; !active.empty(); ++iter) {
      if (iter >= opts_.loop_unroll_budget) {
        // Forced exit: beyond the unrolling budget everything downstream is
        // speculative (a soundness limit for unbounded loops).
        note_budget("loop unrolling", line);
        for (LoopPath& lp : active) {
          lp.path.speculative = true;
          done.push_back(std::move(lp.path));
        }
        break;
      }
      std::vector<LoopPath> next;
      for (LoopPath& lp : active) {
        AbstractValue cond = eval(*n.condition, lp.path);
        std::optional<bool> t = cond.truth();
        if (t.has_value() && !*t) {
          done.push_back(std::move(lp.path));
          continue;
        }
        if (!t.has_value()) {
          // Unknown condition: keep the exit path, speculate a bounded
          // number of further iterations.
          if (lp.speculative_iters >= opts_.unknown_loop_unroll ||
              done.size() + active.size() >= static_cast<std::size_t>(opts_.max_paths)) {
            lp.path.speculative = true;
            done.push_back(std::move(lp.path));
            continue;
          }
          Path exit_path = lp.path;
          exit_path.speculative = true;
          done.push_back(std::move(exit_path));
          lp.path.speculative = true;
          ++lp.speculative_iters;
        }
        int spec = lp.speculative_iters;
        std::vector<Path> body_out = exec_block(n.body, make_single(std::move(lp.path)));
        for (Path& q : body_out) {
          if (q.returned) {
            done.push_back(std::move(q));
          } else {
            next.push_back(LoopPath{std::move(q), spec});
          }
        }
      }
      active = std::move(next);
    }
    return done;
  }

  const EngineConfig& config_;
  AnalyzeOptions opts_;
  AnalysisReport report_;
  std::map<std::string, json::Value> seeds_;
  std::map<std::string, FunctionDef> functions_;
  std::set<std::tuple<std::string, int, std::string>> seen_;
  int live_paths_ = 1;
  int call_depth_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

json::Value seed_locations(const core::EngineConfig& config, double safe_lift) {
  json::Object table;
  for (const SiteMeta& site : config.sites) {
    json::Object per_arm;
    for (const DeviceMeta& d : config.devices) {
      if (!d.is_arm) continue;
      geom::Vec3 pickup = d.base.inverse().apply(site.lab_position);
      geom::Vec3 safe = pickup + geom::Vec3(0, 0, safe_lift);
      json::Object coords;
      coords["pickup"] = json::Array{pickup.x, pickup.y, pickup.z};
      coords["safe"] = json::Array{safe.x, safe.y, safe.z};
      per_arm[d.id] = std::move(coords);
    }
    table[site.name] = std::move(per_arm);
  }
  return json::Value(std::move(table));
}

AnalysisReport analyze_script(const core::EngineConfig& config, const script::Program& program,
                              const AnalyzeOptions& options) {
  Analyzer analyzer(config, options);
  analyzer.seed_global("locations", seed_locations(config));
  return analyzer.run(program);
}

AnalysisReport analyze_script(const core::EngineConfig& config, std::string_view source,
                              const AnalyzeOptions& options) {
  return analyze_script(config, source, {}, options);
}

AnalysisReport analyze_script(const core::EngineConfig& config, std::string_view source,
                              const std::map<std::string, json::Value>& globals,
                              const AnalyzeOptions& options) {
  script::Program program;
  try {
    program = script::parse(source);
  } catch (const script::ScriptError& e) {
    AnalysisReport report;
    report.diagnostics.push_back(
        Diagnostic{Severity::Error, "SYNTAX", e.what(), e.line()});
    return report;
  }
  Analyzer analyzer(config, options);
  analyzer.seed_global("locations", seed_locations(config));
  for (const auto& [name, value] : globals) analyzer.seed_global(name, value);
  return analyzer.run(program);
}

AnalysisReport analyze_stream(const core::EngineConfig& config,
                              const std::vector<dev::Command>& commands,
                              const AnalyzeOptions& options) {
  AnalysisReport report;
  std::set<std::tuple<std::string, int, std::string>> seen;
  StateTracker tracker(&config);
  tracker.initialize({});

  auto emit = [&](Severity severity, const std::string& rule, const std::string& message,
                  int line) {
    if (!seen.insert(std::make_tuple(rule, line, message)).second) return;
    if (report.diagnostics.size() >= static_cast<std::size_t>(options.max_diagnostics)) {
      report.truncated = true;
      return;
    }
    report.diagnostics.push_back(Diagnostic{severity, rule, message, line});
  };

  for (std::size_t i = 0; i < commands.size(); ++i) {
    const Command& cmd = commands[i];
    int line = cmd.source_line > 0 ? cmd.source_line : static_cast<int>(i + 1);
    if (options.observe_command) {
      CommandObservation obs;
      obs.cmd = &cmd;
      obs.tracker = &tracker;
      obs.line = line;
      options.observe_command(obs);
    }
    if (auto hit = core::check_preconditions(config, tracker, cmd)) {
      emit(Severity::Error, hit->rule, hit->message, line);
    }
    extra_command_checks(config, tracker, cmd, options,
                         [&](Severity s, const std::string& rule, const std::string& msg) {
                           emit(s, rule, msg, line);
                         });
    try {
      tracker.apply_postconditions(cmd);
    } catch (const std::exception&) {
      // Malformed command arguments were reported by the precondition check.
    }
  }
  return report;
}

}  // namespace rabit::analysis
