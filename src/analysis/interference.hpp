// rabit::analysis interference — whole-campaign static race detection.
//
// The runtime checks (and the A1..A8 analyzer) validate one command stream at
// a time, but production campaigns run many scripts concurrently against
// shared arms, decks, and consumables. A campaign whose streams are each
// individually safe can still collide two arms in an overlapping workspace or
// jointly overdraw a shared vial. This module catches those *interaction*
// hazards before dispatch, in two phases:
//
//   Phase 1 — effect summaries. Each stream is walked once by the existing
//   abstract interpreter (via the AnalyzeOptions::observe_command hook) to
//   produce a StreamSummary: devices driven with per-action footprints,
//   workspace occupancy as inflated AABB envelopes over every trajectory
//   segment (A3 frame-calibration margin), signed resource deltas
//   (vial/container mass and volume) as intervals, setpoint writes, and the
//   deliberate-interaction ignore sets each stream declares.
//
//   Phase 2 — pairwise interference checks over the summaries, emitting the
//   I1..I6 diagnostic family:
//     I1  same-device command race: two streams drive one device, race the
//         time-multiplex exclusive-motion token with different arms, or both
//         act on one shared entity (site, vial, receptacle station)
//     I2  overlapping workspace envelopes of two *different* arms
//     I3  shared-consumable budget exceedable by the *sum* of stream deltas,
//         even when each stream alone fits (capacity overflow or overdraw)
//     I4  conflicting setpoint writes (hotplate / thermoshaker target races)
//     I5  a deliberate-interaction ignore set only one stream declares
//     I6  campaign-wide rule-capacity exhaustion: the cumulative total of a
//         G11-thresholded additive argument across streams exceeds the cap
//
// Soundness model: summaries are may-analyses over each stream in isolation
// from the configured initial state. The checks therefore over-approximate
// every interleaving in which each device is driven by the streams that
// command it — the regime fleet::Fleet::run_campaign executes — and the
// differential sweep asserts that every cross-stream runtime precondition
// alert maps to an I-diagnostic whose subjects name the alerting device.
// Limits (Top-valued quantities, unresolvable motion targets, analyzer
// budgets) set StreamSummary::truncated, which propagates to the campaign
// report.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "geometry/geometry.hpp"

namespace rabit::analysis {

// ---------------------------------------------------------------------------
// Stream effect summaries (phase 1)
// ---------------------------------------------------------------------------

/// A closed interval used both as a running *sum* (resource deltas,
/// cumulative dosing totals) and as a *union* (setpoint write ranges).
/// `set` distinguishes "never written" from [0, 0].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool set = false;

  /// Σ: widens the running sum by one more [l, h] contribution.
  void accumulate(double l, double h);
  /// ∪: smallest interval containing this one and [l, h].
  void unite(double l, double h);
  [[nodiscard]] bool same_as(const Interval& o) const;
  [[nodiscard]] std::string format() const;  ///< "[lo, hi]"
};

/// What one stream does to one device it commands.
struct DeviceFootprint {
  std::set<std::string> actions;  ///< canonical action names issued
  std::size_t commands = 0;
  bool speculative = false;  ///< some touch sits past an undecidable branch
};

/// A shared entity (site, vial, receptacle station) a stream acts on without
/// necessarily commanding it, with the devices the touches went through.
struct EntityTouch {
  std::set<std::string> via;  ///< commanding devices behind the touches
};

struct StreamSummary {
  std::string name;
  /// The summary may under-describe the stream (analysis budget, Top-valued
  /// quantity, unresolvable motion target widened to the whole workspace).
  bool truncated = false;

  std::map<std::string, DeviceFootprint> devices;  ///< devices commanded
  std::map<std::string, EntityTouch> entities;     ///< shared entities acted on
  /// Per-arm workspace occupancy: union of per-segment trajectory AABBs,
  /// inflated by the A3 frame-calibration margin. An unresolvable motion
  /// target widens the arm to the whole configured workspace (A4 margin).
  std::map<std::string, geom::Aabb> arm_envelopes;
  /// Per-arm declared deliberate interactions: boxes the stream's motion
  /// analysis excludes from collision checks (grid reached over, open-door
  /// station entered).
  std::map<std::string, std::set<std::string>> ignores;
  /// Signed per-container resource deltas over the whole stream.
  std::map<std::string, Interval> mass_delta_mg;
  std::map<std::string, Interval> volume_delta_ml;
  /// Setpoint writes: device -> variable -> union of written values.
  std::map<std::string, std::map<std::string, Interval>> setpoints;
  /// Cumulative totals of G11-thresholded *additive* arguments:
  /// device -> action -> Σ of the thresholded argument across the stream.
  std::map<std::string, std::map<std::string, Interval>> threshold_totals;
};

/// Summarizes a linear command stream (degenerate abstract interpretation —
/// the fleet campaign case). `per_stream` (optional) receives the stream's
/// own single-stream analysis report.
[[nodiscard]] StreamSummary summarize_stream(const core::EngineConfig& config,
                                             std::string name,
                                             const std::vector<dev::Command>& commands,
                                             const AnalyzeOptions& options = {},
                                             AnalysisReport* per_stream = nullptr);

/// Summarizes a script through the full path-set abstract interpreter.
/// Forked paths contribute their union (a may-summary); loop bodies
/// contribute once per unrolled iteration.
[[nodiscard]] StreamSummary summarize_script(const core::EngineConfig& config,
                                             std::string name, std::string_view source,
                                             const AnalyzeOptions& options = {},
                                             AnalysisReport* per_stream = nullptr);

// ---------------------------------------------------------------------------
// Interference checks (phase 2)
// ---------------------------------------------------------------------------

/// Runs the pairwise I1..I6 checks over the summaries. Diagnostics carry the
/// devices / entities involved in `subjects`. Any truncated summary marks
/// the report truncated (the campaign verdict may be incomplete).
[[nodiscard]] AnalysisReport check_interference(const core::EngineConfig& config,
                                                const std::vector<StreamSummary>& streams,
                                                const AnalyzeOptions& options = {});

/// A named command stream of a campaign (the static-analysis view; the
/// runtime twin is fleet::CampaignStreamSpec).
struct CampaignStream {
  std::string name;
  std::vector<dev::Command> commands;
};

/// One call: summarize every stream, then run the interference checks. The
/// returned report holds only the campaign-level I-diagnostics; per-stream
/// single-stream findings come from analyze_stream / analyze_script.
[[nodiscard]] AnalysisReport analyze_campaign(const core::EngineConfig& config,
                                              const std::vector<CampaignStream>& streams,
                                              const AnalyzeOptions& options = {});

}  // namespace rabit::analysis
