// Shard planning over stream effect summaries. The edge predicate here is a
// deliberate superset of the phase-2 I1..I6 firing conditions (see
// shard_plan.hpp for the soundness argument); the graph work on top is
// ordinary: connected components for the shards, Stoer–Wagner for the S1
// min-cut evidence, Tarjan lowlinks for the S2 articulation streams.
#include "analysis/shard_plan.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "core/rules.hpp"

namespace rabit::analysis {

namespace {

using core::DeviceMeta;
using core::EngineConfig;
using core::ThresholdSpec;

std::string fmt_num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string join(const std::set<std::string>& items, const char* sep = ", ") {
  std::string out;
  for (const std::string& s : items) {
    if (!out.empty()) out += sep;
    out += s;
  }
  return out;
}

std::string join_names(const std::vector<std::string>& names, const std::vector<std::size_t>& idx,
                       const char* sep = ", ") {
  std::string out;
  for (std::size_t i : idx) {
    if (!out.empty()) out += sep;
    out += names[i];
  }
  return out;
}

// ---------------------------------------------------------------------------
// Edge predicate — pairwise part (mirrors I1/I2/I4/I5)
// ---------------------------------------------------------------------------

void shared_device_evidence(const StreamSummary& a, const StreamSummary& b,
                            std::vector<ConflictEvidence>& out) {
  for (const auto& [device, fa] : a.devices) {
    auto it = b.devices.find(device);
    if (it == b.devices.end()) continue;
    std::set<std::string> actions = fa.actions;
    actions.insert(it->second.actions.begin(), it->second.actions.end());
    out.push_back({ConflictKind::SharedDevice, device,
                   "both streams command '" + device + "' (" + join(actions) + ")"});
  }
}

void multiplex_evidence(const EngineConfig& config, const StreamSummary& a,
                        const StreamSummary& b, std::vector<ConflictEvidence>& out) {
  if (!config.time_multiplex) return;
  for (const auto& [arm_a, env_a] : a.arm_envelopes) {
    for (const auto& [arm_b, env_b] : b.arm_envelopes) {
      if (arm_a == arm_b) continue;
      out.push_back({ConflictKind::MultiplexToken, arm_a + "+" + arm_b,
                     "'" + arm_a + "' (" + a.name + ") and '" + arm_b + "' (" + b.name +
                         ") race the exclusive-motion token"});
    }
  }
}

void shared_entity_evidence(const StreamSummary& a, const StreamSummary& b,
                            std::vector<ConflictEvidence>& out) {
  for (const auto& [entity, ta] : a.entities) {
    auto it = b.entities.find(entity);
    if (it == b.entities.end()) continue;
    out.push_back({ConflictKind::SharedEntity, entity,
                   "both streams act on '" + entity + "' (via " + join(ta.via) + " / " +
                       join(it->second.via) + ")"});
  }
}

void envelope_evidence(const StreamSummary& a, const StreamSummary& b,
                       std::vector<ConflictEvidence>& out) {
  for (const auto& [arm_a, env_a] : a.arm_envelopes) {
    for (const auto& [arm_b, env_b] : b.arm_envelopes) {
      if (arm_a == arm_b) continue;  // same arm: a SharedDevice edge already
      if (!env_a.intersects(env_b)) continue;
      out.push_back({ConflictKind::EnvelopeOverlap, arm_a + "+" + arm_b,
                     "inflated workspace envelopes of '" + arm_a + "' (" + a.name + ") and '" +
                         arm_b + "' (" + b.name + ") overlap"});
    }
  }
}

void setpoint_evidence(const StreamSummary& a, const StreamSummary& b,
                       std::vector<ConflictEvidence>& out) {
  for (const auto& [device, vars_a] : a.setpoints) {
    auto dit = b.setpoints.find(device);
    if (dit == b.setpoints.end()) continue;
    for (const auto& [variable, iv_a] : vars_a) {
      auto vit = dit->second.find(variable);
      if (vit == dit->second.end()) continue;
      if (iv_a.same_as(vit->second)) continue;  // identical writes commute
      out.push_back({ConflictKind::SetpointRace, device,
                     device + "." + variable + " written as " + iv_a.format() + " by '" +
                         a.name + "' and " + vit->second.format() + " by '" + b.name + "'"});
    }
  }
}

void ignore_evidence(const StreamSummary& a, const StreamSummary& b,
                     std::vector<ConflictEvidence>& out) {
  std::set<std::string> declared_by_b;
  for (const auto& [arm, names] : b.ignores) declared_by_b.insert(names.begin(), names.end());
  for (const auto& [arm, names] : a.ignores) {
    for (const std::string& name : names) {
      if (declared_by_b.contains(name)) continue;
      if (b.devices.find(name) == b.devices.end() && b.entities.find(name) == b.entities.end()) {
        continue;
      }
      out.push_back({ConflictKind::IgnoreAsymmetry, name,
                     "'" + a.name + "' declares a deliberate interaction of '" + arm +
                         "' with '" + name + "'; '" + b.name + "' uses '" + name +
                         "' without declaring one"});
    }
  }
}

void append_pair_evidence(const EngineConfig& config, const StreamSummary& a,
                          const StreamSummary& b, std::vector<ConflictEvidence>& out) {
  shared_device_evidence(a, b, out);
  multiplex_evidence(config, a, b, out);
  shared_entity_evidence(a, b, out);
  envelope_evidence(a, b, out);
  setpoint_evidence(a, b, out);
  ignore_evidence(a, b, out);
  ignore_evidence(b, a, out);
}

// ---------------------------------------------------------------------------
// Edge predicate — campaign-wide part (mirrors I3/I6)
// ---------------------------------------------------------------------------

/// A violated campaign-wide budget: every pair of contributors gets an edge
/// (they must coordinate on the shared budget, whatever the interleaving).
struct BudgetClique {
  ConflictKind kind = ConflictKind::ConsumableBudget;
  std::string subject;
  std::string detail;
  std::vector<std::size_t> contributors;
};

template <typename TableOf, typename CapacityOf>
void consumable_cliques(const EngineConfig& config, const std::vector<StreamSummary>& streams,
                        const TableOf& table_of, const CapacityOf& capacity_of,
                        const char* initial_var, const char* unit,
                        std::vector<BudgetClique>& out) {
  std::set<std::string> keys;
  for (const StreamSummary& s : streams) {
    for (const auto& [key, iv] : *table_of(s)) keys.insert(key);
  }
  for (const std::string& key : keys) {
    const DeviceMeta* meta = config.find_device(key);
    if (meta == nullptr) continue;  // site-attributed delta: no capacity model
    double capacity = capacity_of(*meta);
    double initial = 0.0;
    if (auto it = meta->initial_state.find(initial_var);
        it != meta->initial_state.end() && it->second.is_number()) {
      initial = it->second.as_double();
    }
    Interval total;
    std::vector<std::size_t> contributors;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      auto it = table_of(streams[i])->find(key);
      if (it == table_of(streams[i])->end() || !it->second.set) continue;
      total.accumulate(it->second.lo, it->second.hi);
      contributors.push_back(i);
    }
    if (contributors.size() < 2) continue;  // single-stream checks own this
    if (capacity > 0.0 && initial + total.hi > capacity + core::kVolumeEpsilon) {
      out.push_back({ConflictKind::ConsumableBudget, key,
                     "summed deltas on '" + key + "' reach " + fmt_num(initial + total.hi) +
                         " " + unit + ", over its capacity " + fmt_num(capacity) + " " + unit,
                     contributors});
    }
    if (initial + total.lo < -core::kVolumeEpsilon) {
      out.push_back({ConflictKind::ConsumableBudget, key,
                     "summed draws on '" + key + "' can overdraw it by " +
                         fmt_num(-(initial + total.lo)) + " " + unit,
                     contributors});
    }
  }
}

void threshold_cliques(const EngineConfig& config, const std::vector<StreamSummary>& streams,
                       std::vector<BudgetClique>& out) {
  std::set<std::pair<std::string, std::string>> keys;
  for (const StreamSummary& s : streams) {
    for (const auto& [device, actions] : s.threshold_totals) {
      for (const auto& [action, iv] : actions) keys.emplace(device, action);
    }
  }
  for (const auto& [device, action] : keys) {
    const DeviceMeta* meta = config.find_device(device);
    const ThresholdSpec* th = meta != nullptr ? meta->threshold_for(action) : nullptr;
    if (th == nullptr) continue;
    Interval total;
    std::vector<std::size_t> contributors;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      auto dit = streams[i].threshold_totals.find(device);
      if (dit == streams[i].threshold_totals.end()) continue;
      auto ait = dit->second.find(action);
      if (ait == dit->second.end() || !ait->second.set) continue;
      total.accumulate(ait->second.lo, ait->second.hi);
      contributors.push_back(i);
    }
    if (contributors.size() < 2) continue;
    if (total.hi <= th->max + core::kVolumeEpsilon) continue;
    out.push_back({ConflictKind::ThresholdBudget, device,
                   "campaign-wide " + device + "." + action + " total " + total.format() +
                       " exceeds the per-command threshold " + fmt_num(th->max) + " (" +
                       th->argument + ")",
                   contributors});
  }
}

std::vector<BudgetClique> budget_cliques(const EngineConfig& config,
                                         const std::vector<StreamSummary>& streams) {
  std::vector<BudgetClique> out;
  consumable_cliques(
      config, streams, [](const StreamSummary& s) { return &s.mass_delta_mg; },
      [](const DeviceMeta& m) { return m.capacity_mg; }, "solidMg", "mg", out);
  consumable_cliques(
      config, streams, [](const StreamSummary& s) { return &s.volume_delta_ml; },
      [](const DeviceMeta& m) { return m.capacity_ml; }, "liquidMl", "mL", out);
  threshold_cliques(config, streams, out);
  return out;
}

/// The whole edge predicate, shared by plan_shards and verify_plan: evidence
/// for every conflicting pair, keyed (a, b) with a < b.
std::map<std::pair<std::size_t, std::size_t>, std::vector<ConflictEvidence>> derive_edges(
    const EngineConfig& config, const std::vector<StreamSummary>& streams) {
  std::map<std::pair<std::size_t, std::size_t>, std::vector<ConflictEvidence>> edges;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      std::vector<ConflictEvidence> evidence;
      append_pair_evidence(config, streams[i], streams[j], evidence);
      if (!evidence.empty()) edges[{i, j}] = std::move(evidence);
    }
  }
  for (const BudgetClique& clique : budget_cliques(config, streams)) {
    for (std::size_t x = 0; x < clique.contributors.size(); ++x) {
      for (std::size_t y = x + 1; y < clique.contributors.size(); ++y) {
        std::size_t a = clique.contributors[x];
        std::size_t b = clique.contributors[y];
        edges[{std::min(a, b), std::max(a, b)}].push_back(
            {clique.kind, clique.subject, clique.detail});
      }
    }
  }
  // A truncated summary may under-describe its stream, so nothing about it
  // can be certified: pessimistically conflict it with everyone (S3).
  for (std::size_t t = 0; t < streams.size(); ++t) {
    if (!streams[t].truncated) continue;
    for (std::size_t o = 0; o < streams.size(); ++o) {
      if (o == t) continue;
      edges[{std::min(t, o), std::max(t, o)}].push_back(
          {ConflictKind::TruncatedSummary, streams[t].name,
           "summary of '" + streams[t].name +
               "' is truncated (analysis budget, Top-valued quantity, or unresolvable "
               "motion target): independence cannot be certified"});
    }
  }
  return edges;
}

// ---------------------------------------------------------------------------
// Graph helpers (shard-local adjacency over plan-global indices)
// ---------------------------------------------------------------------------

/// Global minimum edge cut of an undirected unit-weight graph over `nodes`
/// (Stoer–Wagner). Returns {cut_weight, one side of the best cut}. Requires
/// nodes.size() >= 2 and a connected input (a shard always is).
std::pair<int, std::vector<std::size_t>> min_cut(
    const std::vector<std::size_t>& nodes,
    const std::set<std::pair<std::size_t, std::size_t>>& edge_set) {
  std::size_t n = nodes.size();
  std::map<std::size_t, std::size_t> local;  // global -> local
  for (std::size_t i = 0; i < n; ++i) local[nodes[i]] = i;
  std::vector<std::vector<int>> w(n, std::vector<int>(n, 0));
  for (const auto& [a, b] : edge_set) {
    auto ia = local.find(a);
    auto ib = local.find(b);
    if (ia == local.end() || ib == local.end()) continue;
    w[ia->second][ib->second] += 1;
    w[ib->second][ia->second] += 1;
  }
  std::vector<std::vector<std::size_t>> groups(n);
  for (std::size_t i = 0; i < n; ++i) groups[i] = {nodes[i]};
  std::vector<char> merged(n, 0);
  int best = std::numeric_limits<int>::max();
  std::vector<std::size_t> best_side;
  for (std::size_t phase = 0; phase + 1 < n; ++phase) {
    std::vector<int> weight(n, 0);
    std::vector<char> added(n, 0);
    std::size_t prev = n;
    std::size_t last = n;
    int last_weight = 0;
    std::size_t active = 0;
    for (std::size_t i = 0; i < n; ++i) active += merged[i] ? 0u : 1u;
    for (std::size_t step = 0; step < active; ++step) {
      std::size_t pick = n;
      for (std::size_t v = 0; v < n; ++v) {
        if (merged[v] || added[v]) continue;
        if (pick == n || weight[v] > weight[pick]) pick = v;  // tie: lowest id
      }
      added[pick] = 1;
      prev = last;
      last = pick;
      last_weight = weight[pick];
      for (std::size_t v = 0; v < n; ++v) {
        if (!merged[v] && !added[v]) weight[v] += w[pick][v];
      }
    }
    if (last_weight < best) {
      best = last_weight;
      best_side = groups[last];
    }
    // Merge `last` into `prev`.
    groups[prev].insert(groups[prev].end(), groups[last].begin(), groups[last].end());
    for (std::size_t v = 0; v < n; ++v) {
      w[prev][v] += w[last][v];
      w[v][prev] = w[prev][v];
    }
    merged[last] = 1;
  }
  std::sort(best_side.begin(), best_side.end());
  return {best, best_side};
}

/// Articulation vertices of the undirected graph over `nodes` (Tarjan).
std::vector<std::size_t> articulation_points(
    const std::vector<std::size_t>& nodes,
    const std::set<std::pair<std::size_t, std::size_t>>& edge_set) {
  std::size_t n = nodes.size();
  std::map<std::size_t, std::size_t> local;
  for (std::size_t i = 0; i < n; ++i) local[nodes[i]] = i;
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& [a, b] : edge_set) {
    auto ia = local.find(a);
    auto ib = local.find(b);
    if (ia == local.end() || ib == local.end()) continue;
    adj[ia->second].push_back(ib->second);
    adj[ib->second].push_back(ia->second);
  }
  std::vector<int> disc(n, -1);
  std::vector<int> low(n, 0);
  std::vector<char> is_artic(n, 0);
  int timer = 0;
  std::function<void(std::size_t, std::size_t)> dfs = [&](std::size_t v, std::size_t parent) {
    disc[v] = low[v] = timer++;
    std::size_t children = 0;
    for (std::size_t u : adj[v]) {
      if (u == parent) continue;
      if (disc[u] != -1) {
        low[v] = std::min(low[v], disc[u]);
        continue;
      }
      ++children;
      dfs(u, v);
      low[v] = std::min(low[v], low[u]);
      if (parent != n && low[u] >= disc[v]) is_artic[v] = 1;
    }
    if (parent == n && children > 1) is_artic[v] = 1;
  };
  for (std::size_t v = 0; v < n; ++v) {
    if (disc[v] == -1) dfs(v, n);
  }
  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < n; ++v) {
    if (is_artic[v]) out.push_back(nodes[v]);
  }
  return out;
}

/// Connected components of `nodes` minus `removed` (for the S2 split count).
std::vector<std::vector<std::size_t>> components_without(
    const std::vector<std::size_t>& nodes,
    const std::set<std::pair<std::size_t, std::size_t>>& edge_set, std::size_t removed) {
  std::set<std::size_t> pending(nodes.begin(), nodes.end());
  pending.erase(removed);
  std::vector<std::vector<std::size_t>> out;
  while (!pending.empty()) {
    std::vector<std::size_t> stack{*pending.begin()};
    pending.erase(pending.begin());
    std::vector<std::size_t> comp;
    while (!stack.empty()) {
      std::size_t v = stack.back();
      stack.pop_back();
      comp.push_back(v);
      for (auto it = pending.begin(); it != pending.end();) {
        std::size_t u = *it;
        if (edge_set.count({std::min(u, v), std::max(u, v)}) != 0) {
          stack.push_back(u);
          it = pending.erase(it);
        } else {
          ++it;
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    out.push_back(std::move(comp));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string evidence_digest(const std::vector<const ConflictEvidence*>& evidence,
                            std::size_t cap = 3) {
  std::string out;
  for (std::size_t i = 0; i < evidence.size() && i < cap; ++i) {
    if (!out.empty()) out += "; ";
    out += std::string(to_string(evidence[i]->kind)) + " '" + evidence[i]->subject + "': " +
           evidence[i]->detail;
  }
  if (evidence.size() > cap) {
    out += "; (+" + std::to_string(evidence.size() - cap) + " more)";
  }
  return out;
}

/// The closed certificate vocabulary (see IndependenceCertificate). Derived
/// from summaries alone so verify_plan can replay it bit-for-bit.
std::vector<std::string> certificate_conditions(const EngineConfig& config,
                                                const StreamSummary& a,
                                                const StreamSummary& b) {
  std::vector<std::string> out{"devices-disjoint", "entities-disjoint"};
  if (config.time_multiplex) out.emplace_back("no-multiplex-race");
  out.emplace_back("envelopes-disjoint");
  out.emplace_back("no-shared-budget");
  out.emplace_back("setpoints-compatible");
  out.emplace_back("ignores-symmetric");
  if (!a.truncated && !b.truncated) out.emplace_back("summaries-complete");
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardPlan accessors
// ---------------------------------------------------------------------------

std::string_view to_string(ConflictKind kind) {
  switch (kind) {
    case ConflictKind::SharedDevice: return "shared-device";
    case ConflictKind::MultiplexToken: return "multiplex-token";
    case ConflictKind::SharedEntity: return "shared-entity";
    case ConflictKind::EnvelopeOverlap: return "envelope-overlap";
    case ConflictKind::ConsumableBudget: return "consumable-budget";
    case ConflictKind::SetpointRace: return "setpoint-race";
    case ConflictKind::IgnoreAsymmetry: return "ignore-asymmetry";
    case ConflictKind::ThresholdBudget: return "threshold-budget";
    case ConflictKind::TruncatedSummary: return "truncated-summary";
  }
  return "unknown";
}

std::size_t ShardPlan::shard_of(std::size_t stream) const {
  for (std::size_t k = 0; k < shards.size(); ++k) {
    const std::vector<std::size_t>& s = shards[k].streams;
    if (std::binary_search(s.begin(), s.end(), stream)) return k;
  }
  return shards.size();
}

bool ShardPlan::certified_independent(std::size_t a, std::size_t b) const {
  if (a == b) return false;
  std::size_t sa = shard_of(a);
  std::size_t sb = shard_of(b);
  return sa < shards.size() && sb < shards.size() && sa != sb;
}

const ConflictEdge* ShardPlan::edge_between(std::size_t a, std::size_t b) const {
  if (a > b) std::swap(a, b);
  for (const ConflictEdge& e : edges) {
    if (e.a == a && e.b == b) return &e;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// plan_shards
// ---------------------------------------------------------------------------

ShardPlan plan_shards(const EngineConfig& config, const std::vector<StreamSummary>& streams,
                      const ShardPlanOptions& options) {
  ShardPlan plan;
  plan.stream_names.reserve(streams.size());
  for (const StreamSummary& s : streams) plan.stream_names.push_back(s.name);
  for (const StreamSummary& s : streams) plan.truncated = plan.truncated || s.truncated;
  plan.diagnostics.truncated = plan.truncated;

  auto edge_map = derive_edges(config, streams);
  std::set<std::pair<std::size_t, std::size_t>> edge_set;
  for (auto& [key, evidence] : edge_map) {
    edge_set.insert(key);
    plan.edges.push_back({key.first, key.second, std::move(evidence)});
  }

  // Shards = connected components, by union-find, emitted in ascending order
  // of their smallest member.
  std::vector<std::size_t> parent(streams.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const auto& [a, b] : edge_set) {
    std::size_t ra = find(a);
    std::size_t rb = find(b);
    if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
  }
  std::map<std::size_t, std::vector<std::size_t>> by_root;
  for (std::size_t i = 0; i < streams.size(); ++i) by_root[find(i)].push_back(i);
  for (auto& [root, members] : by_root) {
    std::sort(members.begin(), members.end());
    plan.shards.push_back({std::move(members)});
  }

  // Certificates for every cross-shard pair.
  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      if (!plan.certified_independent(i, j)) continue;
      plan.certificates.push_back({i, j, certificate_conditions(config, streams[i], streams[j])});
    }
  }

  // Per-arm certified envelopes (the runtime snapshot soundness data; see
  // ShardPlan::arm_envelopes). Commanded arms union their summary envelopes;
  // arms no stream moves are pinned to their inflated parked sleep box.
  for (const StreamSummary& s : streams) {
    for (const auto& [arm, env] : s.arm_envelopes) {
      auto [it, inserted] = plan.arm_envelopes.emplace(arm, env);
      if (!inserted) it->second = it->second.united(env);
    }
  }
  for (const DeviceMeta& m : config.devices) {
    if (!m.is_arm || !m.sleep_box) continue;
    if (plan.arm_envelopes.contains(m.id)) continue;
    plan.arm_envelopes.emplace(m.id, m.sleep_box->inflated(options.parked_arm_margin));
  }

  auto emit = [&plan](std::string rule, std::string message, std::vector<std::string> subjects,
                      std::vector<std::string> stream_names) {
    std::sort(subjects.begin(), subjects.end());
    subjects.erase(std::unique(subjects.begin(), subjects.end()), subjects.end());
    Diagnostic d{Severity::Warning, std::move(rule), std::move(message), 0};
    d.subjects = std::move(subjects);
    d.streams = std::move(stream_names);
    plan.diagnostics.diagnostics.push_back(std::move(d));
  };

  // S1 — the campaign cannot be sharded below the requested bound. The
  // min-cut is the evidence: the cheapest set of conflicts to design away.
  std::size_t bound =
      options.max_shard_streams > 0 ? options.max_shard_streams : streams.size() - 1;
  for (const Shard& shard : plan.shards) {
    if (streams.size() < 2 || shard.streams.size() <= std::max<std::size_t>(bound, 1)) continue;
    auto [cut_weight, side] = min_cut(shard.streams, edge_set);
    std::vector<std::size_t> other;
    std::set<std::size_t> side_set(side.begin(), side.end());
    for (std::size_t v : shard.streams) {
      if (!side_set.contains(v)) other.push_back(v);
    }
    std::vector<const ConflictEvidence*> cut_evidence;
    std::vector<std::string> subjects;
    for (const ConflictEdge& e : plan.edges) {
      if (side_set.count(e.a) + side_set.count(e.b) != 1) continue;
      for (const ConflictEvidence& ev : e.evidence) {
        cut_evidence.push_back(&ev);
        subjects.push_back(ev.subject);
      }
    }
    std::vector<std::string> names;
    for (std::size_t v : shard.streams) names.push_back(plan.stream_names[v]);
    std::string lead =
        options.max_shard_streams > 0
            ? "campaign not shardable below " + std::to_string(bound) + " stream(s)/shard: streams "
            : "campaign not shardable at all: streams ";
    emit("S1",
         lead + join_names(plan.stream_names, shard.streams) + " collapse into one " +
             std::to_string(shard.streams.size()) +
             "-stream shard; the minimum conflict cut ({" +
             join_names(plan.stream_names, side) + "} | {" +
             join_names(plan.stream_names, other) + "}) severs " + std::to_string(cut_weight) +
             " edge(s): " + evidence_digest(cut_evidence),
         std::move(subjects), std::move(names));
  }

  // S2 — an articulation stream serializes the shard: removing it would
  // split the rest into independent groups.
  for (const Shard& shard : plan.shards) {
    if (shard.streams.size() < 3) continue;
    for (std::size_t v : articulation_points(shard.streams, edge_set)) {
      auto groups = components_without(shard.streams, edge_set, v);
      std::vector<const ConflictEvidence*> incident;
      std::vector<std::string> subjects;
      for (const ConflictEdge& e : plan.edges) {
        if (e.a != v && e.b != v) continue;
        for (const ConflictEvidence& ev : e.evidence) {
          incident.push_back(&ev);
          subjects.push_back(ev.subject);
        }
      }
      std::string split;
      for (const auto& g : groups) {
        if (!split.empty()) split += " | ";
        split += "{" + join_names(plan.stream_names, g) + "}";
      }
      std::vector<std::string> names{plan.stream_names[v]};
      for (std::size_t m : shard.streams) {
        if (m != v) names.push_back(plan.stream_names[m]);
      }
      emit("S2",
           "single stream serializes the fleet: '" + plan.stream_names[v] +
               "' is the only link holding its " + std::to_string(shard.streams.size()) +
               "-stream shard together (without it: " + split +
               "); its conflicts: " + evidence_digest(incident),
           std::move(subjects), std::move(names));
    }
  }

  // S3 — truncated summaries were merged pessimistically.
  for (std::size_t t = 0; t < streams.size(); ++t) {
    if (!streams[t].truncated || streams.size() < 2) continue;
    std::vector<std::string> partners;
    std::size_t shard = plan.shard_of(t);
    for (std::size_t m : plan.shards[shard].streams) partners.push_back(plan.stream_names[m]);
    emit("S3",
         "truncated summary forced pessimistic merging: '" + streams[t].name +
             "' is incomplete (analysis budget, Top-valued quantity, or unresolvable motion "
             "target), so it conflicts with every other stream and pins the " +
             std::to_string(plan.shards[shard].streams.size()) + "-stream shard " +
             join_names(plan.stream_names, plan.shards[shard].streams),
         {streams[t].name}, std::move(partners));
  }

  return plan;
}

ShardPlan plan_campaign_shards(const EngineConfig& config,
                               const std::vector<CampaignStream>& streams,
                               const ShardPlanOptions& plan_options,
                               const AnalyzeOptions& analyze_options) {
  std::vector<StreamSummary> summaries;
  summaries.reserve(streams.size());
  for (const CampaignStream& s : streams) {
    summaries.push_back(summarize_stream(config, s.name, s.commands, analyze_options));
  }
  return plan_shards(config, summaries, plan_options);
}

// ---------------------------------------------------------------------------
// verify_plan
// ---------------------------------------------------------------------------

std::vector<std::string> verify_plan(const EngineConfig& config,
                                     const std::vector<StreamSummary>& streams,
                                     const ShardPlan& plan) {
  std::vector<std::string> violations;
  if (plan.stream_names.size() != streams.size()) {
    violations.push_back("plan covers " + std::to_string(plan.stream_names.size()) +
                         " stream(s), summaries have " + std::to_string(streams.size()));
    return violations;
  }
  for (std::size_t i = 0; i < streams.size(); ++i) {
    if (plan.stream_names[i] != streams[i].name) {
      violations.push_back("stream " + std::to_string(i) + " is '" + streams[i].name +
                           "' but the plan names it '" + plan.stream_names[i] + "'");
    }
  }
  std::vector<std::size_t> owner(streams.size(), plan.shards.size());
  for (std::size_t k = 0; k < plan.shards.size(); ++k) {
    for (std::size_t v : plan.shards[k].streams) {
      if (v >= streams.size()) {
        violations.push_back("shard " + std::to_string(k) + " references stream index " +
                             std::to_string(v) + " out of range");
        continue;
      }
      if (owner[v] != plan.shards.size()) {
        violations.push_back("stream '" + streams[v].name + "' appears in shards " +
                             std::to_string(owner[v]) + " and " + std::to_string(k));
      }
      owner[v] = k;
    }
  }
  for (std::size_t v = 0; v < streams.size(); ++v) {
    if (owner[v] == plan.shards.size()) {
      violations.push_back("stream '" + streams[v].name + "' is in no shard");
    }
  }
  if (!violations.empty()) return violations;

  // Cross-shard independence, re-derived from scratch. Coarser-than-maximal
  // plans (shards merged beyond necessity) pass: only cross-shard pairs are
  // safety-relevant.
  auto edge_map = derive_edges(config, streams);
  std::set<std::pair<std::size_t, std::size_t>> certified;
  for (const IndependenceCertificate& c : plan.certificates) {
    if (c.a >= streams.size() || c.b >= streams.size() || owner[c.a] == owner[c.b]) {
      violations.push_back("certificate (" + std::to_string(c.a) + ", " + std::to_string(c.b) +
                           ") does not span two shards");
      continue;
    }
    certified.insert({std::min(c.a, c.b), std::max(c.a, c.b)});
    std::vector<std::string> expected = certificate_conditions(config, streams[c.a], streams[c.b]);
    if (c.conditions != expected) {
      violations.push_back("certificate (" + streams[c.a].name + ", " + streams[c.b].name +
                           ") conditions do not replay");
    }
  }
  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      if (owner[i] == owner[j]) continue;
      if (auto it = edge_map.find({i, j}); it != edge_map.end()) {
        violations.push_back("streams '" + streams[i].name + "' and '" + streams[j].name +
                             "' are in different shards but conflict: " +
                             it->second.front().detail);
      }
      if (!certified.contains({i, j})) {
        violations.push_back("cross-shard pair ('" + streams[i].name + "', '" +
                             streams[j].name + "') has no independence certificate");
      }
    }
  }
  return violations;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

json::Value plan_to_json(const ShardPlan& plan) {
  json::Object root;
  json::Array names;
  for (const std::string& n : plan.stream_names) names.emplace_back(n);
  root["streams"] = std::move(names);

  json::Array shards;
  for (const Shard& shard : plan.shards) {
    json::Array members;
    for (std::size_t v : shard.streams) members.emplace_back(plan.stream_names[v]);
    shards.emplace_back(std::move(members));
  }
  root["shards"] = std::move(shards);
  root["shard_count"] = plan.shards.size();

  json::Array edges;
  for (const ConflictEdge& e : plan.edges) {
    json::Object o;
    o["a"] = plan.stream_names[e.a];
    o["b"] = plan.stream_names[e.b];
    json::Array evidence;
    for (const ConflictEvidence& ev : e.evidence) {
      json::Object eo;
      eo["kind"] = std::string(to_string(ev.kind));
      eo["subject"] = ev.subject;
      eo["detail"] = ev.detail;
      evidence.emplace_back(std::move(eo));
    }
    o["evidence"] = std::move(evidence);
    edges.emplace_back(std::move(o));
  }
  root["edges"] = std::move(edges);

  json::Array certificates;
  for (const IndependenceCertificate& c : plan.certificates) {
    json::Object o;
    o["a"] = plan.stream_names[c.a];
    o["b"] = plan.stream_names[c.b];
    json::Array conditions;
    for (const std::string& cond : c.conditions) conditions.emplace_back(cond);
    o["conditions"] = std::move(conditions);
    certificates.emplace_back(std::move(o));
  }
  root["certificates"] = std::move(certificates);

  json::Object envelopes;
  for (const auto& [arm, env] : plan.arm_envelopes) {
    json::Object box;
    box["min"] = json::Array{env.min.x, env.min.y, env.min.z};
    box["max"] = json::Array{env.max.x, env.max.y, env.max.z};
    envelopes[arm] = std::move(box);
  }
  root["arm_envelopes"] = std::move(envelopes);
  root["diagnostics"] = report_to_json(plan.diagnostics);
  root["truncated"] = plan.truncated;
  return json::Value(std::move(root));
}

std::string format_plan(const ShardPlan& plan) {
  std::ostringstream os;
  os << "shard plan: " << plan.stream_names.size() << " stream(s) -> " << plan.shards.size()
     << " shard(s)\n";
  for (std::size_t k = 0; k < plan.shards.size(); ++k) {
    os << "  shard " << k << " (" << plan.shards[k].streams.size()
       << " stream(s)): " << join_names(plan.stream_names, plan.shards[k].streams) << "\n";
  }
  os << "conflict edges: " << plan.edges.size() << "\n";
  constexpr std::size_t kMaxEdges = 50;
  for (std::size_t i = 0; i < plan.edges.size() && i < kMaxEdges; ++i) {
    const ConflictEdge& e = plan.edges[i];
    os << "  " << plan.stream_names[e.a] << " <-> " << plan.stream_names[e.b] << ":\n";
    for (const ConflictEvidence& ev : e.evidence) {
      os << "    [" << to_string(ev.kind) << " '" << ev.subject << "'] " << ev.detail << "\n";
    }
  }
  if (plan.edges.size() > kMaxEdges) {
    os << "  (+" << plan.edges.size() - kMaxEdges << " more edges)\n";
  }
  os << "certified independent pairs: " << plan.certificates.size() << "\n";
  constexpr std::size_t kMaxCerts = 20;
  for (std::size_t i = 0; i < plan.certificates.size() && i < kMaxCerts; ++i) {
    const IndependenceCertificate& c = plan.certificates[i];
    os << "  " << plan.stream_names[c.a] << " x " << plan.stream_names[c.b] << ": ";
    for (std::size_t j = 0; j < c.conditions.size(); ++j) {
      if (j != 0) os << ", ";
      os << c.conditions[j];
    }
    os << "\n";
  }
  if (plan.certificates.size() > kMaxCerts) {
    os << "  (+" << plan.certificates.size() - kMaxCerts << " more pairs)\n";
  }
  if (plan.diagnostics.diagnostics.empty()) {
    os << "diagnostics: none\n";
  } else {
    os << "diagnostics:\n";
    for (const Diagnostic& d : plan.diagnostics.diagnostics) {
      os << "  " << d.format() << "\n";
    }
  }
  if (plan.truncated) {
    os << "(a truncated summary forced pessimistic merging — the partition may be coarser "
          "than the campaign deserves)\n";
  }
  return os.str();
}

}  // namespace rabit::analysis
