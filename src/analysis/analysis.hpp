// rabit::analysis — pre-flight static analysis of lab scripts and configs.
//
// The pilot study (§V-A) found researchers lose hours to configuration and
// script errors that only surface at runtime. This module moves detection one
// stage earlier than the paper's own deployment ladder (simulator → testbed →
// production): it walks the script DSL AST with an abstract interpreter —
// constant/interval propagation for numeric arguments, a symbolic device-
// state model reusing StateTracker, bounded unrolling of loops, path forking
// at statically undecidable branches — and evaluates the G/C/M rule
// preconditions against every statically-resolvable device command, before a
// single command executes.
//
// On top of the runtime rulebase it layers analyzer-only checks (A1..A8)
// that catch classes of bug the runtime provably cannot (the paper's Bug C
// dry-run, the gripper reorder, the frame-misalignment brush, the silently
// skipped waypoint), plus a cross-consistency lint over EngineConfig (CFG1..)
// for semantic mistakes the JSON schema cannot express.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "devices/device.hpp"
#include "json/json.hpp"
#include "recovery/recovery.hpp"
#include "script/ast.hpp"

namespace rabit::core {
class StateTracker;
}  // namespace rabit::core

namespace rabit::analysis {

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

enum class Severity { Info, Warning, Error };

[[nodiscard]] std::string_view to_string(Severity s);

struct Diagnostic {
  Severity severity = Severity::Warning;
  /// Rulebase id ("G1".."G11", "C1".."C4", "M1", "M2", "S1"), analyzer rule
  /// ("A1".."A8"), config lint rule ("CFG1"..), interference rule
  /// ("I1".."I6"), or shard-plan rule ("S1".."S3" — those appear only inside
  /// ShardPlan::diagnostics, never in a stream report, so they cannot be
  /// confused with the runtime sensor rule S1).
  std::string rule;
  std::string message;
  /// 1-based script line; for command streams the command's source_line when
  /// recorded from a script, else the 1-based stream index. Interference
  /// diagnostics are campaign-level and use line 0.
  int line = 0;
  /// Devices / sites / entities this diagnostic is about, machine-readable.
  /// Populated by the interference family (I1..I6), where the differential
  /// sweep matches runtime alert devices against it; empty elsewhere.
  std::vector<std::string> subjects;
  /// Names of the campaign streams this diagnostic involves. Populated by
  /// the campaign-level families (I1..I6, S1..S3) so machine consumers can
  /// attribute a finding without parsing the message; empty for
  /// single-stream and config diagnostics.
  std::vector<std::string> streams;

  [[nodiscard]] std::string format() const;  ///< "line 14: error G7 — ..."
};

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  /// True when the analyzer hit a budget (paths, loop unrolling) and the
  /// report may therefore be incomplete (soundness limit, see DESIGN.md).
  bool truncated = false;

  [[nodiscard]] std::size_t count(Severity s) const;
  [[nodiscard]] bool has_errors() const { return count(Severity::Error) > 0; }
};

/// Serializes one diagnostic as a JSON object — the shared machine-readable
/// schema: {"id", "rule", "severity", "line", "message", "subjects"?,
/// "streams"?}. ("id" and "rule" carry the same value; "id" is the stable
/// name CI consumers key on.) rabit_lint --json and the shard planner's
/// evidence both emit exactly this shape.
[[nodiscard]] json::Value diagnostic_to_json(const Diagnostic& diagnostic);

/// Serializes a report as a JSON object (the rabit_lint --json format): a
/// "diagnostics" array of diagnostic_to_json objects plus summary counts.
[[nodiscard]] json::Value report_to_json(const AnalysisReport& report);

/// A copy of `report` with diagnostics in the canonical emission order —
/// (rule, streams, line, severity, message) — so text and --json output are
/// byte-stable across platforms and discovery orders. Analysis passes keep
/// their natural discovery order internally (tests pin it); emitters sort
/// at the boundary.
[[nodiscard]] AnalysisReport sorted_for_emission(const AnalysisReport& report);

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------

/// The numeric lattice: Const(v) ⊑ Range[lo,hi] ⊑ Top. Non-numeric values
/// are either Const (strings, bools, lists, objects) or Top.
struct AbstractValue {
  enum class Kind { Const, Range, Top };

  Kind kind = Kind::Top;
  json::Value constant;  ///< valid when kind == Const
  double lo = 0.0;       ///< valid when kind == Range
  double hi = 0.0;
  std::string device;    ///< non-empty: this value names a device

  [[nodiscard]] static AbstractValue make_const(json::Value v);
  [[nodiscard]] static AbstractValue make_range(double lo, double hi);
  [[nodiscard]] static AbstractValue top();
  [[nodiscard]] static AbstractValue device_ref(std::string id);

  [[nodiscard]] bool is_const() const { return kind == Kind::Const; }
  [[nodiscard]] bool is_top() const { return kind == Kind::Top; }
  /// Numeric interval view: a Const number reads as a point interval.
  [[nodiscard]] bool numeric_bounds(double& out_lo, double& out_hi) const;
  /// Truth value when statically decidable.
  [[nodiscard]] std::optional<bool> truth() const;
};

/// Interval arithmetic / comparison used by the interpreter (exposed for
/// tests). `op` is one of the DSL binary operators.
[[nodiscard]] AbstractValue abstract_binary(const std::string& op, const AbstractValue& lhs,
                                            const AbstractValue& rhs);

// ---------------------------------------------------------------------------
// Analyzer entry points
// ---------------------------------------------------------------------------

/// One device command the analyzer resolved (or partially resolved) on some
/// path, with the symbolic pre-command state it was checked against. The
/// interference layer consumes these to build per-stream effect summaries;
/// see interference.hpp.
struct CommandObservation {
  const dev::Command* cmd = nullptr;          ///< args constant where foldable
  const core::StateTracker* tracker = nullptr;  ///< state *before* the command
  int line = 0;
  /// True when the observation sits past a statically undecidable branch —
  /// the command may or may not happen; summaries treat it as "may".
  bool speculative = false;
  /// Arguments that did not fold to constants, with their abstract values
  /// (intervals where known, Top otherwise). Null when fully resolved.
  const std::vector<std::pair<std::string, AbstractValue>>* unresolved = nullptr;
};

struct AnalyzeOptions {
  int loop_unroll_budget = 64;    ///< decidable-loop iterations before widening
  int unknown_loop_unroll = 2;    ///< speculative iterations of unknown loops
  int max_paths = 64;             ///< path-set cap (forked branches)
  int max_diagnostics = 200;      ///< total report cap
  double parked_arm_margin = 0.05;   ///< A3: frame-calibration slack (m)
  double workspace_margin = 0.25;    ///< A4: inflation of the deck envelope (m)
  /// Summary hook: called once per checked device command (on every path and
  /// loop iteration), before its postconditions are applied. Diagnostics are
  /// unaffected — the hook only feeds effect-summary construction.
  std::function<void(const CommandObservation&)> observe_command;
};

/// Synthesizes the Fig. 6-style `locations` global from a configuration
/// (sites × arms, arm-local "pickup" plus a raised "safe"), so standalone
/// scripts can be linted without a live backend.
[[nodiscard]] json::Value seed_locations(const core::EngineConfig& config,
                                         double safe_lift = 0.22);

/// Statically analyzes a script against the rulebase. `globals` seeds
/// additional interpreter globals (the `locations` table when absent is
/// synthesized from the config automatically).
[[nodiscard]] AnalysisReport analyze_script(const core::EngineConfig& config,
                                            const script::Program& program,
                                            const AnalyzeOptions& options = {});
[[nodiscard]] AnalysisReport analyze_script(const core::EngineConfig& config,
                                            std::string_view source,
                                            const AnalyzeOptions& options = {});
[[nodiscard]] AnalysisReport analyze_script(const core::EngineConfig& config,
                                            std::string_view source,
                                            const std::map<std::string, json::Value>& globals,
                                            const AnalyzeOptions& options = {});

/// Degenerate (fully concrete) abstract interpretation of a linear command
/// stream: every runtime rule plus the analyzer-only checks, with no
/// execution. Diagnostic lines use each command's source_line when positive,
/// else its 1-based stream index.
[[nodiscard]] AnalysisReport analyze_stream(const core::EngineConfig& config,
                                            const std::vector<dev::Command>& commands,
                                            const AnalyzeOptions& options = {});

/// Cross-consistency lint over a configuration: unknown device/site
/// references, thresholds naming actions no device has, aliases shadowing
/// canonical actions, sites unreachable from every arm, overlapping device
/// cuboids, soft walls referencing unknown arms — semantic checks the JSON
/// schema cannot express.
[[nodiscard]] AnalysisReport lint_config(const core::EngineConfig& config);

/// CFG11 — recovery-policy sanity lint: fatal validation failures (zero or
/// negative backoff, shrinking backoff factor, jitter outside [0,1),
/// non-positive re-poll interval or watchdog) surface as errors, and a
/// watchdog shorter than one worst-case backoff ladder as a warning. The
/// same recovery::validate() the Supervisor enforces at construction, but
/// at pre-flight time where a bad policy costs seconds instead of a
/// mid-campaign escalation.
[[nodiscard]] AnalysisReport lint_recovery_policy(const recovery::RecoveryPolicy& policy);

}  // namespace rabit::analysis
