// Cross-consistency lint over EngineConfig: semantic mistakes the JSON
// schema cannot express. The pilot study (§V-A) found researchers making
// exactly these errors by hand — a threshold naming an action the device
// does not have silently guards nothing, an alias shadowing a canonical
// action silently rewrites commands, a site no arm can reach makes every
// workflow that uses it fail at runtime.
#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include "analysis/analysis.hpp"

namespace rabit::analysis {

namespace {

using core::DeviceMeta;
using core::EngineConfig;
using core::SiteMeta;
using core::SoftWallSpec;

/// The action vocabulary the engine dispatches on, per category (see
/// core/rules.cpp and core/tracker.cpp). A threshold or alias naming
/// anything else guards nothing.
std::set<std::string> known_actions(const DeviceMeta& meta) {
  std::vector<std::string> actions = core::dispatchable_actions(meta);
  return {actions.begin(), actions.end()};
}

double max_arm_reach(const DeviceMeta& arm) {
  // Configs do not record joint limits; the home/sleep tip positions bound
  // what the researcher told us about the arm. A generous multiple of the
  // farther one approximates the reachable sphere around the base.
  double home = (arm.home_position_lab - arm.base.apply(geom::Vec3())).norm();
  double sleep = (arm.sleep_position_lab - arm.base.apply(geom::Vec3())).norm();
  return std::max(0.6, 2.5 * std::max(home, sleep));
}

}  // namespace

AnalysisReport lint_config(const core::EngineConfig& config) {
  AnalysisReport report;
  auto emit = [&report](Severity severity, const std::string& rule, std::string message) {
    report.diagnostics.push_back(Diagnostic{severity, rule, std::move(message), 0});
  };

  // CFG1 — duplicate device / site ids. Everything downstream resolves by
  // name, so a duplicate silently wins or loses lookups.
  {
    std::set<std::string> seen;
    for (const DeviceMeta& d : config.devices) {
      if (!seen.insert(d.id).second) {
        emit(Severity::Error, "CFG1", "duplicate device id '" + d.id + "'");
      }
    }
    std::set<std::string> sites;
    for (const SiteMeta& s : config.sites) {
      if (!sites.insert(s.name).second) {
        emit(Severity::Error, "CFG1", "duplicate site name '" + s.name + "'");
      }
    }
  }

  // CFG2 — sites referencing unknown devices.
  for (const SiteMeta& s : config.sites) {
    if (s.is_grid_slot() && config.find_device(s.grid_device) == nullptr) {
      emit(Severity::Error, "CFG2",
           "site '" + s.name + "' names unknown grid device '" + s.grid_device + "'");
    }
    if (s.is_receptacle() && config.find_device(s.receptacle_device) == nullptr) {
      emit(Severity::Error, "CFG2", "site '" + s.name + "' names unknown receptacle device '" +
                                        s.receptacle_device + "'");
    }
  }

  // CFG3 — soft walls must reference a configured arm; a typo here disables
  // the space-multiplexing protection entirely (§IV category 2).
  for (const SoftWallSpec& wall : config.soft_walls) {
    const DeviceMeta* arm = config.find_device(wall.arm_id);
    if (arm == nullptr) {
      emit(Severity::Error, "CFG3",
           "soft wall references unknown arm '" + wall.arm_id + "'");
    } else if (!arm->is_arm) {
      emit(Severity::Error, "CFG3", "soft wall references '" + wall.arm_id +
                                        "', which is not a robot arm");
    }
  }

  for (const DeviceMeta& d : config.devices) {
    std::set<std::string> vocabulary = known_actions(d);

    // CFG4 — a threshold naming an action the device never dispatches is a
    // guard on nothing: the researcher believes a limit exists.
    for (const core::ThresholdSpec& t : d.thresholds) {
      bool known = vocabulary.contains(t.action) ||
                   std::any_of(d.action_aliases.begin(), d.action_aliases.end(),
                               [&t](const auto& a) { return a.first == t.action; });
      if (!known) {
        emit(Severity::Warning, "CFG4",
             "device '" + d.id + "' sets a threshold on action '" + t.action +
                 "', which no rule or binding dispatches — the limit guards nothing");
      }
    }

    // CFG5 — an alias that names an existing canonical action shadows it:
    // commands using the original name are silently rewritten.
    for (const auto& [alias, canonical] : d.action_aliases) {
      if (vocabulary.contains(alias)) {
        emit(Severity::Error, "CFG5",
             "device '" + d.id + "' aliases '" + alias + "' -> '" + canonical +
                 "', shadowing the canonical action of the same name");
      }
      if (alias == canonical) {
        emit(Severity::Warning, "CFG5",
             "device '" + d.id + "' aliases '" + alias + "' to itself");
      }
    }
  }

  // CFG6 — a site unreachable from every arm makes any workflow using it
  // fail at runtime; catching it here is exactly the pre-flight promise.
  {
    std::vector<const DeviceMeta*> arms;
    for (const DeviceMeta& d : config.devices) {
      if (d.is_arm) arms.push_back(&d);
    }
    if (!arms.empty()) {
      for (const SiteMeta& s : config.sites) {
        bool reachable = std::any_of(arms.begin(), arms.end(), [&s](const DeviceMeta* arm) {
          geom::Vec3 base = arm->base.apply(geom::Vec3());
          return (s.lab_position - base).norm() <= max_arm_reach(*arm);
        });
        if (!reachable) {
          emit(Severity::Warning, "CFG6",
               "site '" + s.name + "' lies beyond the estimated reach of every arm");
        }
      }
    }
  }

  // CFG7 — overlapping station cuboids: two devices cannot occupy the same
  // space; an overlap with positive volume means at least one box is wrong,
  // and rule G3 will fire on legitimate approaches to either.
  for (std::size_t i = 0; i < config.devices.size(); ++i) {
    const DeviceMeta& a = config.devices[i];
    if (a.is_arm || !a.box) continue;
    for (std::size_t j = i + 1; j < config.devices.size(); ++j) {
      const DeviceMeta& b = config.devices[j];
      if (b.is_arm || !b.box) continue;
      geom::Vec3 lo(std::max(a.box->min.x, b.box->min.x), std::max(a.box->min.y, b.box->min.y),
                    std::max(a.box->min.z, b.box->min.z));
      geom::Vec3 hi(std::min(a.box->max.x, b.box->max.x), std::min(a.box->max.y, b.box->max.y),
                    std::min(a.box->max.z, b.box->max.z));
      if (lo.x < hi.x && lo.y < hi.y && lo.z < hi.z) {
        std::ostringstream os;
        os << "device cuboids of '" << a.id << "' and '" << b.id
           << "' overlap with positive volume";
        emit(Severity::Warning, "CFG7", os.str());
      }
    }
  }

  // CFG8 — a threshold with a non-positive limit rejects every use of the
  // action; almost certainly a sign or unit mistake (§V-A).
  for (const DeviceMeta& d : config.devices) {
    for (const core::ThresholdSpec& t : d.thresholds) {
      if (t.max <= 0.0) {
        emit(Severity::Warning, "CFG8",
             "device '" + d.id + "' threshold on '" + t.action + "' has non-positive limit " +
                 std::to_string(t.max) + " — every use will be rejected");
      }
    }
  }

  // CFG9 — the config-level shadow of the I2 interference check: two arms
  // whose estimated workspace envelopes overlap can collide the moment two
  // streams move them concurrently, unless the config declares how the
  // overlap is managed — time multiplexing (one arm moves at a time) or a
  // soft wall keeping an arm out of the shared region.
  if (!config.time_multiplex) {
    std::vector<const DeviceMeta*> arms;
    for (const DeviceMeta& d : config.devices) {
      if (d.is_arm) arms.push_back(&d);
    }
    auto walled_out_of = [&config](const DeviceMeta& arm, const geom::Aabb& region) {
      return std::any_of(config.soft_walls.begin(), config.soft_walls.end(),
                         [&](const SoftWallSpec& w) {
                           return w.arm_id == arm.id && w.forbidden.contains(region.min) &&
                                  w.forbidden.contains(region.max);
                         });
    };
    for (std::size_t i = 0; i < arms.size(); ++i) {
      for (std::size_t j = i + 1; j < arms.size(); ++j) {
        geom::Vec3 base_a = arms[i]->base.apply(geom::Vec3());
        geom::Vec3 base_b = arms[j]->base.apply(geom::Vec3());
        double reach_a = max_arm_reach(*arms[i]);
        double reach_b = max_arm_reach(*arms[j]);
        geom::Aabb ws_a(base_a - geom::Vec3(reach_a, reach_a, reach_a),
                        base_a + geom::Vec3(reach_a, reach_a, reach_a));
        geom::Aabb ws_b(base_b - geom::Vec3(reach_b, reach_b, reach_b),
                        base_b + geom::Vec3(reach_b, reach_b, reach_b));
        if (!ws_a.intersects(ws_b)) continue;
        geom::Aabb shared(
            geom::Vec3(std::max(ws_a.min.x, ws_b.min.x), std::max(ws_a.min.y, ws_b.min.y),
                       std::max(ws_a.min.z, ws_b.min.z)),
            geom::Vec3(std::min(ws_a.max.x, ws_b.max.x), std::min(ws_a.max.y, ws_b.max.y),
                       std::min(ws_a.max.z, ws_b.max.z)));
        if (walled_out_of(*arms[i], shared) || walled_out_of(*arms[j], shared)) continue;
        emit(Severity::Warning, "CFG9",
             "workspace envelopes of arms '" + arms[i]->id + "' and '" + arms[j]->id +
                 "' overlap with neither time multiplexing nor a covering soft wall "
                 "declared — concurrent streams can collide them (see I2)");
      }
    }
  }

  // CFG10 — the config-level shadow of the I3 interference check: a
  // container whose capacity is below the *sum* of the per-device dosing
  // thresholds can be overfilled by commands that each pass rule 11, as soon
  // as two devices dose into it.
  {
    auto is_mass_dosing = [](const std::string& action) {
      return action == "run_action" || action == "add_solid";
    };
    auto is_volume_dosing = [](const std::string& action) {
      return action == "dose_solvent" || action == "add_liquid" || action == "draw_solvent";
    };
    double mass_sum = 0.0, volume_sum = 0.0;
    std::set<std::string> mass_devices, volume_devices;
    for (const DeviceMeta& d : config.devices) {
      for (const core::ThresholdSpec& t : d.thresholds) {
        if (t.max <= 0.0) continue;  // CFG8's problem
        if (is_mass_dosing(t.action)) {
          mass_sum += t.max;
          mass_devices.insert(d.id);
        } else if (is_volume_dosing(t.action)) {
          volume_sum += t.max;
          volume_devices.insert(d.id);
        }
      }
    }
    for (const DeviceMeta& d : config.devices) {
      if (d.capacity_mg > 0.0 && mass_devices.size() >= 2 && d.capacity_mg < mass_sum) {
        std::ostringstream os;
        os << "container '" << d.id << "' capacity " << d.capacity_mg
           << " mg is below the summed per-device dosing thresholds (" << mass_sum
           << " mg across " << mass_devices.size()
           << " devices) — each command can pass rule 11 while the campaign overfills it "
              "(see I3)";
        emit(Severity::Warning, "CFG10", os.str());
      }
      if (d.capacity_ml > 0.0 && volume_devices.size() >= 2 && d.capacity_ml < volume_sum) {
        std::ostringstream os;
        os << "container '" << d.id << "' capacity " << d.capacity_ml
           << " mL is below the summed per-device dosing thresholds (" << volume_sum
           << " mL across " << volume_devices.size()
           << " devices) — each command can pass rule 11 while the campaign overfills it "
              "(see I3)";
        emit(Severity::Warning, "CFG10", os.str());
      }
    }
  }

  return report;
}

AnalysisReport lint_recovery_policy(const recovery::RecoveryPolicy& policy) {
  AnalysisReport report;
  for (const recovery::PolicyIssue& issue : recovery::validate(policy)) {
    report.diagnostics.push_back(Diagnostic{
        issue.fatal ? Severity::Error : Severity::Warning, "CFG11", issue.message, 0});
  }
  return report;
}

}  // namespace rabit::analysis
