// rabit::analysis rulebase verifier — static meta-analysis *of the rules*.
//
// Every other pass in this module checks artifacts against the rulebase
// (scripts via A1..A8, configs via CFG1..CFG11, campaigns via I1..I6, shard
// plans via S1..S3). This pass turns the lens around: given an EngineConfig,
// its loaded rulebase parameters (thresholds, bindings, aliases, soft walls,
// multiplex flags) and the deck they govern, it proves properties of the
// rules themselves:
//
//   R1  shadowed / subsumed rule — a stricter rule always fires first,
//       making another dead (duplicate thresholds on one action; a soft
//       wall wholly contained in an earlier wall of the same arm).
//   R2  contradictory guards — no command can satisfy both, yet both claim
//       the same device/action (a soft wall swallowing the arm's own sleep
//       target while time multiplexing demands that arm be asleep).
//   R3  unsatisfiable precondition — the admissible set is empty under the
//       config schema's value domains (a threshold below a non-negative
//       argument domain; an arm whose fixed home/sleep target lies inside
//       its own forbidden wall).
//   R4  dangling reference — a rule parameter names a device, action or
//       site absent from the deck (alias chains to nowhere, walls on
//       unknown arms, sites feeding missing stations).
//   R5  guard-vs-analyzer divergence — the pre-flight analyzer admits what
//       the runtime guard blocks or vice versa, found by a decidable probe
//       sweep over every device x action (generalizing the PR 4
//       differential seed sweep; the known class is alias canonicalization,
//       which the engine applies and the raw-stream analyzer does not).
//   R6  coverage gap — a deck device/action pair no rule constrains (a
//       setpoint binding with no threshold on a doorless, siteless device).
//   R7  threshold-interval overlap — thresholds on an alias and on its
//       canonical action with different maxima, so the verdict depends on
//       whether canonicalization runs before the threshold lookup.
//   R8  provably-unreachable rule — the structural rulebase availability
//       (core::rulebase_availability) cross-checked against the fuzzer's
//       measured coverage map, classifying each dark key as
//       dead-by-construction vs needs-steering (and flagging a stale map
//       that claims coverage of a rule the config cannot fire).
//
// Witnesses are the soundness gate, not prose: every R1/R2/R5/R6/R7 finding
// carries a minimal concrete command sequence, validated against the real
// RabitEngine during synthesis, that reproduces the diagnosed behavior when
// replayed (tests/rulecheck_test.cpp re-replays every one). R3/R4/R8 —
// where no command can exist — carry machine-checkable proof tags instead.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "core/config.hpp"
#include "devices/device.hpp"
#include "json/json.hpp"

namespace rabit::analysis {

// ---------------------------------------------------------------------------
// Witnesses
// ---------------------------------------------------------------------------

/// One step of a counterexample: a concrete command plus the rule the
/// runtime engine is expected to block it with ("" = expected admitted; the
/// replay applies an admitted command's postconditions before the next
/// step, so later steps see the evolved state).
struct WitnessStep {
  dev::Command cmd;
  std::string expect_rule;
};

/// A replayable counterexample for one finding. `analyzer_rule` records the
/// pre-flight analyzer's side of an R5 divergence (the error rule it raises
/// on the same stream, "" when it admits); empty for the other families.
struct RuleWitness {
  std::vector<WitnessStep> steps;
  std::string analyzer_rule;
};

/// Result of replaying a witness through a fresh RabitEngine over `config`
/// (initialize({}), then per step: check_command, and apply_expected when
/// admitted). Confirmed means every step's observed verdict matched its
/// expectation.
struct WitnessReplay {
  bool confirmed = false;
  std::vector<std::string> observed;  ///< blocking rule per step, "" = admitted
  std::string detail;                 ///< first mismatch, human-readable
};

[[nodiscard]] WitnessReplay replay_witness(const core::EngineConfig& config,
                                           const RuleWitness& witness);

[[nodiscard]] json::Value witness_to_json(const RuleWitness& witness);
[[nodiscard]] RuleWitness witness_from_json(const json::Value& doc);

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// One R-diagnostic: the shared Diagnostic shape (rule "R1".."R8", subjects
/// = the devices/actions/walls involved) plus its soundness evidence —
/// exactly one of `witness` (R1/R2/R5/R6/R7: replayable counterexample) or
/// `proof` (R3/R4/R8: machine-checkable tag, e.g.
/// "R3:empty-admissible:pump:dose_solvent:volume:domain=[0,inf):max=-1").
struct RuleFinding {
  Diagnostic diagnostic;
  std::optional<RuleWitness> witness;
  std::string proof;
};

struct RuleCheckOptions {
  /// The fuzzer's measured coverage keys ("rule:G1", "rung:demote", ...) —
  /// feeds R8. Empty skips R8 entirely (the map is owned by src/scenario;
  /// callers with access pass scenario::reachable_coverage()).
  std::vector<std::string> measured_coverage;
};

struct RuleCheckReport {
  std::vector<RuleFinding> findings;  ///< sorted by (rule, subjects, message)

  [[nodiscard]] AnalysisReport as_report() const;  ///< diagnostics only
  [[nodiscard]] bool has_errors() const;
};

/// Runs R1..R8 over `config`. Every witness attached to a finding has
/// already been validated against the runtime engine during synthesis — an
/// unconfirmable candidate is never emitted, so downstream replay gates can
/// demand zero unconfirmed witnesses.
[[nodiscard]] RuleCheckReport check_rules(const core::EngineConfig& config,
                                          const RuleCheckOptions& options = {});

/// Serializes one finding in the shared diagnostic schema plus its
/// evidence: diagnostic_to_json(..) extended with "witness" and/or "proof".
[[nodiscard]] json::Value finding_to_json(const RuleFinding& finding);

/// The rabit_lint --rules --json document: {"findings": [...], "errors": N,
/// "warnings": N, "infos": N}.
[[nodiscard]] json::Value rulecheck_to_json(const RuleCheckReport& report);

}  // namespace rabit::analysis
