// The abstract value lattice: Const ⊑ Range ⊑ Top, with interval arithmetic
// and three-valued comparisons. Kept deliberately simple — the analyzer only
// needs enough precision to decide rule preconditions and loop bounds, and
// anything it cannot decide degrades to Top (reported, never guessed).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <initializer_list>
#include <sstream>

#include "analysis/analysis.hpp"

namespace rabit::analysis {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "unknown";
}

std::string Diagnostic::format() const {
  std::ostringstream os;
  os << "line " << line << ": " << to_string(severity) << " " << rule << " — " << message;
  return os.str();
}

std::size_t AnalysisReport::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == s) ++n;
  }
  return n;
}

json::Value diagnostic_to_json(const Diagnostic& d) {
  json::Object o;
  o["id"] = d.rule;
  o["rule"] = d.rule;  // legacy alias of "id"
  o["severity"] = std::string(to_string(d.severity));
  o["line"] = d.line;
  o["message"] = d.message;
  if (!d.subjects.empty()) {
    json::Array subjects;
    for (const std::string& s : d.subjects) subjects.emplace_back(s);
    o["subjects"] = std::move(subjects);
  }
  if (!d.streams.empty()) {
    json::Array streams;
    for (const std::string& s : d.streams) streams.emplace_back(s);
    o["streams"] = std::move(streams);
  }
  return json::Value(std::move(o));
}

json::Value report_to_json(const AnalysisReport& report) {
  json::Array items;
  for (const Diagnostic& d : report.diagnostics) items.emplace_back(diagnostic_to_json(d));
  json::Object root;
  root["diagnostics"] = std::move(items);
  root["errors"] = report.count(Severity::Error);
  root["warnings"] = report.count(Severity::Warning);
  root["truncated"] = report.truncated;
  return json::Value(std::move(root));
}

AnalysisReport sorted_for_emission(const AnalysisReport& report) {
  AnalysisReport sorted = report;
  std::stable_sort(sorted.diagnostics.begin(), sorted.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.rule != b.rule) return a.rule < b.rule;
                     if (a.streams != b.streams) return a.streams < b.streams;
                     if (a.line != b.line) return a.line < b.line;
                     if (a.severity != b.severity) {
                       return static_cast<int>(a.severity) < static_cast<int>(b.severity);
                     }
                     return a.message < b.message;
                   });
  return sorted;
}

// ---------------------------------------------------------------------------
// AbstractValue
// ---------------------------------------------------------------------------

AbstractValue AbstractValue::make_const(json::Value v) {
  AbstractValue a;
  a.kind = Kind::Const;
  a.constant = std::move(v);
  return a;
}

AbstractValue AbstractValue::make_range(double lo, double hi) {
  if (lo > hi) std::swap(lo, hi);
  if (lo == hi) return make_const(json::Value(lo));
  AbstractValue a;
  a.kind = Kind::Range;
  a.lo = lo;
  a.hi = hi;
  return a;
}

AbstractValue AbstractValue::top() { return AbstractValue{}; }

AbstractValue AbstractValue::device_ref(std::string id) {
  AbstractValue a;
  a.kind = Kind::Const;
  a.device = std::move(id);
  return a;
}

bool AbstractValue::numeric_bounds(double& out_lo, double& out_hi) const {
  if (kind == Kind::Range) {
    out_lo = lo;
    out_hi = hi;
    return true;
  }
  if (kind == Kind::Const && constant.is_number()) {
    out_lo = out_hi = constant.as_double();
    return true;
  }
  return false;
}

std::optional<bool> AbstractValue::truth() const {
  if (kind != Kind::Const) return std::nullopt;
  if (!device.empty()) return true;
  if (constant.is_bool()) return constant.as_bool();
  if (constant.is_number()) return constant.as_double() != 0.0;
  if (constant.is_null()) return false;
  if (constant.is_string()) return !constant.as_string().empty();
  return true;  // arrays/objects are truthy
}

namespace {

AbstractValue range_of(std::initializer_list<double> candidates) {
  double lo = *candidates.begin();
  double hi = lo;
  for (double c : candidates) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  if (!std::isfinite(lo) || !std::isfinite(hi)) return AbstractValue::top();
  return AbstractValue::make_range(lo, hi);
}

AbstractValue numeric_binary(const std::string& op, double alo, double ahi, double blo,
                             double bhi) {
  if (op == "+") return range_of({alo + blo, ahi + bhi});
  if (op == "-") return range_of({alo - bhi, ahi - blo});
  if (op == "*") return range_of({alo * blo, alo * bhi, ahi * blo, ahi * bhi});
  if (op == "/") {
    if (blo <= 0.0 && bhi >= 0.0) return AbstractValue::top();  // may divide by 0
    return range_of({alo / blo, alo / bhi, ahi / blo, ahi / bhi});
  }
  if (op == "%") {
    if (blo == bhi && alo == ahi && blo != 0.0) {
      return AbstractValue::make_const(json::Value(std::fmod(alo, blo)));
    }
    return AbstractValue::top();
  }

  // Comparisons: decided when the intervals do not straddle the boundary.
  auto decided = [](bool v) { return AbstractValue::make_const(json::Value(v)); };
  if (op == "<") {
    if (ahi < blo) return decided(true);
    if (alo >= bhi) return decided(false);
    return AbstractValue::top();
  }
  if (op == "<=") {
    if (ahi <= blo) return decided(true);
    if (alo > bhi) return decided(false);
    return AbstractValue::top();
  }
  if (op == ">") {
    if (alo > bhi) return decided(true);
    if (ahi <= blo) return decided(false);
    return AbstractValue::top();
  }
  if (op == ">=") {
    if (alo >= bhi) return decided(true);
    if (ahi < blo) return decided(false);
    return AbstractValue::top();
  }
  if (op == "==") {
    if (alo == ahi && blo == bhi) return decided(alo == blo);
    if (ahi < blo || bhi < alo) return decided(false);
    return AbstractValue::top();
  }
  if (op == "!=") {
    if (alo == ahi && blo == bhi) return decided(alo != blo);
    if (ahi < blo || bhi < alo) return decided(true);
    return AbstractValue::top();
  }
  return AbstractValue::top();
}

}  // namespace

AbstractValue abstract_binary(const std::string& op, const AbstractValue& lhs,
                              const AbstractValue& rhs) {
  // Logical connectives are three-valued.
  if (op == "and" || op == "or") {
    std::optional<bool> lt = lhs.truth();
    std::optional<bool> rt = rhs.truth();
    if (op == "and") {
      if (lt.has_value() && !*lt) return AbstractValue::make_const(json::Value(false));
      if (rt.has_value() && !*rt) return AbstractValue::make_const(json::Value(false));
      if (lt.has_value() && rt.has_value()) {
        return AbstractValue::make_const(json::Value(*lt && *rt));
      }
    } else {
      if (lt.has_value() && *lt) return AbstractValue::make_const(json::Value(true));
      if (rt.has_value() && *rt) return AbstractValue::make_const(json::Value(true));
      if (lt.has_value() && rt.has_value()) {
        return AbstractValue::make_const(json::Value(*lt || *rt));
      }
    }
    return AbstractValue::top();
  }

  // Exact equality over constants of any type.
  if ((op == "==" || op == "!=") && lhs.is_const() && rhs.is_const() &&
      !lhs.constant.is_number() && !rhs.constant.is_number()) {
    bool eq = lhs.device.empty() && rhs.device.empty() ? lhs.constant == rhs.constant
                                                       : lhs.device == rhs.device;
    return AbstractValue::make_const(json::Value(op == "==" ? eq : !eq));
  }

  double alo = 0.0, ahi = 0.0, blo = 0.0, bhi = 0.0;
  if (lhs.numeric_bounds(alo, ahi) && rhs.numeric_bounds(blo, bhi)) {
    // Two exact constants: fold precisely (preserves integers for + - *).
    if (alo == ahi && blo == bhi && (op == "+" || op == "-" || op == "*")) {
      double r = op == "+" ? alo + blo : op == "-" ? alo - blo : alo * blo;
      return AbstractValue::make_const(json::Value(r));
    }
    return numeric_binary(op, alo, ahi, blo, bhi);
  }

  // String concatenation mirrors the runtime interpreter.
  if (op == "+" && lhs.is_const() && rhs.is_const() && lhs.constant.is_string() &&
      rhs.constant.is_string()) {
    return AbstractValue::make_const(
        json::Value(lhs.constant.as_string() + rhs.constant.as_string()));
  }
  return AbstractValue::top();
}

}  // namespace rabit::analysis
