#include "analysis/rulecheck.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/rules.hpp"
#include "core/tracker.hpp"

namespace rabit::analysis {

using core::DeviceMeta;
using core::EngineConfig;
using core::SiteMeta;
using core::SoftWallSpec;
using core::ThresholdSpec;
using core::ValueBinding;

namespace {

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

dev::Command make_cmd(std::string device, std::string action, json::Object args = {}) {
  dev::Command cmd;
  cmd.device = std::move(device);
  cmd.action = std::move(action);
  cmd.args = json::Value(std::move(args));
  return cmd;
}

json::Array vec_to_json(const geom::Vec3& v) {
  json::Array a;
  a.emplace_back(v.x);
  a.emplace_back(v.y);
  a.emplace_back(v.z);
  return a;
}

std::string fmt_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

bool aabb_contains_aabb(const geom::Aabb& outer, const geom::Aabb& inner) {
  return outer.min.x <= inner.min.x && outer.min.y <= inner.min.y &&
         outer.min.z <= inner.min.z && inner.max.x <= outer.max.x &&
         inner.max.y <= outer.max.y && inner.max.z <= outer.max.z;
}

/// The runtime rulebase ids — the vocabulary R5 compares across the two
/// evaluation paths (A-rules are analyzer-only by design and never count as
/// a divergence).
bool is_runtime_rule(const std::string& rule) {
  static const std::set<std::string> kRuntime = {
      "G1", "G2", "G3", "G4", "G5", "G6", "G7", "G8", "G9", "G10",
      "G11", "C1", "C2", "C3", "C4", "M1", "M2", "S1"};
  return kRuntime.contains(rule);
}

/// Arguments whose physical domain is provably non-negative (amounts,
/// volumes, rates, durations) — the value domains R3 evaluates threshold
/// intervals against. Temperatures are deliberately absent: Celsius is
/// signed.
bool non_negative_domain(const std::string& argument) {
  static const std::set<std::string> kNonNegative = {
      "volume", "quantity", "ml", "mg", "rpm", "duration", "seconds", "speed"};
  return kNonNegative.contains(argument);
}

/// Table II rows whose precondition column is "none": an unconstrained
/// probe on these is the documented design, not an R6 coverage gap.
bool unconstrained_by_design(const std::string& action) {
  static const std::set<std::string> kFree = {"stop", "stop_action", "stop_spin", "status",
                                              "decap", "recap"};
  return kFree.contains(action);
}

const ThresholdSpec* find_threshold(const DeviceMeta& meta, const std::string& action) {
  for (const ThresholdSpec& t : meta.thresholds) {
    if (t.action == action) return &t;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Probe synthesis — one representative concrete command per device/action,
// shared by the R5 sweep and the witness builders.
// ---------------------------------------------------------------------------

std::optional<json::Object> synth_args(const EngineConfig& config, const DeviceMeta& meta,
                                       const std::string& canonical) {
  json::Object args;
  if (meta.is_arm) {
    if (canonical == "move_to") {
      // Arm-frame coordinates of the configured home target: reachable by
      // construction, collision status decided identically on both paths.
      geom::Vec3 local = meta.base.inverse().apply(meta.home_position_lab);
      args["position"] = json::Value(vec_to_json(local));
      return args;
    }
    if (canonical == "go_home" || canonical == "go_sleep" || canonical == "open_gripper" ||
        canonical == "close_gripper") {
      return args;
    }
    if (canonical == "pick_object" || canonical == "place_object") {
      for (const SiteMeta& s : config.sites) {
        if (s.is_grid_slot()) {
          args["site"] = s.name;
          return args;
        }
      }
      if (!config.sites.empty()) {
        args["site"] = config.sites.front().name;
        return args;
      }
      return std::nullopt;
    }
    return std::nullopt;
  }

  if (canonical == "set_door") {
    args["state"] = std::string("open");
    if (!meta.multi_doors.empty()) args["door"] = meta.multi_doors.front().name;
    return args;
  }
  if (canonical == "dose_solvent") {
    for (const DeviceMeta& d : config.devices) {
      if (d.category == dev::DeviceCategory::Container) {
        args["target"] = d.id;
        args["volume"] = 0.1;
        return args;
      }
    }
    return std::nullopt;
  }
  if (canonical == "draw_solvent") {
    args["volume"] = 0.1;
    return args;
  }
  if (canonical == "run_action") {
    args["quantity"] = 1.0;
    return args;
  }
  for (const ValueBinding& b : meta.value_bindings) {
    if (b.action == canonical) {
      // Probe above any threshold on the canonical action: a guarded probe
      // blocks G11 identically on both paths, while an alias issued with the
      // raw name exposes the engine/analyzer divergence (R5).
      const ThresholdSpec* t = find_threshold(meta, canonical);
      args[b.argument] = t ? t->max + 1.0 : 1.0;
      return args;
    }
  }
  // Thresholded actions without a binding still probe above the limit so
  // the guard actually decides something on both paths.
  if (const ThresholdSpec* t = find_threshold(meta, canonical)) {
    args[t->argument] = t->max + 1.0;
    return args;
  }
  // Remaining vocabulary actions (stop, status, active actions without a
  // bound argument, ...) probe with no arguments.
  return args;
}

// ---------------------------------------------------------------------------
// Witness validation during synthesis
// ---------------------------------------------------------------------------

/// Validates a candidate witness against the real engine; only confirmed
/// candidates become evidence (the differential gate downstream demands
/// zero unconfirmed witnesses, so an unconfirmable candidate suppresses its
/// finding rather than shipping prose).
bool validate(const EngineConfig& config, const RuleWitness& witness) {
  return replay_witness(config, witness).confirmed;
}

RuleWitness single_step(dev::Command cmd, std::string expect) {
  RuleWitness w;
  w.steps.push_back(WitnessStep{std::move(cmd), std::move(expect)});
  return w;
}

// ---------------------------------------------------------------------------
// The checks
// ---------------------------------------------------------------------------

struct Emitter {
  const EngineConfig& config;
  std::vector<RuleFinding>& findings;

  void emit(Severity severity, std::string rule, std::string message,
            std::vector<std::string> subjects, std::optional<RuleWitness> witness,
            std::string proof) {
    RuleFinding f;
    f.diagnostic.severity = severity;
    f.diagnostic.rule = std::move(rule);
    f.diagnostic.message = std::move(message);
    f.diagnostic.line = 0;
    f.diagnostic.subjects = std::move(subjects);
    f.witness = std::move(witness);
    f.proof = std::move(proof);
    findings.push_back(std::move(f));
  }

  void witness_finding(Severity severity, std::string rule, std::string message,
                       std::vector<std::string> subjects, RuleWitness witness) {
    if (!validate(config, witness)) return;  // witness-or-silent: no prose-only findings
    emit(severity, std::move(rule), std::move(message), std::move(subjects), std::move(witness),
         "");
  }

  void proof_finding(Severity severity, std::string rule, std::string message,
                     std::vector<std::string> subjects, std::string proof) {
    emit(severity, std::move(rule), std::move(message), std::move(subjects), std::nullopt,
         std::move(proof));
  }
};

// R1a — duplicate thresholds on one action: DeviceMeta::threshold_for is
// first-match by action name, so every later spec is dead.
void check_shadowed_thresholds(Emitter& em) {
  for (const DeviceMeta& d : em.config.devices) {
    for (std::size_t i = 0; i < d.thresholds.size(); ++i) {
      for (std::size_t j = i + 1; j < d.thresholds.size(); ++j) {
        const ThresholdSpec& first = d.thresholds[i];
        const ThresholdSpec& second = d.thresholds[j];
        if (first.action != second.action) continue;

        std::ostringstream msg;
        msg << "device '" << d.id << "' declares two thresholds on action '" << first.action
            << "' (" << first.argument << " <= " << first.max << " and " << second.argument
            << " <= " << second.max
            << "): threshold lookup is first-match, the second is dead";

        // A value distinguishing the live threshold from the dead one.
        RuleWitness candidate;
        if (first.max < second.max) {
          // Engine blocks what the dead spec would admit.
          double v = second.max;
          json::Object args;
          args[first.argument] = v;
          candidate = single_step(make_cmd(d.id, first.action, std::move(args)), "G11");
        } else if (first.max > second.max) {
          // Engine admits what the dead spec claims to block.
          double v = first.max;
          json::Object args;
          args[first.argument] = v;
          if (second.argument != first.argument) args[second.argument] = second.max + 1.0;
          candidate = single_step(make_cmd(d.id, first.action, std::move(args)), "");
        } else {
          // Identical bound: the duplicate is redundant; both block above it.
          json::Object args;
          args[first.argument] = first.max + 1.0;
          candidate = single_step(make_cmd(d.id, first.action, std::move(args)), "G11");
        }
        if (!validate(em.config, candidate)) {
          // Another rule pre-empts the admitted direction; fall back to the
          // always-demonstrable blocked direction (G11 runs first).
          json::Object args;
          args[first.argument] = std::max(first.max, second.max) + 1.0;
          candidate = single_step(make_cmd(d.id, first.action, std::move(args)), "G11");
        }
        em.witness_finding(Severity::Error, "R1", msg.str(), {d.id, first.action},
                           std::move(candidate));
      }
    }
  }
}

// R1b — a soft wall wholly contained in another wall of the same arm can
// never be the deciding rule: the outer wall subsumes it.
void check_shadowed_walls(Emitter& em) {
  const auto& walls = em.config.soft_walls;
  for (std::size_t i = 0; i < walls.size(); ++i) {
    for (std::size_t j = 0; j < walls.size(); ++j) {
      if (i == j) continue;
      if (walls[i].arm_id != walls[j].arm_id) continue;
      if (!aabb_contains_aabb(walls[i].forbidden, walls[j].forbidden)) continue;
      // Equal boxes contain each other; report the later duplicate once.
      if (aabb_contains_aabb(walls[j].forbidden, walls[i].forbidden) && j < i) continue;

      const DeviceMeta* arm = em.config.find_device(walls[i].arm_id);
      if (arm == nullptr || !arm->is_arm) continue;  // R4's finding, not R1's
      std::ostringstream msg;
      msg << "soft wall " << j << " for arm '" << walls[j].arm_id
          << "' lies entirely inside soft wall " << i
          << ": the outer wall subsumes it, the inner wall is dead";

      geom::Vec3 local = arm->base.inverse().apply(walls[j].forbidden.center());
      json::Object args;
      args["position"] = json::Value(vec_to_json(local));
      em.witness_finding(Severity::Error, "R1", msg.str(),
                         {walls[j].arm_id, "soft_wall[" + std::to_string(j) + "]"},
                         single_step(make_cmd(walls[j].arm_id, "move_to", std::move(args)),
                                     "M2"));
    }
  }
}

// R2 — contradictory guards: time multiplexing (M1) demands every other arm
// be asleep before any motion, while a soft wall swallowing this arm's own
// sleep target (M2) forbids it from ever going to sleep. Once the arm is
// awake, no command sequence satisfies both rule families again.
void check_contradictory_guards(Emitter& em) {
  const EngineConfig& config = em.config;
  if (!config.time_multiplex || config.variant == core::Variant::Initial) return;

  std::vector<const DeviceMeta*> arms;
  for (const DeviceMeta& d : config.devices) {
    if (d.is_arm) arms.push_back(&d);
  }
  if (arms.size() < 2) return;  // M1 has nothing to demand; R3 covers the wall alone

  for (const SoftWallSpec& w : config.soft_walls) {
    const DeviceMeta* arm = config.find_device(w.arm_id);
    if (arm == nullptr || !arm->is_arm) continue;
    if (!w.forbidden.contains(arm->sleep_position_lab)) continue;

    const DeviceMeta* other = nullptr;
    for (const DeviceMeta* a : arms) {
      if (a->id != arm->id) {
        other = a;
        break;
      }
    }
    std::ostringstream msg;
    msg << "contradictory guards on arm '" << arm->id
        << "': its soft wall contains its own sleep target, so M2 blocks go_sleep while "
           "time multiplexing (M1) blocks every other arm until it sleeps — once awake, no "
           "command satisfies both";

    RuleWitness candidate;
    candidate.steps.push_back(WitnessStep{make_cmd(arm->id, "go_home"), ""});
    candidate.steps.push_back(WitnessStep{make_cmd(arm->id, "go_sleep"), "M2"});
    if (other != nullptr) {
      candidate.steps.push_back(WitnessStep{make_cmd(other->id, "go_home"), "M1"});
    }
    if (!validate(config, candidate)) {
      candidate.steps.clear();
      candidate.steps.push_back(WitnessStep{make_cmd(arm->id, "go_sleep"), "M2"});
    }
    em.witness_finding(Severity::Error, "R2", msg.str(), {arm->id, "M1", "M2"},
                       std::move(candidate));
  }
}

// R3 — unsatisfiable preconditions: admissible sets that are empty under
// the argument value domains, and fixed motion targets inside the arm's own
// forbidden region. No command can exist, so the evidence is a proof tag.
void check_unsatisfiable(Emitter& em) {
  const EngineConfig& config = em.config;
  for (const DeviceMeta& d : config.devices) {
    for (const ThresholdSpec& t : d.thresholds) {
      if (t.max < 0.0 && non_negative_domain(t.argument)) {
        std::ostringstream msg;
        msg << "device '" << d.id << "' threshold " << t.action << "." << t.argument
            << " <= " << t.max << " admits nothing: the argument's domain is [0,inf)";
        em.proof_finding(Severity::Error, "R3", msg.str(), {d.id, t.action},
                         "R3:empty-admissible:" + d.id + ":" + t.action + ":" + t.argument +
                             ":domain=[0,inf):max=" + fmt_number(t.max));
      }
    }
  }
  for (const SoftWallSpec& w : config.soft_walls) {
    const DeviceMeta* arm = config.find_device(w.arm_id);
    if (arm == nullptr || !arm->is_arm) continue;
    if (config.variant == core::Variant::Initial) continue;  // M2 is V2+
    struct Fixed {
      const char* pose;
      const char* action;
      geom::Vec3 target;
    };
    for (const Fixed& f : {Fixed{"home", "go_home", arm->home_position_lab},
                           Fixed{"sleep", "go_sleep", arm->sleep_position_lab}}) {
      if (!w.forbidden.contains(f.target)) continue;
      std::ostringstream msg;
      msg << "arm '" << arm->id << "' " << f.pose
          << " target lies inside its own soft wall: " << f.action
          << " can never satisfy M2";
      em.proof_finding(Severity::Error, "R3", msg.str(), {arm->id, f.action},
                       std::string("R3:fixed-target-in-wall:") + arm->id + ":" + f.pose);
    }
  }
}

// R4 — rule parameters referencing things absent from the deck. Nothing to
// replay (the reference resolves to nothing), so evidence is a proof tag.
void check_dangling_references(Emitter& em) {
  const EngineConfig& config = em.config;
  for (const DeviceMeta& d : config.devices) {
    std::vector<std::string> vocabulary = core::dispatchable_actions(d);
    auto in_vocab = [&vocabulary](const std::string& a) {
      return std::binary_search(vocabulary.begin(), vocabulary.end(), a);
    };
    for (const auto& [alias, canonical] : d.action_aliases) {
      if (in_vocab(canonical)) continue;
      std::ostringstream msg;
      msg << "device '" << d.id << "' alias '" << alias << "' resolves to '" << canonical
          << "', which no rule or binding dispatches: commands through the alias are "
             "silently unconstrained";
      em.proof_finding(Severity::Warning, "R4", msg.str(), {d.id, alias},
                       "R4:alias-to-unknown:" + d.id + ":" + alias + "->" + canonical);
    }
    for (const ThresholdSpec& t : d.thresholds) {
      bool aliased = std::any_of(d.action_aliases.begin(), d.action_aliases.end(),
                                 [&t](const auto& a) { return a.first == t.action; });
      if (in_vocab(t.action) || aliased) continue;
      std::ostringstream msg;
      msg << "device '" << d.id << "' threshold on action '" << t.action
          << "' guards an action absent from the deck vocabulary";
      em.proof_finding(Severity::Warning, "R4", msg.str(), {d.id, t.action},
                       "R4:threshold-on-unknown-action:" + d.id + ":" + t.action);
    }
  }
  for (std::size_t i = 0; i < config.soft_walls.size(); ++i) {
    const SoftWallSpec& w = config.soft_walls[i];
    const DeviceMeta* arm = config.find_device(w.arm_id);
    if (arm != nullptr && arm->is_arm) continue;
    std::ostringstream msg;
    msg << "soft wall " << i << " names arm '" << w.arm_id << "', which is "
        << (arm == nullptr ? "absent from the deck" : "not a robot arm")
        << ": the wall guards nothing";
    em.proof_finding(Severity::Error, "R4", msg.str(), {w.arm_id},
                     "R4:wall-on-unknown-arm:" + w.arm_id);
  }
  for (const SiteMeta& s : config.sites) {
    for (const std::string& ref : {s.grid_device, s.receptacle_device}) {
      if (ref.empty() || config.find_device(ref) != nullptr) continue;
      std::ostringstream msg;
      msg << "site '" << s.name << "' references device '" << ref
          << "', which is absent from the deck: every site-scoped rule degrades there";
      em.proof_finding(Severity::Error, "R4", msg.str(), {s.name, ref},
                       "R4:site-to-unknown-device:" + s.name + ":" + ref);
    }
  }
}

// R5 — decidable guard-vs-analyzer divergence sweep. Both paths evaluate
// the same check_preconditions against the same symbolic start state; the
// engine canonicalizes aliases first, the raw-stream analyzer does not.
// Any probe where exactly one side blocks (on a runtime rule) is a
// divergence, and the probe itself is the witness.
void check_divergence(Emitter& em) {
  const EngineConfig& config = em.config;
  core::RabitEngine engine(config);
  engine.initialize({});

  auto analyzer_rule = [&config](const dev::Command& cmd) -> std::string {
    AnalysisReport report = analyze_stream(config, {cmd});
    for (const Diagnostic& diag : report.diagnostics) {
      if (diag.severity == Severity::Error && is_runtime_rule(diag.rule)) return diag.rule;
    }
    return "";
  };

  auto probe = [&](const DeviceMeta& d, const std::string& issued,
                   const std::string& canonical) {
    std::optional<json::Object> args = synth_args(config, d, canonical);
    if (!args) return;
    dev::Command cmd = make_cmd(d.id, issued, std::move(*args));

    std::optional<core::Alert> alert = engine.check_command(cmd);
    std::string engine_rule = alert ? alert->rule : "";
    std::string analyzer = analyzer_rule(cmd);
    if (engine_rule.empty() == analyzer.empty()) return;  // both admit or both block

    std::ostringstream msg;
    msg << "guard-vs-analyzer divergence on " << d.id << "." << issued << ": the runtime "
        << (engine_rule.empty() ? "admits" : "blocks (" + engine_rule + ")")
        << " what the pre-flight analyzer "
        << (analyzer.empty() ? "admits" : "blocks (" + analyzer + ")");
    RuleWitness witness = single_step(cmd, engine_rule);
    witness.analyzer_rule = analyzer;
    em.witness_finding(Severity::Error, "R5", msg.str(), {d.id, issued}, std::move(witness));
  };

  for (const DeviceMeta& d : config.devices) {
    for (const std::string& action : core::dispatchable_actions(d)) {
      probe(d, action, action);
    }
    for (const auto& [alias, canonical] : d.action_aliases) {
      probe(d, alias, canonical);
    }
  }
}

// R6 — coverage gap: a deck device/action pair no rule constrains. The
// structural condition (no threshold, no door, no receptacle) is confirmed
// by an admitted extreme-value probe — if any rule blocks the probe, the
// pair is constrained after all and nothing is emitted.
void check_coverage_gaps(Emitter& em) {
  const EngineConfig& config = em.config;
  auto has_receptacle = [&config](std::string_view device) {
    for (const SiteMeta& s : config.sites) {
      if (s.receptacle_device == device) return true;
    }
    return false;
  };

  for (const DeviceMeta& d : config.devices) {
    if (d.is_arm) continue;  // every arm action funnels through the motion/gripper rules
    bool doored = d.has_door || !d.multi_doors.empty();

    for (const ValueBinding& b : d.value_bindings) {
      if (find_threshold(d, b.action) != nullptr) continue;  // G11 constrains it
      if (d.is_active_action(b.action) && (doored || has_receptacle(d.id))) continue;
      if (unconstrained_by_design(b.action)) continue;
      std::ostringstream msg;
      msg << "no rule constrains " << d.id << "." << b.action << ": the '" << b.argument
          << "' setpoint is written unchecked (no threshold, no structural rule path)";
      json::Object args;
      args[b.argument] = 1.0e6;  // an extreme setpoint the engine still admits
      em.witness_finding(Severity::Warning, "R6", msg.str(), {d.id, b.action},
                         single_step(make_cmd(d.id, b.action, std::move(args)), ""));
    }

    for (const std::string& action : d.active_actions) {
      bool bound = std::any_of(d.value_bindings.begin(), d.value_bindings.end(),
                               [&action](const ValueBinding& b) { return b.action == action; });
      if (bound) continue;  // reported through the binding loop above when unconstrained
      if (doored || has_receptacle(d.id)) continue;  // G5/G6/G9 have a path to it
      if (find_threshold(d, action) != nullptr) continue;
      if (unconstrained_by_design(action)) continue;
      std::ostringstream msg;
      msg << "no rule constrains " << d.id << "." << action
          << ": the device has no door and no receptacle site, so G5/G6/G9 can never fire";
      em.witness_finding(Severity::Warning, "R6", msg.str(), {d.id, action},
                         single_step(make_cmd(d.id, action), ""));
    }
  }
}

// R7 — threshold-interval overlap across an alias boundary: the engine
// canonicalizes then looks up (canonical bound governs), the raw analyzer
// looks up the issued name (alias bound governs). Different maxima make the
// verdict order-dependent inside the gap.
void check_order_dependent_thresholds(Emitter& em) {
  for (const DeviceMeta& d : em.config.devices) {
    for (const auto& [alias, canonical] : d.action_aliases) {
      const ThresholdSpec* on_alias = find_threshold(d, alias);
      const ThresholdSpec* on_canonical = find_threshold(d, canonical);
      if (on_alias == nullptr || on_canonical == nullptr) continue;
      if (on_alias->max == on_canonical->max) continue;

      double lo = std::min(on_alias->max, on_canonical->max);
      double hi = std::max(on_alias->max, on_canonical->max);
      double v = hi;  // inside the gap (lo, hi]: the two bounds disagree
      std::ostringstream msg;
      msg << "device '" << d.id << "' bounds '" << alias << "' (<= " << on_alias->max
          << ") and its canonical '" << canonical << "' (<= " << on_canonical->max
          << ") differently: for values in (" << lo << ", " << hi
          << "] the verdict depends on whether alias canonicalization precedes the "
             "threshold lookup";

      json::Object args;
      args[on_canonical->argument] = v;
      if (on_alias->argument != on_canonical->argument) args[on_alias->argument] = v;
      std::string expect = v > on_canonical->max ? "G11" : "";  // the engine's order wins
      em.witness_finding(Severity::Error, "R7", msg.str(), {d.id, alias, canonical},
                         single_step(make_cmd(d.id, alias, std::move(args)), expect));
    }
  }
}

// R8 — dark-key classification: structural availability vs the measured
// coverage map. Dead-by-construction keys shrink the honest denominator;
// needs-steering keys are fuzzer work; a measured key the config cannot
// fire means the map is stale.
void check_dark_keys(Emitter& em, const std::vector<std::string>& measured) {
  if (measured.empty()) return;
  std::set<std::string> measured_rules;
  for (const std::string& key : measured) {
    if (key.rfind("rule:", 0) == 0) measured_rules.insert(key.substr(5));
  }
  for (const core::RuleAvailability& a : core::rulebase_availability(em.config)) {
    bool covered = measured_rules.contains(a.rule);
    if (covered && !a.reachable) {
      std::ostringstream msg;
      msg << "coverage map claims 'rule:" << a.rule << "' but the config cannot fire it ("
          << a.requirement << "): the measured map is stale for this deck";
      em.proof_finding(Severity::Error, "R8", msg.str(), {a.rule},
                       "R8:stale:" + a.rule + ":missing=" + a.requirement);
    } else if (!covered && !a.reachable) {
      std::ostringstream msg;
      msg << "dark key 'rule:" << a.rule << "' is dead by construction (" << a.requirement
          << "): no command sequence on this deck can fire it";
      em.proof_finding(Severity::Info, "R8", msg.str(), {a.rule},
                       "R8:dead:" + a.rule + ":missing=" + a.requirement);
    } else if (!covered && a.reachable) {
      std::ostringstream msg;
      msg << "dark key 'rule:" << a.rule
          << "' is structurally reachable on this deck: needs fuzzer steering, not a rule "
             "fix";
      em.proof_finding(Severity::Info, "R8", msg.str(), {a.rule}, "R8:steer:" + a.rule);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

WitnessReplay replay_witness(const core::EngineConfig& config, const RuleWitness& witness) {
  core::RabitEngine engine(config);
  engine.initialize({});

  WitnessReplay result;
  result.confirmed = true;
  for (std::size_t i = 0; i < witness.steps.size(); ++i) {
    const WitnessStep& step = witness.steps[i];
    std::optional<core::Alert> alert = engine.check_command(step.cmd);
    std::string observed = alert ? alert->rule : "";
    result.observed.push_back(observed);
    if (observed != step.expect_rule && result.confirmed) {
      result.confirmed = false;
      std::ostringstream os;
      os << "step " << i + 1 << " (" << step.cmd.device << "." << step.cmd.action
         << "): expected " << (step.expect_rule.empty() ? "admitted" : step.expect_rule)
         << ", engine " << (observed.empty() ? "admitted" : "blocked with " + observed);
      result.detail = os.str();
    }
    if (!alert) engine.apply_expected(step.cmd);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

AnalysisReport RuleCheckReport::as_report() const {
  AnalysisReport report;
  for (const RuleFinding& f : findings) report.diagnostics.push_back(f.diagnostic);
  return report;
}

bool RuleCheckReport::has_errors() const {
  return std::any_of(findings.begin(), findings.end(), [](const RuleFinding& f) {
    return f.diagnostic.severity == Severity::Error;
  });
}

RuleCheckReport check_rules(const core::EngineConfig& config, const RuleCheckOptions& options) {
  RuleCheckReport report;
  Emitter em{config, report.findings};
  check_shadowed_thresholds(em);
  check_shadowed_walls(em);
  check_contradictory_guards(em);
  check_unsatisfiable(em);
  check_dangling_references(em);
  check_divergence(em);
  check_coverage_gaps(em);
  check_order_dependent_thresholds(em);
  check_dark_keys(em, options.measured_coverage);

  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const RuleFinding& a, const RuleFinding& b) {
                     if (a.diagnostic.rule != b.diagnostic.rule) {
                       return a.diagnostic.rule < b.diagnostic.rule;
                     }
                     if (a.diagnostic.subjects != b.diagnostic.subjects) {
                       return a.diagnostic.subjects < b.diagnostic.subjects;
                     }
                     return a.diagnostic.message < b.diagnostic.message;
                   });
  return report;
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

json::Value witness_to_json(const RuleWitness& witness) {
  json::Object root;
  json::Array steps;
  for (const WitnessStep& step : witness.steps) {
    json::Object s;
    s["device"] = step.cmd.device;
    s["action"] = step.cmd.action;
    s["args"] = step.cmd.args;
    s["expect"] = step.expect_rule;
    steps.emplace_back(std::move(s));
  }
  root["steps"] = json::Value(std::move(steps));
  if (!witness.analyzer_rule.empty()) root["analyzer"] = witness.analyzer_rule;
  return json::Value(std::move(root));
}

RuleWitness witness_from_json(const json::Value& doc) {
  RuleWitness witness;
  const json::Object& root = doc.as_object();
  for (const json::Value& s : root.at("steps").as_array()) {
    const json::Object& step = s.as_object();
    WitnessStep out;
    out.cmd.device = step.at("device").as_string();
    out.cmd.action = step.at("action").as_string();
    out.cmd.args = step.at("args");
    out.expect_rule = step.at("expect").as_string();
    witness.steps.push_back(std::move(out));
  }
  if (const json::Value* analyzer = doc.find("analyzer")) {
    witness.analyzer_rule = analyzer->as_string();
  }
  return witness;
}

json::Value finding_to_json(const RuleFinding& finding) {
  json::Value doc = diagnostic_to_json(finding.diagnostic);
  json::Object& obj = doc.as_object();
  if (finding.witness) obj["witness"] = witness_to_json(*finding.witness);
  if (!finding.proof.empty()) obj["proof"] = finding.proof;
  return doc;
}

json::Value rulecheck_to_json(const RuleCheckReport& report) {
  json::Object root;
  json::Array findings;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;
  for (const RuleFinding& f : report.findings) {
    findings.emplace_back(finding_to_json(f));
    switch (f.diagnostic.severity) {
      case Severity::Error: ++errors; break;
      case Severity::Warning: ++warnings; break;
      case Severity::Info: ++infos; break;
    }
  }
  root["findings"] = json::Value(std::move(findings));
  root["errors"] = static_cast<std::int64_t>(errors);
  root["warnings"] = static_cast<std::int64_t>(warnings);
  root["infos"] = static_cast<std::int64_t>(infos);
  return json::Value(std::move(root));
}

}  // namespace rabit::analysis
