// Summary-based static race detection over fleet campaigns. Phase 1 rides
// the abstract interpreter's observe_command hook to fold every observed
// device command into a per-stream effect summary; phase 2 checks summaries
// pairwise (I1/I2/I4/I5) and campaign-wide (I3/I6). See interference.hpp for
// the soundness model.
#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>

#include "analysis/interference.hpp"
#include "core/rules.hpp"
#include "core/tracker.hpp"
#include "sim/world.hpp"

namespace rabit::analysis {

namespace {

using core::DeviceMeta;
using core::EngineConfig;
using core::SiteMeta;
using core::ThresholdSpec;
using core::ValueBinding;
using dev::Command;

std::string fmt_num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

const SiteMeta* receptacle_site_of(const EngineConfig& config, std::string_view device) {
  for (const SiteMeta& s : config.sites) {
    if (s.receptacle_device == device) return &s;
  }
  return nullptr;
}

/// The configured deck envelope (same union the A4 check uses): the fallback
/// occupancy for an arm whose motion target cannot be resolved statically.
std::optional<geom::Aabb> deck_envelope(const EngineConfig& config) {
  std::optional<geom::Aabb> env;
  auto extend = [&env](const geom::Aabb& box) { env = env ? env->united(box) : box; };
  for (const sim::NamedBox& b : config.static_obstacles) extend(b.box);
  for (const DeviceMeta& d : config.devices) {
    if (d.box) extend(*d.box);
    if (d.sleep_box) extend(*d.sleep_box);
    if (d.sensor_zone) extend(*d.sensor_zone);
  }
  for (const SiteMeta& s : config.sites) extend(geom::Aabb(s.lab_position, s.lab_position));
  return env;
}

/// Actions whose thresholded argument is *additive* across commands —
/// repeated doses accumulate in the same container, so their campaign-wide
/// sum is meaningful (I6). Setpoint-style thresholds (set_temperature, stir)
/// overwrite rather than accumulate and are excluded.
bool is_additive_action(std::string_view action) {
  return action == "run_action" || action == "dose_solvent" || action == "draw_solvent" ||
         action == "add_solid" || action == "add_liquid";
}

/// One named argument of an observed command, as an interval when statically
/// known: a constant folds to a point, an unresolved argument contributes its
/// abstract interval, Top is "present but unbounded".
struct ArgBounds {
  bool present = false;
  bool bounded = false;
  double lo = 0.0;
  double hi = 0.0;
};

ArgBounds arg_bounds(const CommandObservation& obs, std::string_view name) {
  ArgBounds out;
  if (const json::Value* v = obs.cmd->args.find(name); v != nullptr && v->is_number()) {
    out.present = out.bounded = true;
    out.lo = out.hi = v->as_double();
    return out;
  }
  if (obs.unresolved != nullptr) {
    for (const auto& [arg, value] : *obs.unresolved) {
      if (arg != name) continue;
      out.present = true;
      out.bounded = value.numeric_bounds(out.lo, out.hi);
      return out;
    }
  }
  return out;
}

const std::string* arg_string(const CommandObservation& obs, std::string_view name) {
  const json::Value* v = obs.cmd->args.find(name);
  return v != nullptr && v->is_string() ? &v->as_string() : nullptr;
}

// ---------------------------------------------------------------------------
// Phase 1 — effect accumulation
// ---------------------------------------------------------------------------

/// Folds CommandObservations into a StreamSummary. Mirrors the tracker's
/// postcondition model (tracker.cpp) as a may-analysis: where the tracker
/// sets a value, the summary accumulates an interval; where an argument is
/// statically unknown the summary widens (and records truncation) rather
/// than guessing.
class EffectAccumulator {
 public:
  EffectAccumulator(const EngineConfig& config, const AnalyzeOptions& opts, std::string name)
      : config_(config), opts_(opts) {
    sum_.name = std::move(name);
  }

  StreamSummary take() { return std::move(sum_); }

  void observe(const CommandObservation& obs) {
    const Command& cmd = *obs.cmd;
    const DeviceMeta* meta = config_.find_device(cmd.device);
    std::string action =
        meta != nullptr ? std::string(meta->canonical_action(cmd.action)) : cmd.action;

    DeviceFootprint& fp = sum_.devices[cmd.device];
    fp.actions.insert(action);
    ++fp.commands;
    fp.speculative = fp.speculative || obs.speculative;
    if (meta == nullptr) return;  // unknown device: G3 fires identically solo

    record_threshold_total(obs, *meta, action);
    record_setpoints(obs, *meta, action);
    record_resources(obs, *meta, action);
    record_entities(obs, *meta, action);
    if (meta->is_arm && core::is_motion_command(cmd)) record_motion(obs, *meta);
  }

 private:
  void touch_entity(const std::string& entity, const std::string& via) {
    sum_.entities[entity].via.insert(via);
  }

  void touch_site(const SiteMeta& site, const std::string& via,
                  const core::StateTracker& tracker) {
    touch_entity(site.name, via);
    std::string occupant = tracker.site_occupant(site.name);
    if (!occupant.empty()) touch_entity(occupant, via);
  }

  void record_threshold_total(const CommandObservation& obs, const DeviceMeta& meta,
                              const std::string& action) {
    const ThresholdSpec* th = meta.threshold_for(action);
    if (th == nullptr || !is_additive_action(action)) return;
    ArgBounds b = arg_bounds(obs, th->argument);
    if (!b.present) return;
    if (b.bounded) {
      sum_.threshold_totals[meta.id][action].accumulate(b.lo, b.hi);
    } else {
      sum_.truncated = true;  // Top-valued dose: the campaign total is unbounded
    }
  }

  void record_setpoints(const CommandObservation& obs, const DeviceMeta& meta,
                        const std::string& action) {
    constexpr double kUnbounded = std::numeric_limits<double>::infinity();
    auto write = [&](const std::string& variable, std::string_view argument) {
      ArgBounds b = arg_bounds(obs, argument);
      if (!b.present) return;
      if (b.bounded) {
        sum_.setpoints[meta.id][variable].unite(b.lo, b.hi);
      } else {
        sum_.setpoints[meta.id][variable].unite(-kUnbounded, kUnbounded);
        sum_.truncated = true;
      }
    };
    if (action == "set_temperature") write("targetC", "celsius");
    if (action == "stir") write("stirRpm", "rpm");
    if (action == "shake") write("shakeRpm", "rpm");
    for (const ValueBinding& vb : meta.value_bindings) {
      if (vb.action == action) write(vb.variable, vb.argument);
    }
  }

  /// Signed mass/volume deltas, following the tracker's substance model:
  /// run_action doses the receptacle occupant, dose_solvent moves liquid
  /// pump -> target vial, draw_solvent fills the pump, add_solid/add_liquid
  /// act on the container directly.
  void record_resources(const CommandObservation& obs, const DeviceMeta& meta,
                        const std::string& action) {
    auto delta = [&](std::map<std::string, Interval>& table, const std::string& key,
                     std::string_view argument, double sign) {
      ArgBounds b = arg_bounds(obs, argument);
      if (!b.present) return;
      if (b.bounded) {
        table[key].accumulate(sign * (sign < 0 ? b.hi : b.lo), sign * (sign < 0 ? b.lo : b.hi));
      } else {
        sum_.truncated = true;
      }
    };
    if (action == "run_action") {
      if (const SiteMeta* site = receptacle_site_of(config_, meta.id)) {
        std::string occupant = obs.tracker->site_occupant(site->name);
        delta(sum_.mass_delta_mg, occupant.empty() ? site->name : occupant, "quantity", +1.0);
      }
    } else if (action == "dose_solvent") {
      delta(sum_.volume_delta_ml, meta.id, "volume", -1.0);
      if (const std::string* target = arg_string(obs, "target")) {
        delta(sum_.volume_delta_ml, *target, "volume", +1.0);
      }
    } else if (action == "draw_solvent") {
      delta(sum_.volume_delta_ml, meta.id, "volume", +1.0);
    } else if (action == "add_solid") {
      delta(sum_.mass_delta_mg, meta.id, "amount", +1.0);
    } else if (action == "add_liquid") {
      delta(sum_.volume_delta_ml, meta.id, "volume", +1.0);
    }
  }

  /// Shared entities the command acts on beyond the commanded device: sites
  /// named by arguments, their tracked occupants, the vial a dose targets,
  /// the receptacle feeding a station, and whatever the arm currently holds.
  void record_entities(const CommandObservation& obs, const DeviceMeta& meta,
                       const std::string& action) {
    // A directly commanded container (cap/decap a vial) is itself a shared
    // entity: arms carry it and stations dose it under other names.
    if (meta.category == dev::DeviceCategory::Container) touch_entity(meta.id, meta.id);
    if (const std::string* site_name = arg_string(obs, "site")) {
      if (const SiteMeta* site = config_.find_site(*site_name)) {
        touch_site(*site, meta.id, *obs.tracker);
      }
    }
    if (const std::string* target = arg_string(obs, "target")) {
      if (config_.find_device(*target) != nullptr) touch_entity(*target, meta.id);
    }
    if (!meta.is_arm) {
      if (const SiteMeta* site = receptacle_site_of(config_, meta.id)) {
        // Only substance-affecting actions reach into the chamber; door and
        // query actions do not contend for the occupant.
        if (action == "run_action" || meta.is_active_action(action)) {
          touch_site(*site, meta.id, *obs.tracker);
        }
      }
      return;
    }
    std::string held = obs.tracker->arm_holding(meta.id);
    if (!held.empty()) touch_entity(held, meta.id);
  }

  void record_motion(const CommandObservation& obs, const DeviceMeta& meta) {
    std::optional<core::MotionAnalysis> motion;
    try {
      motion = core::analyze_motion(config_, *obs.tracker, *obs.cmd);
    } catch (const std::exception&) {
      motion = std::nullopt;  // malformed/unresolved position argument
    }
    if (motion && !motion->waypoints.empty()) {
      geom::Aabb env(motion->waypoints.front(), motion->waypoints.front());
      for (const geom::Vec3& p : motion->waypoints) env = env.united(geom::Aabb(p, p));
      env = env.united(geom::Aabb(motion->target_lab, motion->target_lab));
      // A3 frame-calibration slack plus the held-object drop: the same
      // margins under which the single-stream checks call a pose unsafe.
      env = env.inflated(opts_.parked_arm_margin + motion->held_clearance);
      unite_envelope(meta.id, env);
      for (const std::string& ig : motion->ignores) {
        // analyze_motion always lists the arm itself (its parked cuboid is
        // not an obstacle for its own motion) — that is not an interaction.
        if (ig != meta.id) sum_.ignores[meta.id].insert(ig);
      }
      if (const SiteMeta* site = config_.site_near(motion->target_lab)) {
        touch_site(*site, meta.id, *obs.tracker);
      }
    } else {
      // Unresolvable target: the arm may occupy anywhere in the configured
      // workspace (A4 margin). Sound, maximally imprecise — and flagged.
      if (std::optional<geom::Aabb> ws = deck_envelope(config_)) {
        unite_envelope(meta.id, ws->inflated(opts_.workspace_margin));
      }
      sum_.truncated = true;
    }
  }

  void unite_envelope(const std::string& arm, const geom::Aabb& box) {
    auto [it, inserted] = sum_.arm_envelopes.emplace(arm, box);
    if (!inserted) it->second = it->second.united(box);
  }

  const EngineConfig& config_;
  const AnalyzeOptions& opts_;
  StreamSummary sum_;
};

// ---------------------------------------------------------------------------
// Phase 2 — pairwise and campaign-wide checks
// ---------------------------------------------------------------------------

class InterferenceChecker {
 public:
  InterferenceChecker(const EngineConfig& config, const std::vector<StreamSummary>& streams,
                      const AnalyzeOptions& opts)
      : config_(config), streams_(streams), opts_(opts) {}

  AnalysisReport run() {
    for (const StreamSummary& s : streams_) {
      if (s.truncated) report_.truncated = true;
    }
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      for (std::size_t j = i + 1; j < streams_.size(); ++j) {
        const StreamSummary& a = streams_[i];
        const StreamSummary& b = streams_[j];
        check_device_races(a, b);      // I1 (same device / multiplex token / entity)
        check_envelope_overlap(a, b);  // I2
        check_setpoint_races(a, b);    // I4
        check_ignore_asymmetry(a, b);  // I5
        check_ignore_asymmetry(b, a);
      }
    }
    check_consumable_budgets();  // I3
    check_rule_capacity();       // I6
    return std::move(report_);
  }

 private:
  void emit(Severity severity, const std::string& rule, std::string message,
            std::vector<std::string> subjects, bool speculative = false,
            std::vector<std::string> stream_names = {}) {
    std::sort(subjects.begin(), subjects.end());
    subjects.erase(std::unique(subjects.begin(), subjects.end()), subjects.end());
    if (speculative && severity == Severity::Error) {
      severity = Severity::Warning;
      message += " (may happen on some path)";
    }
    std::string key = rule + "|" + message;
    for (const std::string& s : subjects) key += "|" + s;
    if (!seen_.insert(key).second) return;
    if (report_.diagnostics.size() >= static_cast<std::size_t>(opts_.max_diagnostics)) {
      report_.truncated = true;
      return;
    }
    Diagnostic d{severity, rule, std::move(message), 0};
    d.subjects = std::move(subjects);
    d.streams = std::move(stream_names);
    report_.diagnostics.push_back(std::move(d));
  }

  static std::string join(const std::set<std::string>& items, const char* sep = ", ") {
    std::string out;
    for (const std::string& s : items) {
      if (!out.empty()) out += sep;
      out += s;
    }
    return out;
  }

  // I1a same commanded device, I1b exclusive-motion token, I1c shared entity.
  void check_device_races(const StreamSummary& a, const StreamSummary& b) {
    for (const auto& [device, fa] : a.devices) {
      auto it = b.devices.find(device);
      if (it == b.devices.end()) continue;
      const DeviceFootprint& fb = it->second;
      std::set<std::string> actions = fa.actions;
      actions.insert(fb.actions.begin(), fb.actions.end());
      emit(Severity::Error, "I1",
           "streams '" + a.name + "' and '" + b.name + "' both command device '" + device +
               "' (" + join(actions) + "): the interleaving of their commands is unordered",
           {device}, fa.speculative || fb.speculative, {a.name, b.name});
    }
    if (config_.time_multiplex) {
      for (const auto& [arm_a, env_a] : a.arm_envelopes) {
        for (const auto& [arm_b, env_b] : b.arm_envelopes) {
          if (arm_a == arm_b) continue;
          emit(Severity::Error, "I1",
               "streams '" + a.name + "' and '" + b.name + "' race the exclusive-motion " +
                   "token: '" + arm_a + "' and '" + arm_b +
                   "' cannot both hold it, so one stream's motion is rejected (M1) under " +
                   "any interleaving where both arms are awake",
               {arm_a, arm_b}, false, {a.name, b.name});
        }
      }
    }
    for (const auto& [entity, ta] : a.entities) {
      auto it = b.entities.find(entity);
      if (it == b.entities.end()) continue;
      std::vector<std::string> subjects{entity};
      subjects.insert(subjects.end(), ta.via.begin(), ta.via.end());
      subjects.insert(subjects.end(), it->second.via.begin(), it->second.via.end());
      emit(Severity::Error, "I1",
           "streams '" + a.name + "' and '" + b.name + "' both act on '" + entity +
               "' (via " + join(ta.via) + " / " + join(it->second.via) +
               "): its occupancy and contents depend on the interleaving",
           std::move(subjects), false, {a.name, b.name});
    }
  }

  // I2: two different arms' inflated occupancy envelopes intersect.
  void check_envelope_overlap(const StreamSummary& a, const StreamSummary& b) {
    for (const auto& [arm_a, env_a] : a.arm_envelopes) {
      for (const auto& [arm_b, env_b] : b.arm_envelopes) {
        if (arm_a == arm_b) continue;  // same arm: an I1 command race
        if (!env_a.intersects(env_b)) continue;
        emit(Severity::Error, "I2",
             "workspace envelopes of '" + arm_a + "' (stream '" + a.name + "') and '" +
                 arm_b + "' (stream '" + b.name +
                 "') overlap: concurrent motion can collide inside the shared region",
             {arm_a, arm_b}, false, {a.name, b.name});
      }
    }
  }

  // I4: both streams write the same setpoint with non-identical values.
  void check_setpoint_races(const StreamSummary& a, const StreamSummary& b) {
    for (const auto& [device, vars_a] : a.setpoints) {
      auto dit = b.setpoints.find(device);
      if (dit == b.setpoints.end()) continue;
      for (const auto& [variable, iv_a] : vars_a) {
        auto vit = dit->second.find(variable);
        if (vit == dit->second.end()) continue;
        if (iv_a.same_as(vit->second)) continue;  // identical writes commute
        emit(Severity::Warning, "I4",
             "conflicting setpoint writes to " + device + "." + variable + ": stream '" +
                 a.name + "' writes " + iv_a.format() + ", stream '" + b.name + "' writes " +
                 vit->second.format() + " — the final value depends on the interleaving",
             {device}, false, {a.name, b.name});
      }
    }
  }

  // I5: `a` declares a deliberate interaction (collision checks suppressed
  // for that box) that `b`, which also uses the device, never declares.
  void check_ignore_asymmetry(const StreamSummary& a, const StreamSummary& b) {
    std::set<std::string> declared_by_b;
    for (const auto& [arm, names] : b.ignores) declared_by_b.insert(names.begin(), names.end());
    for (const auto& [arm, names] : a.ignores) {
      for (const std::string& name : names) {
        if (declared_by_b.contains(name)) continue;
        if (b.devices.find(name) == b.devices.end() &&
            b.entities.find(name) == b.entities.end()) {
          continue;
        }
        emit(Severity::Warning, "I5",
             "stream '" + a.name + "' declares a deliberate interaction of '" + arm +
                 "' with '" + name + "' (its box is excluded from collision checks) while " +
                 "stream '" + b.name + "' also uses '" + name + "' without declaring one",
             {arm, name}, false, {a.name, b.name});
      }
    }
  }

  // I3: the *sum* of per-stream deltas overflows (or overdraws) a shared
  // container, even where each stream alone fits.
  void check_consumable_budgets() {
    check_budget_table([](const StreamSummary& s) { return &s.mass_delta_mg; },
                       [](const DeviceMeta& m) { return m.capacity_mg; }, "solidMg", "mg");
    check_budget_table([](const StreamSummary& s) { return &s.volume_delta_ml; },
                       [](const DeviceMeta& m) { return m.capacity_ml; }, "liquidMl", "mL");
  }

  template <typename TableOf, typename CapacityOf>
  void check_budget_table(const TableOf& table_of, const CapacityOf& capacity_of,
                          const char* initial_var, const char* unit) {
    std::set<std::string> keys;
    for (const StreamSummary& s : streams_) {
      for (const auto& [key, iv] : *table_of(s)) keys.insert(key);
    }
    for (const std::string& key : keys) {
      const DeviceMeta* meta = config_.find_device(key);
      if (meta == nullptr) continue;  // delta attributed to a site: no capacity model
      double capacity = capacity_of(*meta);
      double initial = 0.0;
      if (auto it = meta->initial_state.find(initial_var);
          it != meta->initial_state.end() && it->second.is_number()) {
        initial = it->second.as_double();
      }
      Interval total;
      std::set<std::string> contributors;
      for (const StreamSummary& s : streams_) {
        auto it = table_of(s)->find(key);
        if (it == table_of(s)->end() || !it->second.set) continue;
        total.accumulate(it->second.lo, it->second.hi);
        contributors.insert(s.name);
      }
      if (contributors.size() < 2) continue;  // single-stream checks own this
      std::vector<std::string> subjects{key};
      subjects.insert(subjects.end(), contributors.begin(), contributors.end());
      std::vector<std::string> names(contributors.begin(), contributors.end());
      if (capacity > 0.0 && initial + total.hi > capacity + core::kVolumeEpsilon) {
        emit(Severity::Error, "I3",
             "shared container '" + key + "': the summed deltas of streams " +
                 join(contributors) + " reach " + fmt_num(initial + total.hi) + " " + unit +
                 ", over its capacity " + fmt_num(capacity) + " " + unit +
                 " — each stream alone may pass, the campaign cannot",
             subjects, false, names);
      }
      if (initial + total.lo < -core::kVolumeEpsilon) {
        emit(Severity::Error, "I3",
             "shared container '" + key + "': the summed draws of streams " +
                 join(contributors) + " can overdraw it by " +
                 fmt_num(-(initial + total.lo)) + " " + unit,
             subjects, false, names);
      }
    }
  }

  // I6: the campaign-wide cumulative total of a thresholded additive
  // argument exceeds the per-command cap the rulebase enforces — a budget
  // the runtime provably cannot police one command at a time.
  void check_rule_capacity() {
    std::set<std::pair<std::string, std::string>> keys;
    for (const StreamSummary& s : streams_) {
      for (const auto& [device, actions] : s.threshold_totals) {
        for (const auto& [action, iv] : actions) keys.emplace(device, action);
      }
    }
    for (const auto& [device, action] : keys) {
      const DeviceMeta* meta = config_.find_device(device);
      const ThresholdSpec* th = meta != nullptr ? meta->threshold_for(action) : nullptr;
      if (th == nullptr) continue;
      Interval total;
      std::set<std::string> contributors;
      for (const StreamSummary& s : streams_) {
        auto dit = s.threshold_totals.find(device);
        if (dit == s.threshold_totals.end()) continue;
        auto ait = dit->second.find(action);
        if (ait == dit->second.end() || !ait->second.set) continue;
        total.accumulate(ait->second.lo, ait->second.hi);
        contributors.insert(s.name);
      }
      if (contributors.size() < 2) continue;
      if (total.hi <= th->max + core::kVolumeEpsilon) continue;
      std::vector<std::string> subjects{device};
      subjects.insert(subjects.end(), contributors.begin(), contributors.end());
      emit(Severity::Warning, "I6",
           "campaign-wide " + device + "." + action + " total " + total.format() +
               " exceeds the per-command threshold " + fmt_num(th->max) + " (" + th->argument +
               "): the rulebase caps single commands, not the cumulative budget of streams " +
               join(contributors),
           std::move(subjects), false,
           std::vector<std::string>(contributors.begin(), contributors.end()));
    }
  }

  const EngineConfig& config_;
  const std::vector<StreamSummary>& streams_;
  const AnalyzeOptions& opts_;
  AnalysisReport report_;
  std::set<std::string> seen_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Interval
// ---------------------------------------------------------------------------

void Interval::accumulate(double l, double h) {
  if (l > h) std::swap(l, h);
  if (!set) {
    lo = l;
    hi = h;
    set = true;
    return;
  }
  lo += l;
  hi += h;
}

void Interval::unite(double l, double h) {
  if (l > h) std::swap(l, h);
  if (!set) {
    lo = l;
    hi = h;
    set = true;
    return;
  }
  lo = std::min(lo, l);
  hi = std::max(hi, h);
}

bool Interval::same_as(const Interval& o) const {
  return set == o.set && lo == o.lo && hi == o.hi;
}

std::string Interval::format() const {
  if (!set) return "[]";
  if (lo == hi) return fmt_num(lo);
  return "[" + fmt_num(lo) + ", " + fmt_num(hi) + "]";
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

StreamSummary summarize_stream(const core::EngineConfig& config, std::string name,
                               const std::vector<dev::Command>& commands,
                               const AnalyzeOptions& options, AnalysisReport* per_stream) {
  EffectAccumulator acc(config, options, std::move(name));
  AnalyzeOptions opts = options;
  opts.observe_command = [&acc](const CommandObservation& obs) { acc.observe(obs); };
  AnalysisReport report = analyze_stream(config, commands, opts);
  StreamSummary summary = acc.take();
  summary.truncated = summary.truncated || report.truncated;
  if (per_stream != nullptr) *per_stream = std::move(report);
  return summary;
}

StreamSummary summarize_script(const core::EngineConfig& config, std::string name,
                               std::string_view source, const AnalyzeOptions& options,
                               AnalysisReport* per_stream) {
  EffectAccumulator acc(config, options, std::move(name));
  AnalyzeOptions opts = options;
  opts.observe_command = [&acc](const CommandObservation& obs) { acc.observe(obs); };
  AnalysisReport report = analyze_script(config, source, opts);
  StreamSummary summary = acc.take();
  summary.truncated = summary.truncated || report.truncated;
  if (per_stream != nullptr) *per_stream = std::move(report);
  return summary;
}

AnalysisReport check_interference(const core::EngineConfig& config,
                                  const std::vector<StreamSummary>& streams,
                                  const AnalyzeOptions& options) {
  return InterferenceChecker(config, streams, options).run();
}

AnalysisReport analyze_campaign(const core::EngineConfig& config,
                                const std::vector<CampaignStream>& streams,
                                const AnalyzeOptions& options) {
  std::vector<StreamSummary> summaries;
  summaries.reserve(streams.size());
  for (const CampaignStream& s : streams) {
    summaries.push_back(summarize_stream(config, s.name, s.commands, options));
  }
  return check_interference(config, summaries, options);
}

}  // namespace rabit::analysis
