// rabit::analysis shard planning — phase 3 of the campaign analyzer.
//
// Phase 1 summarizes each stream's effects (interference.hpp); phase 2 checks
// summaries pairwise for the I1..I6 hazards. This module is the third phase:
// it turns the same evidence into an *execution plan*. Two streams are
// conflict-graph neighbours wherever any I1..I6 condition could fire between
// them — a shared commanded device, a shared entity, the exclusive-motion
// token, overlapping inflated arm envelopes, joint contribution to a
// violated consumable or rule-capacity budget, a conflicting setpoint, an
// asymmetric deliberate-interaction declaration — or wherever a truncated
// summary leaves the analyzer unable to rule any of those out. Connected
// components of that graph are the campaign's *shards*: stream sets that may
// observably interact. Everything across a shard boundary is provably
// independent, and the plan carries a machine-checkable certificate per
// cross-shard pair naming the conditions that were verified.
//
// Consumers:
//   - fleet::Fleet::run_campaign (plan-driven mode) runs each shard against
//     its own lab state — engine, RuleWorldCache, verdict cache — lock-free,
//     with epoch-versioned pose snapshots for out-of-shard arms;
//   - rabit_lint --shard-plan prints the plan (text or --json) so CI can
//     gate on shardability before a campaign is scheduled.
//
// Soundness: the edge predicate is a conservative superset of the phase-2
// checks, which the differential sweep validates against runtime ground
// truth (every cross-stream runtime alert has a static I-cover, and the
// plan-driven runner's oracle asserts certified-independent streams never
// change verdicts when isolated). A truncated summary cannot certify
// anything, so it conflicts with every other stream (diagnosed as S3).
//
// Plan diagnostics (same Diagnostic schema as A/CFG/I families):
//   S1  campaign not shardable below the requested streams/shard bound —
//       carries the offending shard and its minimum conflict-edge cut as
//       evidence (the cheapest set of hazards to design away)
//   S2  a single stream serializes the fleet: an articulation stream whose
//       removal would split its shard into independent groups
//   S3  a truncated summary forced pessimistic merging
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/interference.hpp"
#include "json/json.hpp"

namespace rabit::analysis {

// ---------------------------------------------------------------------------
// Conflict evidence
// ---------------------------------------------------------------------------

/// Why a pair of streams cannot be certified independent. Each kind maps to
/// the phase-2 check family whose firing it over-approximates.
enum class ConflictKind {
  SharedDevice,      ///< I1a: both streams command one device
  MultiplexToken,    ///< I1b: different arms race the exclusive-motion token
  SharedEntity,      ///< I1c: both act on one site/vial/occupant
  EnvelopeOverlap,   ///< I2: inflated envelopes of different arms intersect
  ConsumableBudget,  ///< I3: both contribute to a violated container budget
  SetpointRace,      ///< I4: non-identical writes to one setpoint
  IgnoreAsymmetry,   ///< I5: one-sided deliberate-interaction declaration
  ThresholdBudget,   ///< I6: both contribute to a violated rule-capacity sum
  TruncatedSummary,  ///< S3: a summary is incomplete, independence unprovable
};

[[nodiscard]] std::string_view to_string(ConflictKind kind);

/// One concrete reason an edge exists: the footprint/envelope/resource that
/// induced it, plus a human-readable account.
struct ConflictEvidence {
  ConflictKind kind = ConflictKind::SharedDevice;
  std::string subject;  ///< device / entity / container / "armA+armB" pair
  std::string detail;
};

/// An undirected conflict-graph edge between streams `a` and `b` (indices
/// into the planned summary vector, a < b) with every piece of evidence.
struct ConflictEdge {
  std::size_t a = 0;
  std::size_t b = 0;
  std::vector<ConflictEvidence> evidence;
};

// ---------------------------------------------------------------------------
// The plan
// ---------------------------------------------------------------------------

/// A set of streams that must share coordination state. Shards are listed in
/// ascending order of their smallest stream index; `streams` is sorted.
struct Shard {
  std::vector<std::size_t> streams;
};

/// The machine-checkable half of a cross-shard independence claim: every
/// condition listed was re-derived from the two summaries and held. The
/// conditions use a closed vocabulary ("devices-disjoint",
/// "entities-disjoint", "no-multiplex-race", "envelopes-disjoint",
/// "no-shared-budget", "setpoints-compatible", "ignores-symmetric",
/// "summaries-complete") so verify_plan can replay them.
struct IndependenceCertificate {
  std::size_t a = 0;
  std::size_t b = 0;
  std::vector<std::string> conditions;
};

struct ShardPlanOptions {
  /// S1 bound: warn when a shard holds more than this many streams. 0 keeps
  /// only the degenerate check — warn when the whole campaign collapses into
  /// a single multi-stream shard (nothing can run lock-free at all).
  std::size_t max_shard_streams = 0;
  /// Slack added around an *uncommanded* arm's parked sleep box when deriving
  /// ShardPlan::arm_envelopes (commanded arms carry their summary envelopes,
  /// which the A3 frame-calibration margin already inflates). Mirrors
  /// AnalyzeOptions::parked_arm_margin.
  double parked_arm_margin = 0.05;
};

struct ShardPlan {
  std::vector<std::string> stream_names;  ///< planned summary order
  std::vector<Shard> shards;
  std::vector<ConflictEdge> edges;  ///< sorted by (a, b)
  /// One certificate per cross-shard pair, sorted by (a, b). Complete:
  /// every pair of streams from different shards appears exactly once.
  std::vector<IndependenceCertificate> certificates;
  /// S1..S3 findings, every one carrying concrete conflict evidence.
  AnalysisReport diagnostics;
  /// Per-arm certified pose envelope: for a commanded arm, the union of its
  /// margin-inflated summary envelopes across every stream that moves it;
  /// for an arm no stream commands, its parked sleep box inflated by
  /// ShardPlanOptions::parked_arm_margin. This is the margin data the
  /// runtime snapshot soundness check audits live cross-shard pose reads
  /// against: any pose an arm ever publishes must lie inside its envelope,
  /// so a stale epoch-versioned snapshot cannot change a verdict.
  std::map<std::string, geom::Aabb, std::less<>> arm_envelopes;
  /// Any input summary was truncated: the partition is still sound (the
  /// truncated stream was merged pessimistically) but may be coarser than
  /// the campaign deserves.
  bool truncated = false;

  /// Shard index owning `stream`, or shards.size() when out of range.
  [[nodiscard]] std::size_t shard_of(std::size_t stream) const;
  /// True when `a` and `b` live in different shards (and so are covered by a
  /// certificate).
  [[nodiscard]] bool certified_independent(std::size_t a, std::size_t b) const;
  [[nodiscard]] const ConflictEdge* edge_between(std::size_t a, std::size_t b) const;
};

/// Builds the plan from phase-1 summaries. Deterministic: output order
/// depends only on the summary order.
[[nodiscard]] ShardPlan plan_shards(const core::EngineConfig& config,
                                    const std::vector<StreamSummary>& streams,
                                    const ShardPlanOptions& options = {});

/// Convenience: summarize every campaign stream (phase 1), then plan.
[[nodiscard]] ShardPlan plan_campaign_shards(const core::EngineConfig& config,
                                             const std::vector<CampaignStream>& streams,
                                             const ShardPlanOptions& plan_options = {},
                                             const AnalyzeOptions& analyze_options = {});

/// Re-checks a plan against summaries from scratch: shards must partition
/// the streams, every cross-shard pair must carry a certificate, and no
/// cross-shard pair may have any conflict evidence. Returns human-readable
/// violations; empty means the plan is sound for these summaries. This is
/// the static half of the certificate check; the runtime half is the
/// fleet validation oracle (fleet::certificate_violations).
[[nodiscard]] std::vector<std::string> verify_plan(const core::EngineConfig& config,
                                                   const std::vector<StreamSummary>& streams,
                                                   const ShardPlan& plan);

/// Serializes the plan (the rabit_lint --shard-plan --json format). The
/// embedded "diagnostics" array uses the exact per-diagnostic schema of
/// report_to_json / diagnostic_to_json.
[[nodiscard]] json::Value plan_to_json(const ShardPlan& plan);

/// Multi-line human-readable rendering (the rabit_lint --shard-plan text
/// format).
[[nodiscard]] std::string format_plan(const ShardPlan& plan);

}  // namespace rabit::analysis
