#include "devices/stations.hpp"

#include <algorithm>

namespace rabit::dev {

namespace {

void check_door_arg(const std::string& state) {
  if (state != "open" && state != "closed") {
    throw DeviceError(DeviceError::Code::BadArgument,
                      "set_door: state must be 'open' or 'closed', got '" + state + "'");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// DosingDeviceModel
// ---------------------------------------------------------------------------

DosingDeviceModel::DosingDeviceModel(std::string id, const geom::Aabb& footprint)
    : Device(std::move(id), DeviceCategory::DosingSystem), footprint_(footprint) {
  set_var("doorStatus", "closed");
  set_var("running", 0);
  set_var("containerInside", "");
  set_var("pendingDoseMg", 0.0);

  register_action("set_door", [this](const json::Value& args) {
    std::string state = require_string(args, "state");
    check_door_arg(state);
    if (door_status() == "broken") {
      throw DeviceError(DeviceError::Code::InvalidState,
                        this->id() + ": door actuator is broken");
    }
    var("doorStatus") = state;
  });
  register_action("run_action", [this](const json::Value& args) {
    double quantity = require_number(args, "quantity");
    if (quantity < 0) {
      throw DeviceError(DeviceError::Code::BadArgument, "run_action: negative quantity");
    }
    var("running") = 1;
    var("pendingDoseMg") = quantity;
  });
  register_action("stop_action", [this](const json::Value&) { var("running") = 0; });
}

void DosingDeviceModel::break_door() {
  var("doorStatus") = "broken";
  note_hazard("glass door broken", Severity::High);
}

void DosingDeviceModel::set_container_inside(std::string vial_id) {
  var("containerInside") = std::move(vial_id);
}

double DosingDeviceModel::take_pending_dose_mg() {
  double pending = var("pendingDoseMg").as_double();
  var("pendingDoseMg") = 0.0;
  return pending;
}

// ---------------------------------------------------------------------------
// SyringePumpModel
// ---------------------------------------------------------------------------

SyringePumpModel::SyringePumpModel(std::string id, double reservoir_ml,
                                   const geom::Aabb& footprint)
    : Device(std::move(id), DeviceCategory::DosingSystem), footprint_(footprint) {
  if (reservoir_ml < 0) throw std::invalid_argument("SyringePumpModel: negative reservoir");
  set_var("reservoirMl", reservoir_ml);
  set_var("heldMl", 0.0);
  set_var("pendingDispenseMl", 0.0);
  set_var("pendingTarget", "");

  register_action("draw_solvent", [this](const json::Value& args) {
    double volume = require_number(args, "volume");
    if (volume < 0) {
      throw DeviceError(DeviceError::Code::BadArgument, "draw_solvent: negative volume");
    }
    double available = this->reservoir_ml();
    double drawn = std::min(volume, available);
    var("reservoirMl") = available - drawn;
    var("heldMl") = held_ml() + drawn;
    if (drawn < volume) note_hazard("reservoir ran dry during draw", Severity::Low);
  });
  register_action("dose_solvent", [this](const json::Value& args) {
    double volume = require_number(args, "volume");
    if (volume < 0) {
      throw DeviceError(DeviceError::Code::BadArgument, "dose_solvent: negative volume");
    }
    var("pendingDispenseMl") = volume;
    var("pendingTarget") = require_string(args, "target");
  });
}

SyringePumpModel::PendingDispense SyringePumpModel::take_pending_dispense() {
  PendingDispense out;
  out.volume_ml = var("pendingDispenseMl").as_double();
  out.target = var("pendingTarget").as_string();
  var("pendingDispenseMl") = 0.0;
  var("pendingTarget") = "";
  return out;
}

double SyringePumpModel::drain_held(double volume_ml) {
  double available = held_ml();
  double drained = std::min(volume_ml, available);
  var("heldMl") = available - drained;
  if (drained < volume_ml) {
    note_hazard("syringe under-dispensed (" + std::to_string(volume_ml - drained) + " mL short)",
                Severity::Low);
  }
  return drained;
}

// ---------------------------------------------------------------------------
// HotplateModel
// ---------------------------------------------------------------------------

HotplateModel::HotplateModel(std::string id, double firmware_limit_c, double hazard_threshold_c,
                             const geom::Aabb& footprint)
    : Device(std::move(id), DeviceCategory::ActionDevice),
      firmware_limit_c_(firmware_limit_c),
      hazard_threshold_c_(hazard_threshold_c),
      footprint_(footprint) {
  set_var("targetC", 25.0);
  set_var("stirRpm", 0.0);
  set_var("active", 0);
  set_var("containerOn", "");

  register_action("set_temperature", [this](const json::Value& args) {
    double celsius = require_number(args, "celsius");
    if (celsius > firmware_limit_c_) {
      // The device's own threshold, embedded "inside device firmware" (§I).
      throw DeviceError(DeviceError::Code::FirmwareRejected,
                        this->id() + ": firmware limit " + std::to_string(firmware_limit_c_) +
                            " C exceeded");
    }
    var("targetC") = celsius;
    var("active") = celsius > 25.0 ? 1 : var("active").as_int();
    if (celsius > hazard_threshold_c_) {
      note_hazard("hotplate heated past safe threshold, solution overheated", Severity::High);
    }
  });
  register_action("stir", [this](const json::Value& args) {
    double rpm = require_number(args, "rpm");
    if (rpm < 0) throw DeviceError(DeviceError::Code::BadArgument, "stir: negative rpm");
    var("stirRpm") = rpm;
    var("active") = rpm > 0 ? 1 : var("active").as_int();
  });
  register_action("stop", [this](const json::Value&) {
    var("targetC") = 25.0;
    var("stirRpm") = 0.0;
    var("active") = 0;
  });
}

void HotplateModel::set_container_on(std::string vial_id) {
  var("containerOn") = std::move(vial_id);
}

// ---------------------------------------------------------------------------
// CentrifugeModel
// ---------------------------------------------------------------------------

CentrifugeModel::CentrifugeModel(std::string id, const geom::Aabb& footprint)
    : Device(std::move(id), DeviceCategory::ActionDevice), footprint_(footprint) {
  set_var("doorStatus", "closed");
  set_var("spinning", 0);
  set_var("redDot", "N");
  set_var("containerInside", "");

  register_action("set_door", [this](const json::Value& args) {
    std::string state = require_string(args, "state");
    check_door_arg(state);
    if (door_status() == "broken") {
      throw DeviceError(DeviceError::Code::InvalidState,
                        this->id() + ": door actuator is broken");
    }
    var("doorStatus") = state;
  });
  register_action("rotate_platter", [this](const json::Value& args) {
    std::string orientation = require_string(args, "orientation");
    if (orientation != "N" && orientation != "E" && orientation != "S" && orientation != "W") {
      throw DeviceError(DeviceError::Code::BadArgument,
                        "rotate_platter: orientation must be N/E/S/W");
    }
    var("redDot") = orientation;
  });
  register_action("start_spin", [this](const json::Value& args) {
    double rpm = require_number(args, "rpm");
    if (rpm < 0) throw DeviceError(DeviceError::Code::BadArgument, "start_spin: negative rpm");
    var("spinning") = 1;
    if (door_status() != "closed") {
      note_hazard("centrifuge spun with door not closed, contents ejected", Severity::Low);
    }
    if (container_inside().empty()) {
      note_hazard("centrifuge ran empty (rotor imbalance wear)", Severity::Low);
    }
  });
  register_action("stop_spin", [this](const json::Value&) { var("spinning") = 0; });
}

std::optional<geom::Solid> CentrifugeModel::shape() const {
  geom::Vec3 c = footprint_.center();
  geom::Vec3 s = footprint_.size();
  double radius = 0.5 * std::min(s.x, s.y);
  // The dome takes the top `radius` of the height; the cylinder the rest.
  double dome_base_z = footprint_.max.z - radius;
  double body_height = dome_base_z - footprint_.min.z;
  std::vector<geom::Solid> parts;
  parts.push_back(geom::Solid::vertical_cylinder(geom::Vec3(c.x, c.y, footprint_.min.z),
                                                 radius, body_height));
  parts.push_back(geom::Solid::hemisphere(geom::Vec3(c.x, c.y, dome_base_z), radius));
  return geom::Solid::compound(std::move(parts));
}

void CentrifugeModel::break_door() {
  var("doorStatus") = "broken";
  note_hazard("door broken", Severity::High);
}

void CentrifugeModel::set_container_inside(std::string vial_id) {
  var("containerInside") = std::move(vial_id);
}

// ---------------------------------------------------------------------------
// ThermoshakerModel
// ---------------------------------------------------------------------------

ThermoshakerModel::ThermoshakerModel(std::string id, double firmware_limit_c,
                                     const geom::Aabb& footprint)
    : Device(std::move(id), DeviceCategory::ActionDevice),
      firmware_limit_c_(firmware_limit_c),
      footprint_(footprint) {
  set_var("targetC", 25.0);
  set_var("shakeRpm", 0.0);
  set_var("active", 0);
  set_var("containerInside", "");

  register_action("set_temperature", [this](const json::Value& args) {
    double celsius = require_number(args, "celsius");
    if (celsius > firmware_limit_c_) {
      throw DeviceError(DeviceError::Code::FirmwareRejected,
                        this->id() + ": firmware limit exceeded");
    }
    var("targetC") = celsius;
    var("active") = celsius > 25.0 ? 1 : var("active").as_int();
  });
  register_action("shake", [this](const json::Value& args) {
    double rpm = require_number(args, "rpm");
    if (rpm < 0) throw DeviceError(DeviceError::Code::BadArgument, "shake: negative rpm");
    var("shakeRpm") = rpm;
    var("active") = rpm > 0 ? 1 : var("active").as_int();
  });
  register_action("stop", [this](const json::Value&) {
    var("targetC") = 25.0;
    var("shakeRpm") = 0.0;
    var("active") = 0;
  });
}

std::optional<geom::Solid> ThermoshakerModel::shape() const {
  geom::Vec3 c = footprint_.center();
  // Body over the lower 70% of the height, bump (half the xy extent) on top.
  double body_top = footprint_.min.z + 0.7 * (footprint_.max.z - footprint_.min.z);
  geom::Aabb body(footprint_.min, geom::Vec3(footprint_.max.x, footprint_.max.y, body_top));
  geom::Vec3 bump_half(0.25 * (footprint_.max.x - footprint_.min.x),
                       0.25 * (footprint_.max.y - footprint_.min.y), 0.0);
  geom::Aabb bump(geom::Vec3(c.x - bump_half.x, c.y - bump_half.y, body_top),
                  geom::Vec3(c.x + bump_half.x, c.y + bump_half.y, footprint_.max.z));
  return geom::Solid::compound({geom::Solid::box(body), geom::Solid::box(bump)});
}

void ThermoshakerModel::set_container_inside(std::string vial_id) {
  var("containerInside") = std::move(vial_id);
}

// ---------------------------------------------------------------------------
// GenericActionDevice
// ---------------------------------------------------------------------------

GenericActionDevice::GenericActionDevice(std::string id,
                                         std::vector<ValueActionSpec> value_actions,
                                         bool has_door, std::optional<geom::Aabb> footprint)
    : Device(std::move(id), DeviceCategory::ActionDevice),
      has_door_(has_door),
      footprint_(footprint),
      value_actions_(std::move(value_actions)) {
  set_var("active", 0);
  set_var("containerInside", "");
  if (has_door_) set_var("doorStatus", "closed");

  register_action("start", [this](const json::Value&) { var("active") = 1; });
  register_action("stop", [this](const json::Value&) { var("active") = 0; });
  if (has_door_) {
    register_action("set_door", [this](const json::Value& args) {
      std::string state = require_string(args, "state");
      check_door_arg(state);
      if (door_status() == "broken") {
        throw DeviceError(DeviceError::Code::InvalidState,
                          this->id() + ": door actuator is broken");
      }
      var("doorStatus") = state;
    });
  }

  for (const ValueActionSpec& spec : value_actions_) {
    set_var(spec.variable, 0.0);
    // Copy the spec into the closure (the stored vector may reallocate).
    register_action(spec.action, [this, spec](const json::Value& args) {
      double value = require_number(args, spec.argument);
      if (spec.firmware_max && value > *spec.firmware_max) {
        throw DeviceError(DeviceError::Code::FirmwareRejected,
                          this->id() + ": firmware limit for " + spec.action + " exceeded");
      }
      var(spec.variable) = value;
    });
  }
}

std::string GenericActionDevice::door_status() const {
  if (!has_door_) return "none";
  return var("doorStatus").as_string();
}

void GenericActionDevice::break_door() {
  if (!has_door_) return;
  var("doorStatus") = "broken";
  note_hazard("door broken", Severity::High);
}

void GenericActionDevice::set_container_inside(std::string vial_id) {
  var("containerInside") = std::move(vial_id);
}

// ---------------------------------------------------------------------------
// MultiDoorStation
// ---------------------------------------------------------------------------

MultiDoorStation::MultiDoorStation(std::string id, std::vector<DoorSpec> doors,
                                   const geom::Aabb& footprint)
    : Device(std::move(id), DeviceCategory::ActionDevice),
      doors_(std::move(doors)),
      footprint_(footprint) {
  if (doors_.size() < 2) {
    throw std::invalid_argument("MultiDoorStation: needs at least two doors");
  }
  set_var("active", 0);
  set_var("containerInside", "");
  for (const DoorSpec& d : doors_) set_var(door_var(d.name), "closed");

  register_action("set_door", [this](const json::Value& args) {
    std::string door = require_string(args, "door");
    std::string state = require_string(args, "state");
    check_door_arg(state);
    if (door_status(door) == "broken") {
      throw DeviceError(DeviceError::Code::InvalidState,
                        this->id() + ": door '" + door + "' actuator is broken");
    }
    var(door_var(door)) = state;
  });
  register_action("start", [this](const json::Value&) { var("active") = 1; });
  register_action("stop", [this](const json::Value&) { var("active") = 0; });
}

std::string MultiDoorStation::door_status(std::string_view door) const {
  for (const DoorSpec& d : doors_) {
    if (d.name == door) return var(door_var(door)).as_string();
  }
  throw DeviceError(DeviceError::Code::BadArgument,
                    id() + ": unknown door '" + std::string(door) + "'");
}

void MultiDoorStation::break_door(std::string_view door) {
  static_cast<void>(door_status(door));  // validates the name
  var(door_var(door)) = "broken";
  note_hazard("door '" + std::string(door) + "' broken", Severity::High);
}

const MultiDoorStation::DoorSpec& MultiDoorStation::door_facing(
    const geom::Vec3& from_lab) const {
  geom::Vec3 center = footprint_.center();
  geom::Vec3 offset(from_lab.x - center.x, from_lab.y - center.y, 0.0);
  const DoorSpec* best = &doors_.front();
  double best_dot = -1e300;
  for (const DoorSpec& d : doors_) {
    double dot = offset.dot(d.approach_direction);
    if (dot > best_dot) {
      best_dot = dot;
      best = &d;
    }
  }
  return *best;
}

void MultiDoorStation::set_container_inside(std::string vial_id) {
  var("containerInside") = std::move(vial_id);
}

// ---------------------------------------------------------------------------
// ProximitySensor
// ---------------------------------------------------------------------------

ProximitySensor::ProximitySensor(std::string id, const geom::Aabb& zone)
    : Device(std::move(id), DeviceCategory::ActionDevice), zone_(zone) {
  set_var("occupied", 0);
  // Sensors are input-only: no commands beyond status (polled via
  // observed_state); a "reset" action is provided for latch-style hardware.
  register_action("reset", [this](const json::Value&) { var("occupied") = 0; });
}

void ProximitySensor::set_occupied(bool occupied) { var("occupied") = occupied ? 1 : 0; }

}  // namespace rabit::dev
