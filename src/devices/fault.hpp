// Transient-fault model: a seeded, deterministic FaultSchedule keyed to the
// backend's modeled clock.
//
// The permanent FaultPlan (device.hpp) models hardware that is genuinely
// broken — status lies forever, actions never take effect. Month-long
// autonomous campaigns additionally see *transient* faults that a retry
// would absorb: firmware briefly refusing commands while busy, an action
// that silently no-ops once, a status read that times out or returns a
// stale snapshot. The FaultSchedule injects both kinds on a modeled-time
// axis so chaos campaigns are reproducible from a single seed (same seed
// ⇒ same fault sequence ⇒ same trace).
#pragma once

#include <random>

#include "devices/device.hpp"

namespace rabit::dev {

/// The transient fault kinds a retry/re-poll can absorb.
enum class TransientKind {
  FirmwareBusy,   ///< command rejected with a busy error until the fault clears
  DeadAction,     ///< command accepted but has no physical effect until cleared
  StatusTimeout,  ///< status read gets no response (observable by the caller)
  StaleStatus,    ///< status read silently returns the previous snapshot
};

[[nodiscard]] std::string_view to_string(TransientKind k);

/// One transient fault window. A fault is *active* from `start_s` until it
/// clears — by modeled time (`clear_after_s`), by affected attempts
/// (`clear_after_attempts`), or whichever comes first when both are set.
/// A fault with neither set never clears (degenerate permanent transient;
/// useful in tests).
struct TransientFault {
  std::string device;
  /// Action the fault applies to; empty = every action on the device.
  /// Ignored for status faults (they apply to the device's status command).
  std::string action;
  TransientKind kind = TransientKind::FirmwareBusy;
  double start_s = 0.0;                  ///< modeled time the fault arms
  double clear_after_s = 0.0;            ///< >0: self-clears at start_s + this
  std::size_t clear_after_attempts = 0;  ///< >0: clears after N affected attempts
};

/// A permanent FaultPlan that arms at a modeled time (a device breaking
/// mid-campaign rather than being broken from the start).
struct ScheduledPermanentFault {
  std::string device;
  FaultPlan plan;
  double start_s = 0.0;
};

/// Deterministic fault timetable for one run. The backend consults it on
/// every command and status read; attempt counters are internal, so the
/// schedule is single-run state (build a fresh one per run, or copy it).
class FaultSchedule {
 public:
  void add(TransientFault fault);
  void add_permanent(std::string device, FaultPlan plan, double start_s = 0.0);

  [[nodiscard]] bool empty() const { return transients_.empty() && permanents_.empty(); }
  [[nodiscard]] const std::vector<TransientFault>& transients() const { return raw_; }
  [[nodiscard]] std::size_t permanent_count() const { return permanents_.size(); }

  /// Active command fault for (device, action) at modeled time `now_s`.
  /// Counts one affected attempt against the matching fault. FirmwareBusy
  /// wins over DeadAction when both are somehow active.
  [[nodiscard]] std::optional<TransientKind> on_command_attempt(std::string_view device,
                                                               std::string_view action,
                                                               double now_s);

  /// Active status fault for `device` at `now_s`. Counts one read attempt
  /// against the matching fault. StatusTimeout wins over StaleStatus.
  [[nodiscard]] std::optional<TransientKind> on_status_read(std::string_view device,
                                                            double now_s);

  /// Applies every permanent plan whose start time has passed to the
  /// registry (once each); returns the ids of newly broken devices.
  std::vector<std::string> arm_permanent_plans(DeviceRegistry& registry, double now_s);

  // -------------------------------------------------------------------------
  // Seeded chaos generation
  // -------------------------------------------------------------------------

  struct ChaosOptions {
    std::size_t transient_count = 6;   ///< faults drawn per schedule
    double horizon_s = 120.0;          ///< fault start times uniform in [0, horizon)
    double max_clear_s = 4.0;          ///< time-cleared faults clear within this
    std::size_t max_clear_attempts = 3;  ///< attempt-cleared faults clear within this
    bool include_status_faults = true;   ///< draw StatusTimeout/StaleStatus too
  };

  /// Builds a schedule of `transient_count` transient faults over the given
  /// (device, action) universe — typically the distinct pairs of the
  /// workflow about to run, so every fault can actually strike. Fully
  /// deterministic from `seed`. DeadAction faults are only drawn for
  /// actions in `dead_safe_actions` (actions whose postconditions RABIT
  /// tracks, so a dead attempt is observable and recoverable — dead *arm
  /// moves* reproduce the paper's position blind spot instead and are not
  /// chaos material).
  [[nodiscard]] static FaultSchedule chaos(
      unsigned seed, const std::vector<std::pair<std::string, std::string>>& device_actions,
      const ChaosOptions& options);
  [[nodiscard]] static FaultSchedule chaos(
      unsigned seed, const std::vector<std::pair<std::string, std::string>>& device_actions);

  /// Same draw, but consuming the caller's RNG chain instead of seeding a
  /// local engine: the scenario factory threads one master std::mt19937_64
  /// through every generator so a whole campaign — workflows, mutations,
  /// fault schedule — is reproducible end-to-end from a single seed.
  [[nodiscard]] static FaultSchedule chaos(
      std::mt19937_64& rng, const std::vector<std::pair<std::string, std::string>>& device_actions,
      const ChaosOptions& options);

  /// Actions whose postconditions the default rulebase tracks (safe targets
  /// for DeadAction chaos faults).
  [[nodiscard]] static const std::vector<std::string>& default_dead_safe_actions();

 private:
  struct Entry {
    TransientFault fault;
    std::size_t attempts = 0;
    [[nodiscard]] bool active(double now_s) const;
  };
  struct Permanent {
    ScheduledPermanentFault fault;
    bool applied = false;
  };

  std::vector<Entry> transients_;
  std::vector<TransientFault> raw_;  ///< insertion-order copy for introspection
  std::vector<Permanent> permanents_;
};

inline FaultSchedule FaultSchedule::chaos(
    unsigned seed, const std::vector<std::pair<std::string, std::string>>& device_actions) {
  return chaos(seed, device_actions, ChaosOptions{});
}

}  // namespace rabit::dev
