#include "devices/fault.hpp"

#include <algorithm>

namespace rabit::dev {

std::string_view to_string(TransientKind k) {
  switch (k) {
    case TransientKind::FirmwareBusy: return "firmware_busy";
    case TransientKind::DeadAction: return "dead_action";
    case TransientKind::StatusTimeout: return "status_timeout";
    case TransientKind::StaleStatus: return "stale_status";
  }
  return "unknown";
}

bool FaultSchedule::Entry::active(double now_s) const {
  if (now_s < fault.start_s) return false;
  if (fault.clear_after_s > 0 && now_s >= fault.start_s + fault.clear_after_s) return false;
  if (fault.clear_after_attempts > 0 && attempts >= fault.clear_after_attempts) return false;
  return true;
}

void FaultSchedule::add(TransientFault fault) {
  raw_.push_back(fault);
  transients_.push_back(Entry{std::move(fault), 0});
}

void FaultSchedule::add_permanent(std::string device, FaultPlan plan, double start_s) {
  permanents_.push_back(
      Permanent{ScheduledPermanentFault{std::move(device), std::move(plan), start_s}, false});
}

std::optional<TransientKind> FaultSchedule::on_command_attempt(std::string_view device,
                                                              std::string_view action,
                                                              double now_s) {
  Entry* hit = nullptr;
  for (Entry& e : transients_) {
    if (e.fault.kind != TransientKind::FirmwareBusy && e.fault.kind != TransientKind::DeadAction) {
      continue;
    }
    if (e.fault.device != device) continue;
    if (!e.fault.action.empty() && e.fault.action != action) continue;
    if (!e.active(now_s)) continue;
    if (hit == nullptr || (hit->fault.kind == TransientKind::DeadAction &&
                           e.fault.kind == TransientKind::FirmwareBusy)) {
      hit = &e;
    }
  }
  if (hit == nullptr) return std::nullopt;
  ++hit->attempts;
  return hit->fault.kind;
}

std::optional<TransientKind> FaultSchedule::on_status_read(std::string_view device,
                                                           double now_s) {
  Entry* hit = nullptr;
  for (Entry& e : transients_) {
    if (e.fault.kind != TransientKind::StatusTimeout && e.fault.kind != TransientKind::StaleStatus) {
      continue;
    }
    if (e.fault.device != device) continue;
    if (!e.active(now_s)) continue;
    if (hit == nullptr || (hit->fault.kind == TransientKind::StaleStatus &&
                           e.fault.kind == TransientKind::StatusTimeout)) {
      hit = &e;
    }
  }
  if (hit == nullptr) return std::nullopt;
  ++hit->attempts;
  return hit->fault.kind;
}

std::vector<std::string> FaultSchedule::arm_permanent_plans(DeviceRegistry& registry,
                                                            double now_s) {
  std::vector<std::string> armed;
  for (Permanent& p : permanents_) {
    if (p.applied || now_s < p.fault.start_s) continue;
    if (Device* d = registry.find(p.fault.device)) {
      d->set_fault_plan(p.fault.plan);
      p.applied = true;
      armed.push_back(p.fault.device);
    }
  }
  return armed;
}

const std::vector<std::string>& FaultSchedule::default_dead_safe_actions() {
  // Actions whose expected postconditions land on *checked* state variables
  // of the default rulebase — a dead attempt diverges observably, so the
  // recovery ladder can re-poll and retry it. Arm moves are deliberately
  // absent: "position"/"pose" are unchecked (the paper's §IV blind spot).
  static const std::vector<std::string> kActions = {
      "set_door",   "open_gripper", "close_gripper", "set_temperature", "stir",
      "shake",      "stop",         "start_spin",    "stop_spin",       "rotate_platter",
      "run_action", "stop_action",  "start",
  };
  return kActions;
}

namespace {

/// The chaos draw, generic over the RNG engine: the legacy entry point seeds
/// its own std::mt19937 (byte-stable with the pre-scenario-factory builds),
/// while the scenario factory threads one master std::mt19937_64 chain
/// through so a whole campaign is reproducible from a single seed.
template <class Rng>
FaultSchedule chaos_draw(Rng& rng,
                         const std::vector<std::pair<std::string, std::string>>& device_actions,
                         const FaultSchedule::ChaosOptions& options) {
  FaultSchedule schedule;
  if (device_actions.empty() || options.transient_count == 0) return schedule;

  std::uniform_int_distribution<std::size_t> pair_dist(0, device_actions.size() - 1);
  std::uniform_real_distribution<double> start_dist(0.0, options.horizon_s);
  std::uniform_real_distribution<double> clear_s_dist(0.5, options.max_clear_s);
  std::uniform_int_distribution<std::size_t> clear_n_dist(
      1, std::max<std::size_t>(1, options.max_clear_attempts));
  // Kind weights: busy rejections dominate real transient logs; dead actions
  // and status faults are rarer.
  std::uniform_int_distribution<int> kind_dist(0, options.include_status_faults ? 5 : 3);

  const auto& dead_safe = FaultSchedule::default_dead_safe_actions();
  auto dead_ok = [&dead_safe](const std::string& action) {
    return std::find(dead_safe.begin(), dead_safe.end(), action) != dead_safe.end();
  };

  // At most one transient per target: stacked faults on the same command (or
  // the same device's status channel) accumulate clear_after_attempts
  // windows until they exceed any bounded retry/re-poll budget, silently
  // turning a "recoverable" schedule into an unrecoverable one.
  std::vector<std::string> used_command_targets;
  std::vector<std::string> used_status_devices;
  auto take = [](std::vector<std::string>& used, const std::string& key) {
    if (std::find(used.begin(), used.end(), key) != used.end()) return false;
    used.push_back(key);
    return true;
  };

  std::size_t added = 0;
  for (std::size_t draw = 0; draw < options.transient_count * 4 && added < options.transient_count;
       ++draw) {
    const auto& [device, action] = device_actions[pair_dist(rng)];
    int k = kind_dist(rng);

    TransientFault fault;
    fault.device = device;
    fault.start_s = start_dist(rng);
    if (k <= 2) {  // 0,1,2: firmware busy on this specific action
      fault.kind = TransientKind::FirmwareBusy;
      fault.action = action;
      if (!take(used_command_targets, device + "." + action)) continue;
    } else if (k == 3) {  // one dead attempt window, only on recoverable actions
      fault.kind = dead_ok(action) ? TransientKind::DeadAction : TransientKind::FirmwareBusy;
      fault.action = action;
      if (!take(used_command_targets, device + "." + action)) continue;
    } else if (k == 4) {
      fault.kind = TransientKind::StaleStatus;
      if (!take(used_status_devices, device)) continue;
    } else {
      fault.kind = TransientKind::StatusTimeout;
      if (!take(used_status_devices, device)) continue;
    }

    // Every chaos fault is recoverable: it clears either after a bounded
    // number of affected attempts or a bounded modeled-time window —
    // whichever a bounded retry/re-poll ladder reaches first.
    if (fault.kind == TransientKind::FirmwareBusy) {
      // Draw both bounds; either retries or backoff waiting clears it.
      fault.clear_after_attempts = clear_n_dist(rng);
      fault.clear_after_s = clear_s_dist(rng);
    } else {
      // Dead actions and status faults clear by attempts so that re-polls
      // (which may advance the clock only slightly) are guaranteed to see
      // fresh data within the policy's re-poll budget.
      fault.clear_after_attempts = clear_n_dist(rng);
    }
    schedule.add(std::move(fault));
    ++added;
  }
  return schedule;
}

}  // namespace

FaultSchedule FaultSchedule::chaos(
    unsigned seed, const std::vector<std::pair<std::string, std::string>>& device_actions,
    const ChaosOptions& options) {
  std::mt19937 rng(seed);
  return chaos_draw(rng, device_actions, options);
}

FaultSchedule FaultSchedule::chaos(
    std::mt19937_64& rng, const std::vector<std::pair<std::string, std::string>>& device_actions,
    const ChaosOptions& options) {
  return chaos_draw(rng, device_actions, options);
}

}  // namespace rabit::dev
