#include "devices/device.hpp"

#include <algorithm>

namespace rabit::dev {

std::string_view to_string(DeviceCategory c) {
  switch (c) {
    case DeviceCategory::Container: return "container";
    case DeviceCategory::RobotArm: return "robot_arm";
    case DeviceCategory::DosingSystem: return "dosing_system";
    case DeviceCategory::ActionDevice: return "action_device";
  }
  return "unknown";
}

std::optional<DeviceCategory> parse_device_category(std::string_view name) {
  if (name == "container") return DeviceCategory::Container;
  if (name == "robot_arm") return DeviceCategory::RobotArm;
  if (name == "dosing_system") return DeviceCategory::DosingSystem;
  if (name == "action_device") return DeviceCategory::ActionDevice;
  return std::nullopt;
}

std::string Command::describe() const {
  std::string out = device + "." + action + "(";
  bool first = true;
  if (args.is_object()) {
    for (const auto& [k, v] : args.as_object()) {
      if (!first) out += ", ";
      first = false;
      out += k + "=" + json::serialize(v);
    }
  }
  out += ")";
  if (source_line > 0) out += " @line " + std::to_string(source_line);
  return out;
}

std::vector<std::string> diff(const LabStateSnapshot& a, const LabStateSnapshot& b) {
  std::vector<std::string> out;
  auto scan = [&out](const LabStateSnapshot& lhs, const LabStateSnapshot& rhs, bool both_sides) {
    for (const auto& [dev_id, vars] : lhs) {
      auto rhs_dev = rhs.find(dev_id);
      if (rhs_dev == rhs.end()) {
        out.push_back(dev_id + ".*");
        continue;
      }
      for (const auto& [var, value] : vars) {
        auto rhs_var = rhs_dev->second.find(var);
        if (rhs_var == rhs_dev->second.end() || !(rhs_var->second == value)) {
          out.push_back(dev_id + "." + var);
        }
      }
      if (both_sides) {
        // Variables present only on the rhs.
        for (const auto& [var, value] : rhs_dev->second) {
          (void)value;
          if (vars.find(var) == vars.end()) out.push_back(dev_id + "." + var);
        }
      }
    }
  };
  scan(a, b, /*both_sides=*/true);
  for (const auto& [dev_id, vars] : b) {
    (void)vars;
    if (a.find(dev_id) == a.end()) out.push_back(dev_id + ".*");
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool FaultPlan::is_dead(std::string_view action) const {
  return std::find(dead_actions.begin(), dead_actions.end(), action) != dead_actions.end();
}

// ---------------------------------------------------------------------------
// Device
// ---------------------------------------------------------------------------

Device::Device(std::string id, DeviceCategory category)
    : id_(std::move(id)), category_(category) {
  if (id_.empty()) throw std::invalid_argument("Device: empty id");
}

StateMap Device::observed_state() const {
  StateMap out = state_;
  for (const auto& [var, value] : fault_.reported_overrides) out[var] = value;
  return out;
}

void Device::execute(const Command& cmd) {
  auto it = handlers_.find(cmd.action);
  if (it == handlers_.end()) {
    throw DeviceError(DeviceError::Code::UnknownAction,
                      id_ + ": unknown action '" + cmd.action + "'");
  }
  if (fault_.is_dead(cmd.action)) {
    // A malfunctioning device accepts the command but nothing happens — the
    // divergence surfaces later via the status command.
    return;
  }
  it->second(cmd.args);
}

std::vector<Hazard> Device::take_hazards() {
  std::vector<Hazard> out = std::move(hazards_);
  hazards_.clear();
  return out;
}

void Device::note_hazard(std::string description, Severity severity) {
  hazards_.push_back(Hazard{id_, std::move(description), severity});
}

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::Low: return "low";
    case Severity::MediumLow: return "medium-low";
    case Severity::MediumHigh: return "medium-high";
    case Severity::High: return "high";
  }
  return "unknown";
}

std::vector<std::string> Device::actions() const {
  std::vector<std::string> out;
  out.reserve(handlers_.size());
  for (const auto& [name, handler] : handlers_) {
    (void)handler;
    out.push_back(name);
  }
  return out;
}

void Device::register_action(std::string name, Handler handler) {
  if (handlers_.contains(name)) {
    throw std::logic_error(id_ + ": duplicate action '" + name + "'");
  }
  handlers_.emplace(std::move(name), std::move(handler));
}

json::Value& Device::var(std::string_view name) {
  auto it = state_.find(name);
  if (it == state_.end()) throw std::logic_error(id_ + ": unknown state variable");
  return it->second;
}

const json::Value& Device::var(std::string_view name) const {
  auto it = state_.find(name);
  if (it == state_.end()) throw std::logic_error(id_ + ": unknown state variable");
  return it->second;
}

void Device::set_var(std::string_view name, json::Value value) {
  state_[std::string(name)] = std::move(value);
}

double Device::require_number(const json::Value& args, std::string_view key) {
  const json::Value* v = args.find(key);
  if (v == nullptr || !v->is_number()) {
    throw DeviceError(DeviceError::Code::BadArgument,
                      "missing or non-numeric argument '" + std::string(key) + "'");
  }
  return v->as_double();
}

std::string Device::require_string(const json::Value& args, std::string_view key) {
  const json::Value* v = args.find(key);
  if (v == nullptr || !v->is_string()) {
    throw DeviceError(DeviceError::Code::BadArgument,
                      "missing or non-string argument '" + std::string(key) + "'");
  }
  return v->as_string();
}

// ---------------------------------------------------------------------------
// DeviceRegistry
// ---------------------------------------------------------------------------

Device& DeviceRegistry::add(std::unique_ptr<Device> device) {
  if (device == nullptr) throw std::invalid_argument("DeviceRegistry::add: null device");
  if (find(device->id()) != nullptr) {
    throw std::invalid_argument("DeviceRegistry::add: duplicate id '" + device->id() + "'");
  }
  devices_.push_back(std::move(device));
  return *devices_.back();
}

Device* DeviceRegistry::find(std::string_view id) {
  for (auto& d : devices_) {
    if (d->id() == id) return d.get();
  }
  return nullptr;
}

const Device* DeviceRegistry::find(std::string_view id) const {
  for (const auto& d : devices_) {
    if (d->id() == id) return d.get();
  }
  return nullptr;
}

Device& DeviceRegistry::at(std::string_view id) {
  if (Device* d = find(id)) return *d;
  throw std::out_of_range("DeviceRegistry: no device '" + std::string(id) + "'");
}

const Device& DeviceRegistry::at(std::string_view id) const {
  if (const Device* d = find(id)) return *d;
  throw std::out_of_range("DeviceRegistry: no device '" + std::string(id) + "'");
}

std::vector<Device*> DeviceRegistry::all() {
  std::vector<Device*> out;
  out.reserve(devices_.size());
  for (auto& d : devices_) out.push_back(d.get());
  return out;
}

std::vector<const Device*> DeviceRegistry::all() const {
  std::vector<const Device*> out;
  out.reserve(devices_.size());
  for (const auto& d : devices_) out.push_back(d.get());
  return out;
}

LabStateSnapshot DeviceRegistry::fetch_observed_state() const {
  LabStateSnapshot snap;
  for (const auto& d : devices_) snap[d->id()] = d->observed_state();
  return snap;
}

LabStateSnapshot DeviceRegistry::fetch_true_state() const {
  LabStateSnapshot snap;
  for (const auto& d : devices_) snap[d->id()] = d->state();
  return snap;
}

// ---------------------------------------------------------------------------
// LocationTable
// ---------------------------------------------------------------------------

void LocationTable::add(std::string name, const geom::Vec3& position) {
  for (auto& [n, p] : entries_) {
    if (n == name) {
      p = position;
      return;
    }
  }
  entries_.emplace_back(std::move(name), position);
}

const geom::Vec3* LocationTable::find(std::string_view name) const {
  for (const auto& [n, p] : entries_) {
    if (n == name) return &p;
  }
  return nullptr;
}

const geom::Vec3& LocationTable::at(std::string_view name) const {
  if (const geom::Vec3* p = find(name)) return *p;
  throw std::out_of_range("LocationTable: unknown location '" + std::string(name) + "'");
}

}  // namespace rabit::dev
