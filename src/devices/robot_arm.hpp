// Robot arm device (paper §II-A type 2): moves between locations, picks up
// and places objects. Wraps a kinematic model; physical collision checking
// is done by the backend sweeping the planned trajectory through the scene.
//
// Coordinate frames: command coordinates are in the arm's own frame (the
// paper keeps separate per-arm coordinate systems on the testbed, §IV
// category 2); the mounting transform maps them into the lab frame.
#pragma once

#include "devices/device.hpp"
#include "kinematics/kinematics.hpp"

namespace rabit::dev {

/// How the arm controller reacts to an unreachable target (paper §IV
/// category 4): ViperX silently skips the command; Ned2 throws and halts.
enum class MotionPolicy { SilentSkipOnUnreachable, ThrowOnUnreachable };

/// A planned motion, ready for the backend to collision-sweep and commit.
struct MotionPlan {
  std::optional<kin::JointTrajectory> trajectory;  ///< absent when skipped
  geom::Vec3 target_local;                          ///< requested target, arm frame
  geom::Vec3 target_lab;                            ///< same point, lab frame
  bool skipped = false;  ///< true when the controller silently ignored the move
};

/// State variables:
///   position  (array [x,y,z], arm frame — what the controller reports)
///   pose      ("home" | "sleep" | "custom")
///   gripper   ("open" | "closed")
///   holding   (vial id or "", ground truth only — no gripper sensor exists,
///              so status commands cannot report it; see §IV category 3)
///   inside    (device id or "", ground truth only)
class RobotArmDevice : public Device {
 public:
  RobotArmDevice(std::string id, kin::ArmModel model, MotionPolicy policy);

  [[nodiscard]] const kin::ArmModel& model() const { return model_; }
  [[nodiscard]] MotionPolicy policy() const { return policy_; }
  [[nodiscard]] const kin::JointVector& joints() const { return joints_; }

  /// Arm-frame point -> lab frame.
  [[nodiscard]] geom::Vec3 to_lab(const geom::Vec3& local) const;
  /// Lab-frame point -> arm frame.
  [[nodiscard]] geom::Vec3 to_local(const geom::Vec3& lab) const;

  /// Current end-effector position in the arm frame.
  [[nodiscard]] geom::Vec3 position_local() const;
  /// Current end-effector position in the lab frame.
  [[nodiscard]] geom::Vec3 position_lab() const;

  /// Plans a move to `target_local` (arm frame). Unreachable targets follow
  /// the motion policy: either a skipped plan or a DeviceError.
  [[nodiscard]] MotionPlan plan_move(const geom::Vec3& target_local,
                                     std::size_t samples = 32) const;
  /// Plans a move to a named joint pose.
  [[nodiscard]] MotionPlan plan_pose(std::string_view pose_name, std::size_t samples = 32) const;

  /// Overrides the joint configuration behind "home" or "sleep" (arms ship
  /// with generic defaults; decks tune them to their mounting).
  void set_named_pose(std::string_view pose_name, const kin::JointVector& joints);
  [[nodiscard]] const kin::JointVector& named_pose(std::string_view pose_name) const;

  /// Applies a plan: updates joints and the reported position. The named
  /// pose becomes "custom" unless `pose_name` is given.
  void commit_move(const MotionPlan& plan, std::string_view pose_name = "custom");

  /// Gripper state.
  [[nodiscard]] bool gripper_open() const { return var("gripper").as_string() == "open"; }
  void set_gripper(bool open);

  /// Held-object bookkeeping (backend-managed; not observable by status).
  [[nodiscard]] const std::string& holding() const { return var("holding").as_string(); }
  void set_holding(std::string object_id);

  /// Extra reach below the end effector contributed by a held object (m);
  /// 0 when empty-handed. The paper's Bug D fix: "a robot arm's dimensions
  /// may change if it is holding an object".
  [[nodiscard]] double held_clearance() const { return holding().empty() ? 0.0 : held_drop_; }
  void set_held_drop(double meters) { held_drop_ = meters; }
  [[nodiscard]] double held_drop() const { return held_drop_; }

  [[nodiscard]] const std::string& inside_device() const { return var("inside").as_string(); }
  void set_inside_device(std::string device_id);

  /// Status commands report encoder-derived values only: position, pose,
  /// gripper. `holding` and `inside` have no sensor and are omitted — this
  /// is precisely why the paper's Bug C (experiment without a vial) escapes
  /// detection.
  [[nodiscard]] StateMap observed_state() const override;

 private:
  void move_handler(const json::Value& args);

  kin::ArmModel model_;
  MotionPolicy policy_;
  kin::JointVector joints_;
  kin::JointVector home_joints_;
  kin::JointVector sleep_joints_;
  double held_drop_ = 0.07;  ///< a vial hangs ~7 cm below the gripper
};

}  // namespace rabit::dev
