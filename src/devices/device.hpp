// rabit::dev — simulated lab devices.
//
// The paper's production deck (§II) has a lab computer, a six-axis robot arm
// and five automation devices: a solid dosing device, an automated syringe
// pump, a centrifuge, a thermoshaker, and a hotplate. RABIT classifies every
// device into one of four types — Container, Robot Arm, Dosing System, Action
// Device — each fully described by named state variables that actions mutate.
//
// This module provides the device base class (state variables, action
// dispatch, firmware-style limits, fault injection for the malfunction-
// detection path of Fig. 2 lines 13-15) and the command/state vocabulary
// shared by the tracer, the backends, and the RABIT engine.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/geometry.hpp"
#include "geometry/solid.hpp"
#include "json/json.hpp"

namespace rabit::dev {

/// The four device types of paper §II-A.
enum class DeviceCategory { Container, RobotArm, DosingSystem, ActionDevice };

[[nodiscard]] std::string_view to_string(DeviceCategory c);
[[nodiscard]] std::optional<DeviceCategory> parse_device_category(std::string_view name);

/// One intercepted device command: the unit RABIT reasons about (Fig. 2's
/// a_next). Args are a JSON object so heterogeneous devices share one shape.
struct Command {
  std::string device;  ///< target device id
  std::string action;  ///< action label, e.g. "move_to", "set_door"
  json::Value args;    ///< JSON object of named arguments

  /// 1-based script line that issued the command; 0 when synthetic. Alerts
  /// carry this so researchers can find the offending statement.
  int source_line = 0;

  [[nodiscard]] std::string describe() const;
};

/// Named state variables fully describing a device (paper §II-A), e.g.
/// deviceDoorStatus, robotArmHolding.
using StateMap = std::map<std::string, json::Value, std::less<>>;

/// Snapshot of every device's state: RABIT's S_current / S_expected /
/// S_actual in the Fig. 2 algorithm.
using LabStateSnapshot = std::map<std::string, StateMap, std::less<>>;

/// Variables differing between two snapshots, as "device.var" strings.
[[nodiscard]] std::vector<std::string> diff(const LabStateSnapshot& a, const LabStateSnapshot& b);

/// Raised when a device's own firmware refuses a command (paper §I: e.g. the
/// hotplate's built-in safe temperature limit). These checks exist *below*
/// RABIT and keep working alongside it.
class DeviceError : public std::runtime_error {
 public:
  enum class Code { UnknownAction, BadArgument, FirmwareRejected, InvalidState };

  DeviceError(Code code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  [[nodiscard]] Code code() const { return code_; }

 private:
  Code code_;
};

/// Forced divergence between a device's true state and what its status
/// command reports, plus actions that silently fail — both model the
/// "device malfunction" cases Fig. 2 lines 13-15 detect.
struct FaultPlan {
  /// Status command reports these values regardless of the true state.
  StateMap reported_overrides;
  /// These actions are accepted but have no physical effect.
  std::vector<std::string> dead_actions;

  [[nodiscard]] bool is_dead(std::string_view action) const;
};

/// Damage severity taxonomy of the paper's Table V.
enum class Severity {
  Low,         ///< wasted chemical materials (e.g. spilled solid)
  MediumLow,   ///< breakage of glassware
  MediumHigh,  ///< harm to platform, walls, grids, or another cheap arm
  High,        ///< breaking expensive lab equipment
};

[[nodiscard]] std::string_view to_string(Severity s);

/// A physically undesirable event that actually happened inside a device
/// (spilled solid, broken glass door, ...). Hazards are ground truth: the
/// evaluation scores RABIT by whether an alert fired *before* the hazard.
struct Hazard {
  std::string device;
  std::string description;
  Severity severity = Severity::Low;
};

/// Base class for every simulated device.
class Device {
 public:
  Device(std::string id, DeviceCategory category);
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& id() const { return id_; }
  [[nodiscard]] DeviceCategory category() const { return category_; }

  /// The device's true state (ground truth; tests and the physical scene use
  /// this).
  [[nodiscard]] const StateMap& state() const { return state_; }

  /// What the device's status command reports — the paper's FetchState()
  /// input. Diverges from state() under an active fault plan; devices with
  /// unsensed variables (e.g. a gripper without a pressure sensor) override
  /// this to omit them.
  [[nodiscard]] virtual StateMap observed_state() const;

  /// Executes an action, updating state. Throws DeviceError on firmware
  /// rejection or unknown actions. Dead actions (fault plan) return silently.
  void execute(const Command& cmd);

  /// Actions this device accepts.
  [[nodiscard]] std::vector<std::string> actions() const;

  /// The device's physical footprint as a cuboid in lab coordinates, when it
  /// occupies space on the deck (containers riding in a grid do not).
  [[nodiscard]] virtual std::optional<geom::Aabb> footprint() const { return std::nullopt; }

  /// A refined (non-cuboid) shape, when the cuboid is a poor fit (§V-C:
  /// hemispherical centrifuge, bumped thermoshaker). Its bounding box must
  /// equal footprint(). Defaults to "the cuboid is exact".
  [[nodiscard]] virtual std::optional<geom::Solid> shape() const { return std::nullopt; }

  void set_fault_plan(FaultPlan plan) { fault_ = std::move(plan); }
  void clear_fault_plan() { fault_ = FaultPlan{}; }
  [[nodiscard]] const FaultPlan& fault_plan() const { return fault_; }

  /// Returns and clears hazards accumulated since the last call. Backends
  /// drain this after every command.
  [[nodiscard]] std::vector<Hazard> take_hazards();

 protected:
  using Handler = std::function<void(const json::Value& args)>;

  /// Registers an action handler; called from derived-class constructors.
  void register_action(std::string name, Handler handler);

  /// Records a ground-truth hazard (also callable by backends for
  /// cross-device physics like arm/door collisions).
 public:
  void note_hazard(std::string description, Severity severity = Severity::Low);

 protected:
  /// Direct state access for derived classes.
  [[nodiscard]] json::Value& var(std::string_view name);
  [[nodiscard]] const json::Value& var(std::string_view name) const;
  void set_var(std::string_view name, json::Value value);

  /// Argument helpers (throw DeviceError::BadArgument on absence/mismatch).
  [[nodiscard]] static double require_number(const json::Value& args, std::string_view key);
  [[nodiscard]] static std::string require_string(const json::Value& args, std::string_view key);

 private:
  std::string id_;
  DeviceCategory category_;
  StateMap state_;
  std::map<std::string, Handler, std::less<>> handlers_;
  FaultPlan fault_;
  std::vector<Hazard> hazards_;
};

/// Owns all devices of a lab; the single source a backend and RABIT query.
class DeviceRegistry {
 public:
  /// Adds a device; throws std::invalid_argument on duplicate id. Returns a
  /// reference to the stored device.
  Device& add(std::unique_ptr<Device> device);

  [[nodiscard]] Device* find(std::string_view id);
  [[nodiscard]] const Device* find(std::string_view id) const;

  /// Throws std::out_of_range when absent.
  [[nodiscard]] Device& at(std::string_view id);
  [[nodiscard]] const Device& at(std::string_view id) const;

  [[nodiscard]] std::size_t size() const { return devices_.size(); }

  /// Stable iteration in insertion order.
  [[nodiscard]] std::vector<Device*> all();
  [[nodiscard]] std::vector<const Device*> all() const;

  /// Full lab snapshot from every device's status command (FetchState()).
  [[nodiscard]] LabStateSnapshot fetch_observed_state() const;

  /// Full ground-truth snapshot.
  [[nodiscard]] LabStateSnapshot fetch_true_state() const;

 private:
  std::vector<std::unique_ptr<Device>> devices_;
};

/// Named deck locations (the hardcoded coordinate tables of Fig. 6).
class LocationTable {
 public:
  void add(std::string name, const geom::Vec3& position);
  [[nodiscard]] const geom::Vec3* find(std::string_view name) const;
  [[nodiscard]] const geom::Vec3& at(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const { return find(name) != nullptr; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<std::pair<std::string, geom::Vec3>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, geom::Vec3>> entries_;
};

}  // namespace rabit::dev
