#include "devices/robot_arm.hpp"

namespace rabit::dev {

namespace {

json::Value position_to_json(const geom::Vec3& p) {
  json::Array arr;
  arr.emplace_back(p.x);
  arr.emplace_back(p.y);
  arr.emplace_back(p.z);
  return json::Value(std::move(arr));
}

geom::Vec3 position_from_args(const json::Value& args) {
  const json::Value* v = args.find("position");
  if (v == nullptr || !v->is_array() || v->as_array().size() != 3) {
    throw DeviceError(DeviceError::Code::BadArgument,
                      "move_to requires 'position' = [x, y, z]");
  }
  const json::Array& a = v->as_array();
  return geom::Vec3(a[0].as_double(), a[1].as_double(), a[2].as_double());
}

}  // namespace

RobotArmDevice::RobotArmDevice(std::string id, kin::ArmModel model, MotionPolicy policy)
    : Device(std::move(id), DeviceCategory::RobotArm),
      model_(std::move(model)),
      policy_(policy),
      joints_(kin::home_configuration()),
      home_joints_(kin::home_configuration()),
      sleep_joints_(kin::sleep_configuration()) {
  set_var("position", position_to_json(position_local()));
  set_var("pose", "home");
  set_var("gripper", "open");
  set_var("holding", "");
  set_var("inside", "");

  register_action("move_to", [this](const json::Value& args) { move_handler(args); });
  // Vendor APIs often expose several commands for the same action (Ned2's
  // move_pose vs move_to) — the paper's "multiple commands per action" gap.
  register_action("move_pose", [this](const json::Value& args) { move_handler(args); });
  register_action("go_home", [this](const json::Value&) {
    commit_move(plan_pose("home"), "home");
  });
  register_action("go_sleep", [this](const json::Value&) {
    commit_move(plan_pose("sleep"), "sleep");
  });
  register_action("open_gripper", [this](const json::Value&) { set_gripper(true); });
  register_action("close_gripper", [this](const json::Value&) { set_gripper(false); });
}

geom::Vec3 RobotArmDevice::to_lab(const geom::Vec3& local) const {
  return model_.base().apply(local);
}

geom::Vec3 RobotArmDevice::to_local(const geom::Vec3& lab) const {
  return model_.base().inverse().apply(lab);
}

geom::Vec3 RobotArmDevice::position_local() const { return to_local(model_.forward(joints_)); }

geom::Vec3 RobotArmDevice::position_lab() const { return model_.forward(joints_); }

MotionPlan RobotArmDevice::plan_move(const geom::Vec3& target_local, std::size_t samples) const {
  MotionPlan plan;
  plan.target_local = target_local;
  plan.target_lab = to_lab(target_local);

  kin::IkResult ik = model_.inverse(plan.target_lab, joints_);
  if (!ik.joints) {
    if (policy_ == MotionPolicy::SilentSkipOnUnreachable) {
      plan.skipped = true;  // the ViperX behaviour: command quietly ignored
      return plan;
    }
    throw DeviceError(DeviceError::Code::FirmwareRejected,
                      id() + ": cannot compute trajectory (" +
                          std::string(kin::to_string(ik.error)) + ")");
  }
  plan.trajectory = kin::JointTrajectory(joints_, *ik.joints, samples);
  return plan;
}

MotionPlan RobotArmDevice::plan_pose(std::string_view pose_name, std::size_t samples) const {
  kin::JointVector goal = named_pose(pose_name);
  MotionPlan plan;
  plan.target_lab = model_.forward(goal);
  plan.target_local = to_local(plan.target_lab);
  plan.trajectory = kin::JointTrajectory(joints_, goal, samples);
  return plan;
}

void RobotArmDevice::commit_move(const MotionPlan& plan, std::string_view pose_name) {
  if (plan.skipped || !plan.trajectory) return;  // nothing physically happened
  joints_ = plan.trajectory->goal();
  var("position") = position_to_json(position_local());
  var("pose") = std::string(pose_name);
}

void RobotArmDevice::set_named_pose(std::string_view pose_name, const kin::JointVector& joints) {
  if (pose_name == "home") {
    home_joints_ = joints;
  } else if (pose_name == "sleep") {
    sleep_joints_ = joints;
  } else {
    throw DeviceError(DeviceError::Code::BadArgument,
                      id() + ": unknown pose '" + std::string(pose_name) + "'");
  }
}

const kin::JointVector& RobotArmDevice::named_pose(std::string_view pose_name) const {
  if (pose_name == "home") return home_joints_;
  if (pose_name == "sleep") return sleep_joints_;
  throw DeviceError(DeviceError::Code::BadArgument,
                    id() + ": unknown pose '" + std::string(pose_name) + "'");
}

void RobotArmDevice::set_gripper(bool open) { var("gripper") = open ? "open" : "closed"; }

void RobotArmDevice::set_holding(std::string object_id) { var("holding") = std::move(object_id); }

void RobotArmDevice::set_inside_device(std::string device_id) {
  var("inside") = std::move(device_id);
}

StateMap RobotArmDevice::observed_state() const {
  StateMap out = Device::observed_state();
  out.erase("holding");
  out.erase("inside");
  return out;
}

void RobotArmDevice::move_handler(const json::Value& args) {
  MotionPlan plan = plan_move(position_from_args(args));
  commit_move(plan);
}

}  // namespace rabit::dev
