// The automation stations of the Hein Lab deck (paper §II): solid dosing
// device, automated syringe pump, hotplate, centrifuge, thermoshaker — plus
// config-driven generic devices used when adapting RABIT to a new lab
// (paper §V-B, the Berlinguette Lab).
//
// Stations expose their own firmware-level checks (which exist below RABIT
// and stay enabled during evaluation, §IV) and record ground-truth hazards.
// Cross-device physics — substance transfer into a vial, a door hitting an
// arm — is the backend's job; stations only manage their local state.
#pragma once

#include "devices/device.hpp"

namespace rabit::dev {

/// Common door handling for stations with a software-controlled door.
/// Door status is "open", "closed", or "broken" (after a collision).
class DoorMixin {
 public:
  virtual ~DoorMixin() = default;
  [[nodiscard]] virtual std::string door_status() const = 0;
  virtual void break_door() = 0;
};

/// Solid dosing device (paper Fig. 1): doses powder into a vial placed
/// inside; has a fragile software-controlled glass door.
///
/// State: doorStatus, running (0/1), containerInside (vial id or ""),
/// pendingDoseMg (requested by the last run_action, consumed by the backend
/// when it performs the physical transfer).
class DosingDeviceModel : public Device, public DoorMixin {
 public:
  DosingDeviceModel(std::string id, const geom::Aabb& footprint);

  [[nodiscard]] std::optional<geom::Aabb> footprint() const override { return footprint_; }

  [[nodiscard]] std::string door_status() const override {
    return var("doorStatus").as_string();
  }
  void break_door() override;

  [[nodiscard]] bool running() const { return var("running").as_int() == 1; }
  [[nodiscard]] const std::string& container_inside() const {
    return var("containerInside").as_string();
  }
  void set_container_inside(std::string vial_id);

  /// Dose requested by the most recent run_action; reading resets it to 0.
  [[nodiscard]] double take_pending_dose_mg();

  /// No sensor detects a vial in the chamber, and the pending dose is an
  /// internal bookkeeping variable, so neither is reported by status.
  [[nodiscard]] StateMap observed_state() const override {
    StateMap out = Device::observed_state();
    out.erase("containerInside");
    out.erase("pendingDoseMg");
    return out;
  }

 private:
  geom::Aabb footprint_;
};

/// Automated syringe pump: draws solvent from its reservoir, then dispenses
/// into a target container (the transfer itself is backend physics).
///
/// State: reservoirMl, heldMl, pendingDispenseMl, pendingTarget.
class SyringePumpModel : public Device {
 public:
  SyringePumpModel(std::string id, double reservoir_ml, const geom::Aabb& footprint);

  [[nodiscard]] std::optional<geom::Aabb> footprint() const override { return footprint_; }

  [[nodiscard]] double reservoir_ml() const { return var("reservoirMl").as_double(); }
  [[nodiscard]] double held_ml() const { return var("heldMl").as_double(); }

  /// Volume and target of the most recent dose_solvent; reading resets them.
  struct PendingDispense {
    double volume_ml = 0.0;
    std::string target;
  };
  [[nodiscard]] PendingDispense take_pending_dispense();

  /// Removes up to `volume` from the held syringe content; returns the
  /// amount actually available (backend calls this during the transfer).
  double drain_held(double volume_ml);

  /// Pending-dispense bookkeeping is internal, not reported by status.
  [[nodiscard]] StateMap observed_state() const override {
    StateMap out = Device::observed_state();
    out.erase("pendingDispenseMl");
    out.erase("pendingTarget");
    return out;
  }

 private:
  geom::Aabb footprint_;
};

/// Hotplate with magnetic stirrer. Firmware enforces an absolute temperature
/// limit (paper §I: "the hotplate allows setting a safe temperature limit");
/// RABIT's rule 11 threshold is typically configured *below* it.
///
/// State: targetC, stirRpm, active, containerOn.
class HotplateModel : public Device {
 public:
  HotplateModel(std::string id, double firmware_limit_c, double hazard_threshold_c,
                const geom::Aabb& footprint);

  [[nodiscard]] std::optional<geom::Aabb> footprint() const override { return footprint_; }

  [[nodiscard]] double target_c() const { return var("targetC").as_double(); }
  [[nodiscard]] bool active() const { return var("active").as_int() == 1; }
  [[nodiscard]] const std::string& container_on() const { return var("containerOn").as_string(); }
  void set_container_on(std::string vial_id);
  [[nodiscard]] double firmware_limit_c() const { return firmware_limit_c_; }

  /// The plate cannot sense whether a vial stands on it.
  [[nodiscard]] StateMap observed_state() const override {
    StateMap out = Device::observed_state();
    out.erase("containerOn");
    return out;
  }

 private:
  double firmware_limit_c_;
  double hazard_threshold_c_;
  geom::Aabb footprint_;
};

/// Centrifuge with a door and a rotor platter whose loading port is marked
/// by a red dot; loading is only safe with the red dot facing North (the
/// Hein Lab's custom rule 3, Table IV).
///
/// State: doorStatus, spinning, redDot ("N"/"E"/"S"/"W"), containerInside.
class CentrifugeModel : public Device, public DoorMixin {
 public:
  CentrifugeModel(std::string id, const geom::Aabb& footprint);

  [[nodiscard]] std::optional<geom::Aabb> footprint() const override { return footprint_; }

  /// "A centrifuge resembles a hemisphere more than a cuboid" (§V-A): a
  /// cylindrical base topped by a dome, fitted inside the cuboid footprint.
  [[nodiscard]] std::optional<geom::Solid> shape() const override;

  [[nodiscard]] std::string door_status() const override {
    return var("doorStatus").as_string();
  }
  void break_door() override;

  [[nodiscard]] bool spinning() const { return var("spinning").as_int() == 1; }
  [[nodiscard]] const std::string& red_dot() const { return var("redDot").as_string(); }
  [[nodiscard]] const std::string& container_inside() const {
    return var("containerInside").as_string();
  }
  void set_container_inside(std::string vial_id);

  /// No sensor detects the container.
  [[nodiscard]] StateMap observed_state() const override {
    StateMap out = Device::observed_state();
    out.erase("containerInside");
    return out;
  }

 private:
  geom::Aabb footprint_;
};

/// Thermoshaker: heats and shakes a vial seated in its block.
///
/// State: targetC, shakeRpm, active, containerInside.
class ThermoshakerModel : public Device {
 public:
  ThermoshakerModel(std::string id, double firmware_limit_c, const geom::Aabb& footprint);

  [[nodiscard]] std::optional<geom::Aabb> footprint() const override { return footprint_; }

  /// "The thermoshaker has a bump at the top" (§V-A): a low body with a
  /// narrower block on top, fitted inside the cuboid footprint.
  [[nodiscard]] std::optional<geom::Solid> shape() const override;

  [[nodiscard]] bool active() const { return var("active").as_int() == 1; }
  [[nodiscard]] double shake_rpm() const { return var("shakeRpm").as_double(); }
  [[nodiscard]] const std::string& container_inside() const {
    return var("containerInside").as_string();
  }
  void set_container_inside(std::string vial_id);

  /// No sensor detects the container.
  [[nodiscard]] StateMap observed_state() const override {
    StateMap out = Device::observed_state();
    out.erase("containerInside");
    return out;
  }

 private:
  double firmware_limit_c_;
  geom::Aabb footprint_;
};

/// Config-driven action device for new labs (paper §V-B): named value
/// actions with optional firmware thresholds, optional door, start/stop.
/// Covers the Berlinguette decapper, spin coater, spray nozzles, and XRF
/// stations without writing a new C++ class per device.
class GenericActionDevice : public Device, public DoorMixin {
 public:
  struct ValueActionSpec {
    std::string action;                     ///< e.g. "set_spin_speed"
    std::string variable;                   ///< state variable it sets
    std::string argument;                   ///< argument name, e.g. "rpm"
    std::optional<double> firmware_max;     ///< firmware rejection threshold
  };

  GenericActionDevice(std::string id, std::vector<ValueActionSpec> value_actions, bool has_door,
                      std::optional<geom::Aabb> footprint);

  /// The configured value actions (so RABIT's config can mirror them).
  [[nodiscard]] const std::vector<ValueActionSpec>& value_actions() const {
    return value_actions_;
  }

  [[nodiscard]] std::optional<geom::Aabb> footprint() const override { return footprint_; }

  [[nodiscard]] bool has_door() const { return has_door_; }
  [[nodiscard]] std::string door_status() const override;
  void break_door() override;

  [[nodiscard]] bool active() const { return var("active").as_int() == 1; }
  [[nodiscard]] const std::string& container_inside() const {
    return var("containerInside").as_string();
  }
  void set_container_inside(std::string vial_id);

  /// No sensor detects the container.
  [[nodiscard]] StateMap observed_state() const override {
    StateMap out = Device::observed_state();
    out.erase("containerInside");
    return out;
  }

 private:
  bool has_door_;
  std::optional<geom::Aabb> footprint_;
  std::vector<ValueActionSpec> value_actions_;
};

/// A station with several independently actuated doors (§V-C: "Devices
/// might have multiple doors, for instance, for two robot arms to approach
/// the device simultaneously. In its current state, RABIT does not handle
/// this."). Each door guards one approach side, given as a horizontal unit
/// direction from the station's center; an arm entering from a side needs
/// *that* side's door open.
///
/// State: door_<name> ("open"/"closed"/"broken") per door, active,
/// containerInside.
class MultiDoorStation : public Device {
 public:
  struct DoorSpec {
    std::string name;                ///< e.g. "north"
    geom::Vec3 approach_direction;   ///< horizontal unit vector, center -> side
  };

  MultiDoorStation(std::string id, std::vector<DoorSpec> doors, const geom::Aabb& footprint);

  [[nodiscard]] std::optional<geom::Aabb> footprint() const override { return footprint_; }

  [[nodiscard]] const std::vector<DoorSpec>& doors() const { return doors_; }
  [[nodiscard]] std::string door_status(std::string_view door) const;
  void break_door(std::string_view door);

  /// The door guarding an approach from `from_lab` (largest dot product of
  /// the horizontal offset with the doors' directions).
  [[nodiscard]] const DoorSpec& door_facing(const geom::Vec3& from_lab) const;

  [[nodiscard]] bool active() const { return var("active").as_int() == 1; }
  [[nodiscard]] const std::string& container_inside() const {
    return var("containerInside").as_string();
  }
  void set_container_inside(std::string vial_id);

  /// No sensor detects the container.
  [[nodiscard]] StateMap observed_state() const override {
    StateMap out = Device::observed_state();
    out.erase("containerInside");
    return out;
  }

 private:
  [[nodiscard]] static std::string door_var(std::string_view door) {
    return "door_" + std::string(door);
  }

  std::vector<DoorSpec> doors_;
  geom::Aabb footprint_;
};

/// A human-proximity sensor (§V-B: the Berlinguette Lab used safety sensors
/// before abandoning them over false alarms; the paper suggests treating
/// "sensors as a new device class" so RABIT can respond to them). The sensor
/// watches a zone; while it reports occupied, RABIT's S1 rule forbids arm
/// targets inside that zone. Unlike grippers, the sensor IS observable —
/// that is its entire purpose.
///
/// State: occupied (0/1).
class ProximitySensor : public Device {
 public:
  ProximitySensor(std::string id, const geom::Aabb& zone);

  [[nodiscard]] const geom::Aabb& zone() const { return zone_; }
  [[nodiscard]] bool occupied() const { return var("occupied").as_int() == 1; }
  /// Ground-truth input: a person stepping into / out of the zone.
  void set_occupied(bool occupied);

 private:
  geom::Aabb zone_;
};

}  // namespace rabit::dev
