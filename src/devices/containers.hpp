// Container devices: vials and the grid that holds them (paper §II-A type 1:
// "any object that can contain a substance and typically has a stopper").
#pragma once

#include "devices/device.hpp"

namespace rabit::dev {

/// A vial: holds solid (mg) and liquid (mL), may carry a stopper. Overfilling
/// or transferring through a stopper spills material — a ground-truth hazard
/// of the paper's "Low" severity class (wasted chemicals).
///
/// State variables:
///   hasStopper   (0/1)
///   solidMg      (double)
///   liquidMl     (double)
///   capacityMg   (double, constant)
///   capacityMl   (double, constant)
///   location     (string: a deck location name or "arm:<robot-id>")
///   broken       (0/1)
///   spilledMg    (double, cumulative waste)
///   spilledMl    (double, cumulative waste)
class Vial : public Device {
 public:
  Vial(std::string id, double capacity_mg, double capacity_ml, std::string initial_location);

  /// Adds solid; amount above capacity (or all of it, through a stopper or
  /// once broken) spills.
  void add_solid(double amount_mg);
  void add_liquid(double volume_ml);

  /// Removes up to the requested amount; returns what actually came out.
  double draw_liquid(double volume_ml);
  double draw_solid(double amount_mg);

  void set_stopper(bool on);
  [[nodiscard]] bool has_stopper() const { return var("hasStopper").as_int() == 1; }
  [[nodiscard]] double solid_mg() const { return var("solidMg").as_double(); }
  [[nodiscard]] double liquid_ml() const { return var("liquidMl").as_double(); }
  [[nodiscard]] bool is_empty() const { return solid_mg() <= 0.0 && liquid_ml() <= 0.0; }
  [[nodiscard]] bool is_broken() const { return var("broken").as_int() == 1; }

  [[nodiscard]] const std::string& location() const { return var("location").as_string(); }
  void set_location(std::string location);

  /// Shatters the vial (dropped or crushed); contents spill.
  void shatter(std::string_view cause);

  /// Contents fly out without breaking the glass (e.g. centrifuged or shaken
  /// without a stopper).
  void spill_contents(std::string_view cause);

  /// A vial is passive glassware: it has no electronics, so status commands
  /// report nothing. RABIT must track vial state purely symbolically.
  [[nodiscard]] StateMap observed_state() const override { return {}; }
};

/// A vial grid: a passive rack occupying deck space. Slots map slot name to
/// the id of the vial sitting there ("" when free).
class VialGrid : public Device {
 public:
  VialGrid(std::string id, std::vector<std::string> slot_names, const geom::Aabb& footprint);

  [[nodiscard]] std::optional<geom::Aabb> footprint() const override { return footprint_; }

  /// Id of the vial in `slot`, or empty when free. Throws on unknown slot.
  [[nodiscard]] std::string occupant(std::string_view slot) const;
  void place(std::string_view slot, std::string vial_id);
  void remove(std::string_view slot);
  [[nodiscard]] std::vector<std::string> slots() const;

  /// A rack has no sensors either.
  [[nodiscard]] StateMap observed_state() const override { return {}; }

 private:
  geom::Aabb footprint_;
};

}  // namespace rabit::dev
