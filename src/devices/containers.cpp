#include "devices/containers.hpp"

#include <algorithm>

namespace rabit::dev {

Vial::Vial(std::string id, double capacity_mg, double capacity_ml, std::string initial_location)
    : Device(std::move(id), DeviceCategory::Container) {
  if (capacity_mg <= 0 || capacity_ml <= 0) {
    throw std::invalid_argument("Vial: capacities must be positive");
  }
  set_var("hasStopper", 0);
  set_var("solidMg", 0.0);
  set_var("liquidMl", 0.0);
  set_var("capacityMg", capacity_mg);
  set_var("capacityMl", capacity_ml);
  set_var("location", std::move(initial_location));
  set_var("broken", 0);
  set_var("spilledMg", 0.0);
  set_var("spilledMl", 0.0);

  register_action("decap", [this](const json::Value&) { set_stopper(false); });
  register_action("recap", [this](const json::Value&) { set_stopper(true); });
  register_action("add_solid",
                  [this](const json::Value& args) { add_solid(require_number(args, "amount")); });
  register_action("add_liquid", [this](const json::Value& args) {
    add_liquid(require_number(args, "volume"));
  });
}

void Vial::add_solid(double amount_mg) {
  if (amount_mg < 0) throw DeviceError(DeviceError::Code::BadArgument, "negative solid amount");
  if (is_broken() || has_stopper()) {
    // Material lands on the stopper or the bench: all of it is wasted.
    var("spilledMg") = var("spilledMg").as_double() + amount_mg;
    note_hazard("solid spilled (" + std::to_string(amount_mg) + " mg wasted)", Severity::Low);
    return;
  }
  double capacity = var("capacityMg").as_double();
  double current = solid_mg();
  double accepted = std::min(amount_mg, capacity - current);
  double overflow = amount_mg - accepted;
  var("solidMg") = current + accepted;
  if (overflow > 0) {
    var("spilledMg") = var("spilledMg").as_double() + overflow;
    note_hazard("vial overfilled, solid spilled (" + std::to_string(overflow) + " mg wasted)",
                Severity::Low);
  }
}

void Vial::add_liquid(double volume_ml) {
  if (volume_ml < 0) throw DeviceError(DeviceError::Code::BadArgument, "negative liquid volume");
  if (is_broken() || has_stopper()) {
    var("spilledMl") = var("spilledMl").as_double() + volume_ml;
    note_hazard("liquid spilled (" + std::to_string(volume_ml) + " mL wasted)", Severity::Low);
    return;
  }
  double capacity = var("capacityMl").as_double();
  double current = liquid_ml();
  double accepted = std::min(volume_ml, capacity - current);
  double overflow = volume_ml - accepted;
  var("liquidMl") = current + accepted;
  if (overflow > 0) {
    var("spilledMl") = var("spilledMl").as_double() + overflow;
    note_hazard("vial overfilled, liquid spilled (" + std::to_string(overflow) + " mL wasted)",
                Severity::Low);
  }
}

double Vial::draw_liquid(double volume_ml) {
  if (volume_ml < 0) throw DeviceError(DeviceError::Code::BadArgument, "negative draw volume");
  if (has_stopper()) return 0.0;  // nothing can come out through a stopper
  double available = liquid_ml();
  double drawn = std::min(volume_ml, available);
  var("liquidMl") = available - drawn;
  return drawn;
}

double Vial::draw_solid(double amount_mg) {
  if (amount_mg < 0) throw DeviceError(DeviceError::Code::BadArgument, "negative draw amount");
  if (has_stopper()) return 0.0;
  double available = solid_mg();
  double drawn = std::min(amount_mg, available);
  var("solidMg") = available - drawn;
  return drawn;
}

void Vial::set_stopper(bool on) { var("hasStopper") = on ? 1 : 0; }

void Vial::set_location(std::string location) { var("location") = std::move(location); }

void Vial::shatter(std::string_view cause) {
  if (is_broken()) return;
  var("broken") = 1;
  var("spilledMg") = var("spilledMg").as_double() + solid_mg();
  var("spilledMl") = var("spilledMl").as_double() + liquid_ml();
  var("solidMg") = 0.0;
  var("liquidMl") = 0.0;
  note_hazard("vial shattered (" + std::string(cause) + "), contents lost",
              Severity::MediumLow);
}

void Vial::spill_contents(std::string_view cause) {
  if (is_empty()) return;
  var("spilledMg") = var("spilledMg").as_double() + solid_mg();
  var("spilledMl") = var("spilledMl").as_double() + liquid_ml();
  var("solidMg") = 0.0;
  var("liquidMl") = 0.0;
  note_hazard("contents spilled (" + std::string(cause) + ")", Severity::Low);
}

// ---------------------------------------------------------------------------
// VialGrid
// ---------------------------------------------------------------------------

VialGrid::VialGrid(std::string id, std::vector<std::string> slot_names,
                   const geom::Aabb& footprint)
    : Device(std::move(id), DeviceCategory::Container), footprint_(footprint) {
  if (slot_names.empty()) throw std::invalid_argument("VialGrid: need at least one slot");
  json::Object slots;
  for (std::string& name : slot_names) slots[name] = std::string();
  set_var("slots", json::Value(std::move(slots)));
}

std::string VialGrid::occupant(std::string_view slot) const {
  const json::Value* v = var("slots").as_object().find(slot);
  if (v == nullptr) {
    throw DeviceError(DeviceError::Code::BadArgument,
                      id() + ": unknown slot '" + std::string(slot) + "'");
  }
  return v->as_string();
}

void VialGrid::place(std::string_view slot, std::string vial_id) {
  if (!occupant(slot).empty()) {
    // Two vials in one slot: the incoming one smashes into the occupant.
    note_hazard("vial placed onto occupied slot '" + std::string(slot) + "', glass broken",
                Severity::MediumLow);
  }
  var("slots").as_object()[slot] = std::move(vial_id);
}

void VialGrid::remove(std::string_view slot) {
  static_cast<void>(occupant(slot));  // validates the slot name
  var("slots").as_object()[slot] = std::string();
}

std::vector<std::string> VialGrid::slots() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : var("slots").as_object()) {
    (void)value;
    out.push_back(name);
  }
  return out;
}

}  // namespace rabit::dev
