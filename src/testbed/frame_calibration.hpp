// rabit::tb — testbed frame-unification calibration (paper §IV category 2).
//
// "To detect collision between two robot arms, RABIT requires a common frame
// of reference. Since Ned2 and ViperX are sourced from different vendors,
// and have varying gripper sizes and low precision, this is challenging. For
// example, transforming both robot arms' coordinate systems to a global
// coordinate system using a transformation matrix resulted in an average
// error of 3cm between the expected and computed positions. Hence, we
// continue using separate coordinate systems."
//
// This module reproduces that experiment: both arms "touch" a set of shared
// calibration points; each measurement carries the arm's positioning noise
// plus a gripper-geometry bias; a rigid transform is fitted between the two
// frames and evaluated on held-out probe points.
#pragma once

#include <random>
#include <vector>

#include "devices/robot_arm.hpp"
#include "geometry/geometry.hpp"

namespace rabit::tb {

struct CalibrationOptions {
  int calibration_points = 8;  ///< matched touch points used for the fit
  int probe_points = 16;       ///< held-out points used to score the fit
  /// Per-measurement positioning noise of each arm (m). The testbed arms
  /// are hobby-grade: ~1 cm effective touch repeatability.
  double measurement_noise_m = 0.01;
  /// Gripper-size mismatch between the vendors (m): a tool-frame offset that
  /// rotates with the approach direction, so the rigid fit cannot absorb it.
  double gripper_mismatch_m = 0.035;
  unsigned seed = 5;
};

struct CalibrationResult {
  geom::FrameFit fit;            ///< fitted transform, arm A frame -> arm B frame
  double mean_probe_error_m = 0; ///< mean |predicted - measured| on probes
  double max_probe_error_m = 0;
  int points_used = 0;
};

/// Runs the calibration experiment between two arms mounted on the same
/// deck. Touch points are sampled inside the overlap of both workspaces.
/// Throws std::runtime_error if the workspaces barely overlap.
[[nodiscard]] CalibrationResult calibrate_frames(const dev::RobotArmDevice& arm_a,
                                                 const dev::RobotArmDevice& arm_b,
                                                 const CalibrationOptions& options = {});

/// The safety margin a collision-avoidance check would need when working in
/// a unified frame with this calibration: fits the paper's conclusion that
/// a ~3 cm error makes the unified frame impractical next to ~2 cm
/// clearances.
[[nodiscard]] double required_safety_margin(const CalibrationResult& result);

}  // namespace rabit::tb
