#include "testbed/frame_calibration.hpp"

#include <cmath>

namespace rabit::tb {

using geom::Vec3;

namespace {

/// A noisy "touch" of a physical point, as reported in the arm's own frame:
/// true local coordinates + positioning noise + a gripper-geometry bias that
/// rotates with the horizontal approach direction (vendor gripper mismatch).
Vec3 measure_touch(const dev::RobotArmDevice& arm, const Vec3& physical_lab,
                   double noise_sigma, double gripper_offset, std::mt19937& rng) {
  std::normal_distribution<double> noise(0.0, noise_sigma);
  Vec3 local = arm.to_local(physical_lab);
  // The gripper contacts the point from the side facing the arm's base: the
  // offset direction depends on where the point lies, so a single rigid
  // transform cannot absorb it.
  Vec3 planar(local.x, local.y, 0.0);
  Vec3 approach = planar.norm() > 1e-9 ? planar.normalized() : Vec3(1, 0, 0);
  return local + approach * gripper_offset + Vec3(noise(rng), noise(rng), noise(rng));
}

}  // namespace

CalibrationResult calibrate_frames(const dev::RobotArmDevice& arm_a,
                                   const dev::RobotArmDevice& arm_b,
                                   const CalibrationOptions& options) {
  if (options.calibration_points < 3) {
    throw std::invalid_argument("calibrate_frames: need at least 3 calibration points");
  }
  std::mt19937 rng(options.seed);

  // Sample physical points reachable by both arms: around the midpoint of
  // the two bases, at bench heights.
  Vec3 base_a = arm_a.model().base().apply(Vec3());
  Vec3 base_b = arm_b.model().base().apply(Vec3());
  Vec3 mid = (base_a + base_b) * 0.5;
  std::uniform_real_distribution<double> dx(-0.12, 0.12);
  std::uniform_real_distribution<double> dz(0.05, 0.25);

  auto sample_shared_point = [&]() -> std::optional<Vec3> {
    for (int attempt = 0; attempt < 64; ++attempt) {
      Vec3 p(mid.x + dx(rng), mid.y + dx(rng), base_a.z + dz(rng));
      if (arm_a.model().reachable(p) && arm_b.model().reachable(p)) return p;
    }
    return std::nullopt;
  };

  std::vector<Vec3> in_a;
  std::vector<Vec3> in_b;
  for (int i = 0; i < options.calibration_points; ++i) {
    auto p = sample_shared_point();
    if (!p) throw std::runtime_error("calibrate_frames: workspaces barely overlap");
    in_a.push_back(measure_touch(arm_a, *p, options.measurement_noise_m,
                                 options.gripper_mismatch_m, rng));
    in_b.push_back(measure_touch(arm_b, *p, options.measurement_noise_m,
                                 -options.gripper_mismatch_m, rng));
  }

  CalibrationResult result;
  result.fit = geom::fit_frame(in_a, in_b);
  result.points_used = options.calibration_points;

  // Score on held-out probe points.
  double sum = 0;
  int scored = 0;
  for (int i = 0; i < options.probe_points; ++i) {
    auto p = sample_shared_point();
    if (!p) continue;
    Vec3 measured_a = measure_touch(arm_a, *p, options.measurement_noise_m,
                                    options.gripper_mismatch_m, rng);
    Vec3 measured_b = measure_touch(arm_b, *p, options.measurement_noise_m,
                                    -options.gripper_mismatch_m, rng);
    double err = result.fit.transform.apply(measured_a).distance_to(measured_b);
    sum += err;
    result.max_probe_error_m = std::max(result.max_probe_error_m, err);
    ++scored;
  }
  if (scored == 0) throw std::runtime_error("calibrate_frames: no probe points reachable");
  result.mean_probe_error_m = sum / scored;
  return result;
}

double required_safety_margin(const CalibrationResult& result) {
  // A unified-frame collision check must pad every clearance by the worst
  // disagreement it may see; 2x the mean observed error is the usual
  // engineering floor, bounded below by the worst probe.
  return std::max(2.0 * result.mean_probe_error_m, result.max_probe_error_m);
}

}  // namespace rabit::tb
