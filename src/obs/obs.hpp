// rabit::obs — first-class observability for the interception pipeline.
//
// The paper's value claim is that interception is cheap and trustworthy;
// SOTER-style runtime assurance argues a monitor must leave machine-readable
// evidence of what it observed and decided. This module is that evidence
// layer:
//
//   * Registry  — an injectable metrics registry (counters, gauges, fixed-
//                 bucket latency histograms with *exact* nearest-rank
//                 percentile extraction) with a Prometheus-style text dump;
//   * SpanRecord — one span per intercepted command, carrying the phase
//                 timeline (canonicalize → precondition → dispatch →
//                 postcondition → recovery) and the verdict;
//   * RungRecord — one event per recovery-ladder rung (retry, re-poll,
//                 watchdog, quarantine, safe-state, halt);
//   * Sink / Collector — where spans and rungs go. Components take a
//                 non-owning Sink*; a null sink disables every hook behind a
//                 single branch (the zero-cost-when-off contract, enforced
//                 by bench_latency_overhead);
//   * exporters — structured JSONL events, Chrome trace-event JSON (loadable
//                 in Perfetto/chrome://tracing), Prometheus text.
//
// Determinism contract: exported *events* (JSONL and Chrome trace) carry
// only modeled-lab-time fields, sequence numbers, and verdicts — never wall
// clock — so a fleet's merged export is byte-identical across runs and
// worker counts, exactly like the trace JSONL guarantee. Wall-clock latency
// lives in Registry histograms and surfaces only through the Prometheus
// dump, which is schema-stable but not byte-stable.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rabit::obs {

// ---------------------------------------------------------------------------
// Percentile convention (shared with fleet::summarize_latencies)
// ---------------------------------------------------------------------------

/// The exact percentile convention every RABIT latency summary uses:
/// nearest-rank on ascending-sorted samples, rank = clamp(ceil(q * N), 1, N),
/// returning sorted[rank - 1]. With N = 1 every quantile is the sample; with
/// N = 2, q <= 0.5 selects the smaller sample and q > 0.5 the larger. The
/// clamp makes the rank robust to floating-point round-up at q * N == N.
/// `sorted` must be ascending; returns 0.0 when empty.
[[nodiscard]] double nearest_rank(const std::vector<double>& sorted, double q);

/// Real microseconds of CPU time consumed by the *calling thread*
/// (CLOCK_THREAD_CPUTIME_ID where available; steady_clock otherwise).
/// Per-check latency measurements use this instead of wall clock so a
/// worker preempted mid-check does not absorb a whole scheduler quantum
/// into the check's measured cost: on an oversubscribed box, wall-clock
/// check tails spike to ~10 ms of involuntary wait while the CPU actually
/// spent checking stays in the tens of microseconds. Differences of this
/// clock are only meaningful within one thread — exactly how the per-check
/// timers use it.
[[nodiscard]] double thread_cpu_now_us();

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Monotone counter. Handles returned by Registry stay valid for the
/// registry's lifetime.
class Counter {
 public:
  void increment(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  friend class Registry;
  std::uint64_t value_ = 0;
};

/// Point-in-time value. Fleet merge sums gauges (each stream contributes its
/// share of a fleet-wide quantity).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  friend class Registry;
  double value_ = 0.0;
};

/// Fixed-bucket latency histogram that additionally retains every sample so
/// percentile() is *exact* (nearest-rank, see nearest_rank above) rather
/// than bucket-interpolated. Buckets exist for the Prometheus dump;
/// percentiles come from the samples.
class Histogram {
 public:
  void observe(double v);
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double sum() const { return sum_; }
  /// Exact nearest-rank percentile over all observed samples; 0.0 when empty.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count of samples <= bounds()[i].
  [[nodiscard]] std::uint64_t cumulative_count(std::size_t bucket) const;

  /// Default latency buckets, in microseconds: 1 to 1e6 in half-decade steps.
  [[nodiscard]] static std::vector<double> default_latency_bounds_us();

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);
  std::vector<double> bounds_;          ///< ascending upper bounds (le)
  std::vector<std::uint64_t> buckets_;  ///< per-bucket (non-cumulative) counts
  std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// A process-wide but injectable metrics registry. Registration, lookup,
/// merge, and the Prometheus dump take the registry mutex; the returned
/// metric *handles* are deliberately unsynchronized (an increment is one
/// add, not a lock). The fleet therefore gives every stream its own
/// registry and merges them deterministically at join (see merge_from) —
/// cross-thread sharing of one registry's handles is not supported, and the
/// 64-stream TSan audit test pins that the per-stream design stays clean.
///
/// Metric keys are `family` (a Prometheus metric name) plus an optional
/// pre-formatted `labels` string such as `verdict="pass"`. The Prometheus
/// dump orders families and label sets lexicographically, so its layout is
/// deterministic.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view family, std::string_view labels = "",
                   std::string_view help = "");
  Gauge& gauge(std::string_view family, std::string_view labels = "",
               std::string_view help = "");
  Histogram& histogram(std::string_view family, std::string_view help = "",
                       std::vector<double> bounds = Histogram::default_latency_bounds_us());

  /// Read-side lookups; nullptr when the metric was never created.
  [[nodiscard]] const Counter* find_counter(std::string_view family,
                                            std::string_view labels = "") const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view family,
                                        std::string_view labels = "") const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view family) const;

  /// Adds `other`'s metrics into this registry: counters and gauges sum,
  /// histograms concatenate samples and bucket counts. Call in a fixed order
  /// (stream-spec order, not finish order) so double sums — the only
  /// order-sensitive accumulation — are reproducible.
  void merge_from(const Registry& other);

  /// Prometheus text exposition: `# HELP` / `# TYPE` headers, families and
  /// label sets in lexicographic order, histograms as cumulative `_bucket`
  /// series with `le="+Inf"`, `_sum`, and `_count`.
  [[nodiscard]] std::string prometheus_text() const;

 private:
  struct ScalarFamily {
    std::string help;
    std::map<std::string, Counter> counters;  ///< labels -> counter
    std::map<std::string, Gauge> gauges;
  };
  mutable std::mutex mu_;
  std::map<std::string, ScalarFamily> counters_;
  std::map<std::string, ScalarFamily> gauges_;
  struct HistFamily {
    std::string help;
    Histogram hist;
  };
  std::map<std::string, HistFamily> histograms_;
};

// ---------------------------------------------------------------------------
// Spans and rungs
// ---------------------------------------------------------------------------

/// The five phases of one intercepted command, in pipeline order.
enum class Phase { Canonicalize, Precondition, Dispatch, Postcondition, Recovery };
inline constexpr std::size_t kPhaseCount = 5;

[[nodiscard]] std::string_view to_string(Phase p);

struct PhaseSample {
  Phase phase = Phase::Canonicalize;
  /// Modeled lab seconds this phase consumed (deterministic; exported).
  double dur_modeled_s = 0.0;
  /// Real microseconds spent in the phase (feeds histograms; never exported
  /// in event streams).
  double wall_us = 0.0;
};

/// One per-command span. Components fill it in place; the Supervisor
/// finalizes the verdict and hands it to the sink.
struct SpanRecord {
  std::string stream;       ///< fleet stream name; empty for single runs
  std::uint64_t seq = 0;    ///< command ordinal within the stream (0-based)
  std::string device;
  std::string action;
  int source_line = 0;
  double t0_modeled_s = 0.0;  ///< modeled lab clock when the span opened
  /// pass | blocked | malfunction | firmware_error | silently_skipped |
  /// refused (halted or quarantined device).
  std::string verdict;
  std::string rule;  ///< alert rule id when the verdict is not "pass"
  std::vector<PhaseSample> phases;

  [[nodiscard]] double total_modeled_s() const;
  [[nodiscard]] const PhaseSample* find_phase(Phase p) const;
};

/// One recovery-ladder rung: retry | repoll | watchdog | quarantine |
/// safe_state | halt.
struct RungRecord {
  std::string stream;
  std::uint64_t span_seq = 0;  ///< the span whose command triggered the rung
  std::string kind;
  std::string device;
  std::string action;
  std::size_t attempt = 0;
  double t_modeled_s = 0.0;
  std::string note;
};

/// Receives completed spans and rungs. Implementations used from the fleet
/// hot path are per-stream (no cross-thread sharing); a null Sink* disables
/// observation entirely.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_span(SpanRecord span) = 0;
  virtual void on_rung(RungRecord rung) = 0;
};

/// The standard sink: appends everything, in emission order, for export.
class Collector : public Sink {
 public:
  void on_span(SpanRecord span) override { spans_.push_back(std::move(span)); }
  void on_rung(RungRecord rung) override { rungs_.push_back(std::move(rung)); }

  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<RungRecord>& rungs() const { return rungs_; }
  [[nodiscard]] bool empty() const { return spans_.empty() && rungs_.empty(); }

  /// Appends another collector's records after this one's. Merging streams
  /// in stream-spec order makes the combined export worker-count
  /// independent.
  void merge_from(const Collector& other);

 private:
  std::vector<SpanRecord> spans_;
  std::vector<RungRecord> rungs_;
};

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Structured JSONL event log: one object per span (kind "span", with a
/// phase array) and per rung (kind "rung"), in collector order. Modeled
/// time only — byte-identical for identical modeled histories.
[[nodiscard]] std::string export_events_jsonl(const Collector& collector);

/// Chrome trace-event JSON (the format Perfetto and chrome://tracing load):
/// one complete ("X") event per phase, one enclosing event per span, one
/// instant ("i") event per rung. Streams map to pids in first-appearance
/// order with process_name metadata; ts/dur are modeled microseconds.
[[nodiscard]] std::string export_chrome_trace(const Collector& collector);

/// Writes events.jsonl, trace.json, and metrics.prom into `dir` (created if
/// missing). Returns false and fills *error on I/O failure.
bool write_export_dir(const std::string& dir, const Collector& collector,
                      const Registry& registry, std::string* error = nullptr);

}  // namespace rabit::obs
