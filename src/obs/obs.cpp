#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>

#include "json/json.hpp"

namespace rabit::obs {

// ---------------------------------------------------------------------------
// Percentiles
// ---------------------------------------------------------------------------

double nearest_rank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

double thread_cpu_now_us() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e6 + static_cast<double>(ts.tv_nsec) * 1e-3;
  }
#endif
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);  // last bucket = > every bound (+Inf)
}

std::vector<double> Histogram::default_latency_bounds_us() {
  return {1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1000000};
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++buckets_[i];
  sum_ += v;
  if (!samples_.empty() && v < samples_.back()) sorted_ = false;
  samples_.push_back(v);
}

double Histogram::percentile(double q) const {
  if (!sorted_) {
    std::sort(const_cast<std::vector<double>&>(samples_).begin(),
              const_cast<std::vector<double>&>(samples_).end());
    sorted_ = true;
  }
  return nearest_rank(samples_, q);
}

std::uint64_t Histogram::cumulative_count(std::size_t bucket) const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bucket && i < buckets_.size(); ++i) total += buckets_[i];
  return total;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Counter& Registry::counter(std::string_view family, std::string_view labels,
                           std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  ScalarFamily& fam = counters_[std::string(family)];
  if (fam.help.empty() && !help.empty()) fam.help = std::string(help);
  return fam.counters[std::string(labels)];
}

Gauge& Registry::gauge(std::string_view family, std::string_view labels,
                       std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  ScalarFamily& fam = gauges_[std::string(family)];
  if (fam.help.empty() && !help.empty()) fam.help = std::string(help);
  return fam.gauges[std::string(labels)];
}

Histogram& Registry::histogram(std::string_view family, std::string_view help,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(std::string(family));
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(family), HistFamily{std::string(help), Histogram(std::move(bounds))})
             .first;
  } else if (it->second.help.empty() && !help.empty()) {
    it->second.help = std::string(help);
  }
  return it->second.hist;
}

const Counter* Registry::find_counter(std::string_view family, std::string_view labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto fam = counters_.find(std::string(family));
  if (fam == counters_.end()) return nullptr;
  auto it = fam->second.counters.find(std::string(labels));
  return it == fam->second.counters.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(std::string_view family, std::string_view labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto fam = gauges_.find(std::string(family));
  if (fam == gauges_.end()) return nullptr;
  auto it = fam->second.gauges.find(std::string(labels));
  return it == fam->second.gauges.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(std::string_view family) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(std::string(family));
  return it == histograms_.end() ? nullptr : &it->second.hist;
}

void Registry::merge_from(const Registry& other) {
  // Lock ordering: this before other. The fleet merges at join, single
  // threaded, so contention (and deadlock pairs) cannot arise in practice.
  std::lock_guard<std::mutex> lock_this(mu_);
  std::lock_guard<std::mutex> lock_other(other.mu_);
  for (const auto& [name, fam] : other.counters_) {
    ScalarFamily& mine = counters_[name];
    if (mine.help.empty()) mine.help = fam.help;
    for (const auto& [labels, c] : fam.counters) mine.counters[labels].value_ += c.value_;
  }
  for (const auto& [name, fam] : other.gauges_) {
    ScalarFamily& mine = gauges_[name];
    if (mine.help.empty()) mine.help = fam.help;
    for (const auto& [labels, g] : fam.gauges) mine.gauges[labels].value_ += g.value_;
  }
  for (const auto& [name, fam] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, HistFamily{fam.help, Histogram(fam.hist.bounds_)}).first;
    }
    Histogram& mine = it->second.hist;
    if (mine.bounds_ == fam.hist.bounds_) {
      for (std::size_t i = 0; i < fam.hist.buckets_.size(); ++i) {
        mine.buckets_[i] += fam.hist.buckets_[i];
      }
    } else {
      for (double v : fam.hist.samples_) {
        std::size_t i = 0;
        while (i < mine.bounds_.size() && v > mine.bounds_[i]) ++i;
        ++mine.buckets_[i];
      }
    }
    mine.sum_ += fam.hist.sum_;
    mine.samples_.insert(mine.samples_.end(), fam.hist.samples_.begin(),
                         fam.hist.samples_.end());
    mine.sorted_ = false;
  }
}

namespace {

void append_number(std::string& out, double v) {
  json::Value value(v);
  out += json::serialize(value);
}

void append_metric_line(std::string& out, const std::string& family, const std::string& labels,
                        double value) {
  out += family;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  append_number(out, value);
  out += '\n';
}

void append_headers(std::string& out, const std::string& family, const std::string& help,
                    const char* type) {
  out += "# HELP " + family + " " + (help.empty() ? family : help) + "\n";
  out += "# TYPE " + family + " " + type + "\n";
}

}  // namespace

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Families of all three kinds interleave in one lexicographic ordering, so
  // the dump's layout depends only on the metric names, never on kind or on
  // registration order.
  std::map<std::string, std::string> blocks;
  for (const auto& [name, fam] : counters_) {
    std::string& out = blocks[name];
    append_headers(out, name, fam.help, "counter");
    for (const auto& [labels, c] : fam.counters) {
      append_metric_line(out, name, labels, static_cast<double>(c.value_));
    }
  }
  for (const auto& [name, fam] : gauges_) {
    std::string& out = blocks[name];
    append_headers(out, name, fam.help, "gauge");
    for (const auto& [labels, g] : fam.gauges) append_metric_line(out, name, labels, g.value_);
  }
  for (const auto& [name, fam] : histograms_) {
    std::string& out = blocks[name];
    append_headers(out, name, fam.help, "histogram");
    const Histogram& h = fam.hist;
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < h.bounds_.size(); ++i) {
      running += h.buckets_[i];
      std::string le = "le=\"";
      append_number(le, h.bounds_[i]);
      le += '"';
      append_metric_line(out, name + "_bucket", le, static_cast<double>(running));
    }
    running += h.buckets_.back();
    append_metric_line(out, name + "_bucket", "le=\"+Inf\"", static_cast<double>(running));
    append_metric_line(out, name + "_sum", "", h.sum_);
    append_metric_line(out, name + "_count", "", static_cast<double>(h.samples_.size()));
  }
  std::string out;
  for (const auto& [name, block] : blocks) out += block;
  return out;
}

// ---------------------------------------------------------------------------
// Spans and rungs
// ---------------------------------------------------------------------------

std::string_view to_string(Phase p) {
  switch (p) {
    case Phase::Canonicalize: return "canonicalize";
    case Phase::Precondition: return "precondition";
    case Phase::Dispatch: return "dispatch";
    case Phase::Postcondition: return "postcondition";
    case Phase::Recovery: return "recovery";
  }
  return "unknown";
}

double SpanRecord::total_modeled_s() const {
  double total = 0.0;
  for (const PhaseSample& p : phases) total += p.dur_modeled_s;
  return total;
}

const PhaseSample* SpanRecord::find_phase(Phase p) const {
  for (const PhaseSample& sample : phases) {
    if (sample.phase == p) return &sample;
  }
  return nullptr;
}

void Collector::merge_from(const Collector& other) {
  spans_.insert(spans_.end(), other.spans_.begin(), other.spans_.end());
  rungs_.insert(rungs_.end(), other.rungs_.begin(), other.rungs_.end());
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

std::string export_events_jsonl(const Collector& collector) {
  std::string out;
  for (const SpanRecord& s : collector.spans()) {
    json::Object line;
    line["kind"] = "span";
    if (!s.stream.empty()) line["stream"] = s.stream;
    line["seq"] = s.seq;
    line["device"] = s.device;
    line["action"] = s.action;
    if (s.source_line > 0) line["line"] = s.source_line;
    line["t_modeled_s"] = s.t0_modeled_s;
    line["verdict"] = s.verdict;
    if (!s.rule.empty()) line["rule"] = s.rule;
    json::Array phases;
    for (const PhaseSample& p : s.phases) {
      json::Object phase;
      phase["phase"] = std::string(to_string(p.phase));
      phase["dur_modeled_s"] = p.dur_modeled_s;
      phases.emplace_back(std::move(phase));
    }
    line["phases"] = std::move(phases);
    out += json::serialize(json::Value(std::move(line)));
    out += '\n';
  }
  for (const RungRecord& r : collector.rungs()) {
    json::Object line;
    line["kind"] = "rung";
    if (!r.stream.empty()) line["stream"] = r.stream;
    line["span_seq"] = r.span_seq;
    line["rung"] = r.kind;
    line["device"] = r.device;
    line["action"] = r.action;
    if (r.attempt > 0) line["attempt"] = r.attempt;
    line["t_modeled_s"] = r.t_modeled_s;
    if (!r.note.empty()) line["note"] = r.note;
    out += json::serialize(json::Value(std::move(line)));
    out += '\n';
  }
  return out;
}

namespace {

/// Stable stream -> pid assignment in first-appearance order.
class PidTable {
 public:
  std::int64_t pid_for(const std::string& stream, json::Array& events) {
    auto it = pids_.find(stream);
    if (it != pids_.end()) return it->second;
    auto pid = static_cast<std::int64_t>(pids_.size() + 1);
    pids_.emplace(stream, pid);
    json::Object meta;
    meta["name"] = "process_name";
    meta["ph"] = "M";
    meta["pid"] = pid;
    meta["tid"] = 0;
    json::Object args;
    args["name"] = stream.empty() ? std::string("rabit") : stream;
    meta["args"] = std::move(args);
    events.emplace_back(std::move(meta));
    return pid;
  }

 private:
  std::map<std::string, std::int64_t> pids_;
};

json::Object complete_event(std::string name, std::int64_t pid, double ts_us, double dur_us) {
  json::Object e;
  e["name"] = std::move(name);
  e["ph"] = "X";
  e["pid"] = pid;
  e["tid"] = 1;
  e["ts"] = ts_us;
  e["dur"] = dur_us;
  return e;
}

}  // namespace

std::string export_chrome_trace(const Collector& collector) {
  json::Array events;
  PidTable pids;
  for (const SpanRecord& s : collector.spans()) {
    std::int64_t pid = pids.pid_for(s.stream, events);
    double ts = s.t0_modeled_s * 1e6;
    json::Object span = complete_event(s.device + "." + s.action, pid, ts,
                                       s.total_modeled_s() * 1e6);
    json::Object args;
    args["seq"] = s.seq;
    args["verdict"] = s.verdict;
    if (!s.rule.empty()) args["rule"] = s.rule;
    span["args"] = std::move(args);
    events.emplace_back(std::move(span));
    double cursor = ts;
    for (const PhaseSample& p : s.phases) {
      double dur = p.dur_modeled_s * 1e6;
      events.emplace_back(complete_event(std::string(to_string(p.phase)), pid, cursor, dur));
      cursor += dur;
    }
  }
  for (const RungRecord& r : collector.rungs()) {
    std::int64_t pid = pids.pid_for(r.stream, events);
    json::Object e;
    e["name"] = "recovery:" + r.kind;
    e["ph"] = "i";
    e["pid"] = pid;
    e["tid"] = 1;
    e["ts"] = r.t_modeled_s * 1e6;
    e["s"] = "t";
    json::Object args;
    args["span_seq"] = r.span_seq;
    args["device"] = r.device;
    if (r.attempt > 0) args["attempt"] = r.attempt;
    if (!r.note.empty()) args["note"] = r.note;
    e["args"] = std::move(args);
    events.emplace_back(std::move(e));
  }
  json::Object root;
  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = "ms";
  return json::serialize_pretty(json::Value(std::move(root))) + "\n";
}

bool write_export_dir(const std::string& dir, const Collector& collector,
                      const Registry& registry, std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create '" + dir + "': " + ec.message();
    return false;
  }
  auto write_file = [&](const char* name, const std::string& contents) {
    fs::path path = fs::path(dir) / name;
    std::ofstream out(path);
    if (!out) {
      if (error != nullptr) *error = "cannot write '" + path.string() + "'";
      return false;
    }
    out << contents;
    return static_cast<bool>(out);
  };
  return write_file("events.jsonl", export_events_jsonl(collector)) &&
         write_file("trace.json", export_chrome_trace(collector)) &&
         write_file("metrics.prom", registry.prometheus_text());
}

}  // namespace rabit::obs
