#include "recovery/recovery.hpp"

#include <sstream>

namespace rabit::recovery {

double BackoffClock::wait_s(std::size_t attempt) {
  double wait = policy_.backoff_base_s;
  for (std::size_t i = 1; i < attempt; ++i) wait *= policy_.backoff_factor;
  if (policy_.backoff_jitter > 0.0) {
    std::uniform_real_distribution<double> jitter(1.0 - policy_.backoff_jitter,
                                                  1.0 + policy_.backoff_jitter);
    wait *= jitter(rng_);
  }
  return wait;
}

std::string_view to_string(RecoveryEvent::Kind k) {
  switch (k) {
    case RecoveryEvent::Kind::Retry: return "retry";
    case RecoveryEvent::Kind::Repoll: return "repoll";
    case RecoveryEvent::Kind::WatchdogExpired: return "watchdog_expired";
    case RecoveryEvent::Kind::Quarantine: return "quarantine";
    case RecoveryEvent::Kind::SafeState: return "safe_state";
    case RecoveryEvent::Kind::Halt: return "halt";
  }
  return "unknown";
}

json::Value RecoveryReport::to_json() const {
  json::Object out;
  out["retries"] = retries;
  out["repolls"] = repolls;
  out["transients_absorbed"] = transients_absorbed;
  out["watchdog_expirations"] = watchdog_expirations;
  json::Array q;
  for (const std::string& d : quarantined) q.emplace_back(d);
  out["quarantined"] = std::move(q);
  out["safe_state_executed"] = safe_state_executed;
  out["safe_state_commands"] = safe_state_commands;
  out["safe_state_failures"] = safe_state_failures;
  out["halted"] = halted;
  out["recovery_time_s"] = recovery_time_s;
  json::Array evs;
  for (const RecoveryEvent& e : events) {
    json::Object ev;
    ev["kind"] = std::string(to_string(e.kind));
    ev["device"] = e.device;
    ev["action"] = e.action;
    if (e.attempt > 0) ev["attempt"] = e.attempt;
    ev["t"] = e.modeled_time_s;
    if (!e.note.empty()) ev["note"] = e.note;
    evs.emplace_back(std::move(ev));
  }
  out["events"] = std::move(evs);
  return json::Value(std::move(out));
}

std::string RecoveryReport::describe() const {
  std::ostringstream os;
  os << "recovery: " << retries << " retries, " << repolls << " repolls, "
     << transients_absorbed << " transients absorbed";
  if (watchdog_expirations > 0) os << ", " << watchdog_expirations << " watchdog expirations";
  if (!quarantined.empty()) {
    os << "; quarantined:";
    for (const std::string& d : quarantined) os << " " << d;
  }
  if (safe_state_executed) {
    os << "; safe state executed (" << safe_state_commands << " commands, "
       << safe_state_failures << " failed)";
  }
  if (halted) os << "; HALTED";
  return os.str();
}

namespace {

dev::Command make_cmd(const std::string& device, const char* action, json::Object args = {}) {
  dev::Command c;
  c.device = device;
  c.action = action;
  c.args = json::Value(std::move(args));
  return c;
}

}  // namespace

std::vector<dev::Command> safe_state_sequence(const sim::LabBackend& backend,
                                              const std::set<std::string>& quarantined) {
  std::vector<dev::Command> out;
  const dev::DeviceRegistry& registry = backend.registry();

  auto skip = [&quarantined](const dev::Device& d) { return quarantined.count(d.id()) > 0; };

  // 1. Park every arm. Arms go first so that no door below closes onto an
  //    arm still reaching inside a station.
  for (const dev::Device* d : registry.all()) {
    if (skip(*d)) continue;
    if (dynamic_cast<const dev::RobotArmDevice*>(d) != nullptr) {
      out.push_back(make_cmd(d->id(), "go_sleep"));
    }
  }

  // 2. Close every software-controlled door that is currently open (a
  //    broken actuator would only reject the command).
  for (const dev::Device* d : registry.all()) {
    if (skip(*d)) continue;
    if (const auto* multi = dynamic_cast<const dev::MultiDoorStation*>(d)) {
      for (const dev::MultiDoorStation::DoorSpec& door : multi->doors()) {
        if (multi->door_status(door.name) != "open") continue;
        json::Object args;
        args["state"] = "closed";
        args["door"] = door.name;
        out.push_back(make_cmd(d->id(), "set_door", std::move(args)));
      }
    } else if (const auto* door = dynamic_cast<const dev::DoorMixin*>(d)) {
      if (door->door_status() != "open") continue;
      json::Object args;
      args["state"] = "closed";
      out.push_back(make_cmd(d->id(), "set_door", std::move(args)));
    }
  }

  // 3. Stop everything that heats, shakes, spins, or doses.
  for (const dev::Device* d : registry.all()) {
    if (skip(*d)) continue;
    if (const auto* hp = dynamic_cast<const dev::HotplateModel*>(d)) {
      if (hp->active() || hp->target_c() > 25.0) out.push_back(make_cmd(d->id(), "stop"));
    } else if (const auto* ts = dynamic_cast<const dev::ThermoshakerModel*>(d)) {
      if (ts->active()) out.push_back(make_cmd(d->id(), "stop"));
    } else if (const auto* cf = dynamic_cast<const dev::CentrifugeModel*>(d)) {
      if (cf->spinning()) out.push_back(make_cmd(d->id(), "stop_spin"));
    } else if (const auto* dosing = dynamic_cast<const dev::DosingDeviceModel*>(d)) {
      if (dosing->running()) out.push_back(make_cmd(d->id(), "stop_action"));
    } else if (const auto* gen = dynamic_cast<const dev::GenericActionDevice*>(d)) {
      if (gen->active()) out.push_back(make_cmd(d->id(), "stop"));
    } else if (const auto* multi = dynamic_cast<const dev::MultiDoorStation*>(d)) {
      if (multi->active()) out.push_back(make_cmd(d->id(), "stop"));
    }
  }
  return out;
}

}  // namespace rabit::recovery
