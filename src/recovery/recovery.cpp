#include "recovery/recovery.hpp"

#include <sstream>
#include <stdexcept>

namespace rabit::recovery {

double BackoffClock::wait_s(std::size_t attempt) {
  double wait = policy_.backoff_base_s;
  for (std::size_t i = 1; i < attempt; ++i) wait *= policy_.backoff_factor;
  if (policy_.backoff_jitter > 0.0) {
    std::uniform_real_distribution<double> jitter(1.0 - policy_.backoff_jitter,
                                                  1.0 + policy_.backoff_jitter);
    wait *= jitter(rng_);
  }
  return wait;
}

double worst_case_ladder_s(const RecoveryPolicy& policy) {
  double total = 0.0;
  double wait = policy.backoff_base_s;
  for (std::size_t attempt = 1; attempt <= policy.max_retries; ++attempt) {
    total += wait * (1.0 + policy.backoff_jitter);
    wait *= policy.backoff_factor;
  }
  total += static_cast<double>(policy.max_status_repolls) * policy.repoll_interval_s;
  return total;
}

std::vector<PolicyIssue> validate(const RecoveryPolicy& policy) {
  std::vector<PolicyIssue> issues;
  auto fatal = [&issues](std::string message) {
    issues.push_back(PolicyIssue{true, std::move(message)});
  };
  std::ostringstream os;
  if (!(policy.backoff_base_s > 0.0)) {
    os << "backoff_base_s must be positive (got " << policy.backoff_base_s << ")";
    fatal(os.str());
    os.str("");
  }
  if (!(policy.backoff_factor >= 1.0)) {
    os << "backoff_factor must be >= 1 (got " << policy.backoff_factor
       << "); a shrinking backoff hammers a busy device faster each attempt";
    fatal(os.str());
    os.str("");
  }
  if (!(policy.backoff_jitter >= 0.0 && policy.backoff_jitter < 1.0)) {
    os << "backoff_jitter must lie in [0, 1) (got " << policy.backoff_jitter
       << "); jitter >= 1 can produce a zero or negative wait";
    fatal(os.str());
    os.str("");
  }
  if (!(policy.repoll_interval_s > 0.0)) {
    os << "repoll_interval_s must be positive (got " << policy.repoll_interval_s << ")";
    fatal(os.str());
    os.str("");
  }
  if (!(policy.watchdog_timeout_s > 0.0)) {
    os << "watchdog_timeout_s must be positive (got " << policy.watchdog_timeout_s << ")";
    fatal(os.str());
    os.str("");
  } else {
    double ladder = worst_case_ladder_s(policy);
    if (policy.watchdog_timeout_s < ladder) {
      os << "watchdog_timeout_s (" << policy.watchdog_timeout_s
         << " s) is shorter than one worst-case backoff ladder (" << ladder
         << " s): the watchdog can expire mid-ladder on a fault the retry "
            "budget was sized to absorb";
      issues.push_back(PolicyIssue{false, os.str()});
      os.str("");
    }
  }
  return issues;
}

RecoveryPolicy policy_from_json(const json::Value& doc) {
  if (!doc.is_object()) throw std::runtime_error("recovery policy must be an object");
  RecoveryPolicy p;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "max_retries") {
      p.max_retries = static_cast<std::size_t>(value.as_double());
    } else if (key == "backoff_base_s") {
      p.backoff_base_s = value.as_double();
    } else if (key == "backoff_factor") {
      p.backoff_factor = value.as_double();
    } else if (key == "backoff_jitter") {
      p.backoff_jitter = value.as_double();
    } else if (key == "jitter_seed") {
      p.jitter_seed = static_cast<unsigned>(value.as_double());
    } else if (key == "max_status_repolls") {
      p.max_status_repolls = static_cast<std::size_t>(value.as_double());
    } else if (key == "repoll_interval_s") {
      p.repoll_interval_s = value.as_double();
    } else if (key == "watchdog_timeout_s") {
      p.watchdog_timeout_s = value.as_double();
    } else if (key == "safe_state_on_escalation") {
      p.safe_state_on_escalation = value.as_bool();
    } else {
      throw std::runtime_error("recovery policy: unknown key '" + key + "'");
    }
  }
  return p;
}

json::Value policy_to_json(const RecoveryPolicy& policy) {
  json::Object out;
  out["max_retries"] = policy.max_retries;
  out["backoff_base_s"] = policy.backoff_base_s;
  out["backoff_factor"] = policy.backoff_factor;
  out["backoff_jitter"] = policy.backoff_jitter;
  out["jitter_seed"] = static_cast<double>(policy.jitter_seed);
  out["max_status_repolls"] = policy.max_status_repolls;
  out["repoll_interval_s"] = policy.repoll_interval_s;
  out["watchdog_timeout_s"] = policy.watchdog_timeout_s;
  out["safe_state_on_escalation"] = policy.safe_state_on_escalation;
  return json::Value(std::move(out));
}

std::string_view to_string(RecoveryEvent::Kind k) {
  switch (k) {
    case RecoveryEvent::Kind::Demoted: return "demoted";
    case RecoveryEvent::Kind::Retry: return "retry";
    case RecoveryEvent::Kind::Repoll: return "repoll";
    case RecoveryEvent::Kind::WatchdogExpired: return "watchdog_expired";
    case RecoveryEvent::Kind::Quarantine: return "quarantine";
    case RecoveryEvent::Kind::SafeState: return "safe_state";
    case RecoveryEvent::Kind::Halt: return "halt";
  }
  return "unknown";
}

json::Value RecoveryReport::to_json() const {
  json::Object out;
  out["retries"] = retries;
  out["repolls"] = repolls;
  out["transients_absorbed"] = transients_absorbed;
  out["watchdog_expirations"] = watchdog_expirations;
  json::Array q;
  for (const std::string& d : quarantined) q.emplace_back(d);
  out["quarantined"] = std::move(q);
  out["safe_state_executed"] = safe_state_executed;
  out["safe_state_commands"] = safe_state_commands;
  out["safe_state_failures"] = safe_state_failures;
  out["halted"] = halted;
  out["recovery_time_s"] = recovery_time_s;
  json::Array evs;
  for (const RecoveryEvent& e : events) {
    json::Object ev;
    ev["kind"] = std::string(to_string(e.kind));
    ev["device"] = e.device;
    ev["action"] = e.action;
    if (e.attempt > 0) ev["attempt"] = e.attempt;
    ev["t"] = e.modeled_time_s;
    if (!e.note.empty()) ev["note"] = e.note;
    evs.emplace_back(std::move(ev));
  }
  out["events"] = std::move(evs);
  out["demotions"] = demotions;
  json::Array asr;
  for (const assurance::AssuranceEvent& e : assurance) asr.emplace_back(e.to_json());
  out["assurance"] = std::move(asr);
  return json::Value(std::move(out));
}

std::string RecoveryReport::describe() const {
  std::ostringstream os;
  os << "recovery: " << retries << " retries, " << repolls << " repolls, "
     << transients_absorbed << " transients absorbed";
  if (demotions > 0) os << ", " << demotions << " demotions to the safe controller";
  if (watchdog_expirations > 0) os << ", " << watchdog_expirations << " watchdog expirations";
  if (!quarantined.empty()) {
    os << "; quarantined:";
    for (const std::string& d : quarantined) os << " " << d;
  }
  if (safe_state_executed) {
    os << "; safe state executed (" << safe_state_commands << " commands, "
       << safe_state_failures << " failed)";
  }
  if (halted) os << "; HALTED";
  return os.str();
}

namespace {

dev::Command make_cmd(const std::string& device, const char* action, json::Object args = {}) {
  dev::Command c;
  c.device = device;
  c.action = action;
  c.args = json::Value(std::move(args));
  return c;
}

}  // namespace

std::vector<dev::Command> safe_state_sequence(const sim::LabBackend& backend,
                                              const std::set<std::string>& quarantined) {
  std::vector<dev::Command> out;
  const dev::DeviceRegistry& registry = backend.registry();

  auto skip = [&quarantined](const dev::Device& d) { return quarantined.contains(d.id()); };

  // 1. Park every arm. Arms go first so that no door below closes onto an
  //    arm still reaching inside a station.
  for (const dev::Device* d : registry.all()) {
    if (skip(*d)) continue;
    if (dynamic_cast<const dev::RobotArmDevice*>(d) != nullptr) {
      out.push_back(make_cmd(d->id(), "go_sleep"));
    }
  }

  // 2. Close every software-controlled door that is currently open (a
  //    broken actuator would only reject the command).
  for (const dev::Device* d : registry.all()) {
    if (skip(*d)) continue;
    if (const auto* multi = dynamic_cast<const dev::MultiDoorStation*>(d)) {
      for (const dev::MultiDoorStation::DoorSpec& door : multi->doors()) {
        if (multi->door_status(door.name) != "open") continue;
        json::Object args;
        args["state"] = "closed";
        args["door"] = door.name;
        out.push_back(make_cmd(d->id(), "set_door", std::move(args)));
      }
    } else if (const auto* door = dynamic_cast<const dev::DoorMixin*>(d)) {
      if (door->door_status() != "open") continue;
      json::Object args;
      args["state"] = "closed";
      out.push_back(make_cmd(d->id(), "set_door", std::move(args)));
    }
  }

  // 3. Stop everything that heats, shakes, spins, or doses.
  for (const dev::Device* d : registry.all()) {
    if (skip(*d)) continue;
    if (const auto* hp = dynamic_cast<const dev::HotplateModel*>(d)) {
      if (hp->active() || hp->target_c() > 25.0) out.push_back(make_cmd(d->id(), "stop"));
    } else if (const auto* ts = dynamic_cast<const dev::ThermoshakerModel*>(d)) {
      if (ts->active()) out.push_back(make_cmd(d->id(), "stop"));
    } else if (const auto* cf = dynamic_cast<const dev::CentrifugeModel*>(d)) {
      if (cf->spinning()) out.push_back(make_cmd(d->id(), "stop_spin"));
    } else if (const auto* dosing = dynamic_cast<const dev::DosingDeviceModel*>(d)) {
      if (dosing->running()) out.push_back(make_cmd(d->id(), "stop_action"));
    } else if (const auto* gen = dynamic_cast<const dev::GenericActionDevice*>(d)) {
      if (gen->active()) out.push_back(make_cmd(d->id(), "stop"));
    } else if (const auto* multi = dynamic_cast<const dev::MultiDoorStation*>(d)) {
      if (multi->active()) out.push_back(make_cmd(d->id(), "stop"));
    }
  }
  return out;
}

}  // namespace rabit::recovery
