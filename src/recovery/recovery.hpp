// rabit::recovery — supervised recovery from transient device faults.
//
// The paper's Fig. 2 algorithm answers every anomaly with alertAndStop.
// That is the right call for script bugs (preconditions) but fatal for
// month-long autonomous campaigns, where real labs mostly see *transient*
// faults — busy firmware, a dropped status read, a stale snapshot — that a
// retry would absorb. Following SOTER's runtime-assurance argument
// (graceful degradation to a safe controller instead of a hard stop), this
// module provides:
//
//   * RecoveryPolicy  — bounded retries with exponential backoff + jitter
//                       in *modeled* time, a per-command watchdog timeout,
//                       and status re-polls before declaring a malfunction
//                       (so a stale read is never confused with damage);
//   * the escalation ladder — retry → re-poll → quarantine the device →
//                       execute a safe-state sequence (park arms, close
//                       doors, stop heaters) → halt;
//   * RecoveryReport  — a structured account of everything the ladder did,
//                       serializable for post-mortems and benches.
//
// The trace::Supervisor drives the ladder; this library keeps the policy,
// the deterministic backoff math, and the safe-state builder.
#pragma once

#include <random>
#include <set>

#include "assurance/assurance.hpp"
#include "devices/device.hpp"
#include "json/json.hpp"
#include "sim/backend.hpp"

namespace rabit::recovery {

/// Tunable knobs of the supervised-recovery ladder. Defaults absorb the
/// chaos campaign's transient faults (clear ≤ 3 attempts or ≤ 4 modeled
/// seconds) with margin.
struct RecoveryPolicy {
  /// Retry budget per command (shared by firmware rejections and
  /// postcondition divergences). 0 disables retries.
  std::size_t max_retries = 4;
  /// Exponential backoff in modeled seconds: wait base * factor^(attempt-1),
  /// times a deterministic jitter in [1 - jitter, 1 + jitter].
  double backoff_base_s = 0.5;
  double backoff_factor = 2.0;
  double backoff_jitter = 0.25;
  /// Seed for the jitter stream (same seed ⇒ same waits ⇒ same trace).
  unsigned jitter_seed = 1;
  /// Status re-polls taken before a divergence is judged real (stale-read
  /// filter), and the modeled wait between them.
  std::size_t max_status_repolls = 3;
  double repoll_interval_s = 0.5;
  /// Per-command watchdog: once a command has consumed this much modeled
  /// time across attempts and waits, the ladder stops retrying and
  /// escalates.
  double watchdog_timeout_s = 60.0;
  /// Run the safe-state sequence when escalating (park arms, close doors,
  /// stop heaters) before halting.
  bool safe_state_on_escalation = true;
};

/// One problem validate() found with a policy. Fatal issues make the ladder
/// nonsensical (the Supervisor refuses the policy); advisory ones are merely
/// suspicious and surface as config-lint warnings.
struct PolicyIssue {
  bool fatal = false;
  std::string message;
};

/// Sum of the worst-case ladder for ONE command under `policy`: every retry
/// wait at maximum jitter plus every status re-poll interval. A watchdog
/// shorter than this can expire mid-ladder on a fault the ladder was sized
/// to absorb.
[[nodiscard]] double worst_case_ladder_s(const RecoveryPolicy& policy);

/// Validates a policy. Fatal: non-positive backoff_base_s/repoll_interval_s/
/// watchdog_timeout_s, backoff_factor < 1, jitter outside [0, 1). Advisory:
/// watchdog_timeout_s < worst_case_ladder_s (the ladder cannot finish).
[[nodiscard]] std::vector<PolicyIssue> validate(const RecoveryPolicy& policy);

/// Parses the optional top-level "recovery" object of a RABIT config:
///   {"max_retries": 4, "backoff_base_s": 0.5, "backoff_factor": 2.0,
///    "backoff_jitter": 0.25, "jitter_seed": 1, "max_status_repolls": 3,
///    "repoll_interval_s": 0.5, "watchdog_timeout_s": 60.0,
///    "safe_state_on_escalation": true}
/// Unknown keys throw std::runtime_error naming the key; all fields are
/// optional and default to RecoveryPolicy{}. Range checking is validate()'s
/// job, not the parser's.
[[nodiscard]] RecoveryPolicy policy_from_json(const json::Value& doc);
[[nodiscard]] json::Value policy_to_json(const RecoveryPolicy& policy);

/// Deterministic backoff-wait generator. One instance per supervised run.
class BackoffClock {
 public:
  explicit BackoffClock(const RecoveryPolicy& policy)
      : policy_(policy), rng_(policy.jitter_seed) {}

  /// Modeled wait before retry number `attempt` (1-based).
  [[nodiscard]] double wait_s(std::size_t attempt);

  /// Restarts the jitter stream (call from Supervisor::start so that
  /// re-running a workflow reproduces the identical trace).
  void reset() { rng_.seed(policy_.jitter_seed); }

 private:
  RecoveryPolicy policy_;
  std::mt19937 rng_;
};

/// What one entry of the ladder did.
struct RecoveryEvent {
  enum class Kind { Demoted, Retry, Repoll, WatchdogExpired, Quarantine, SafeState, Halt };
  Kind kind = Kind::Retry;
  std::string device;
  std::string action;
  std::size_t attempt = 0;     ///< retry/re-poll ordinal (1-based) where meaningful
  double modeled_time_s = 0.0; ///< backend clock when the event happened
  std::string note;
};

[[nodiscard]] std::string_view to_string(RecoveryEvent::Kind k);

/// Structured account of a supervised run's recovery activity.
struct RecoveryReport {
  std::size_t retries = 0;             ///< command re-attempts taken
  std::size_t repolls = 0;             ///< status re-polls taken
  std::size_t transients_absorbed = 0; ///< commands that needed the ladder but completed
  std::size_t watchdog_expirations = 0;
  std::vector<std::string> quarantined;  ///< devices removed from service
  bool safe_state_executed = false;
  std::size_t safe_state_commands = 0;
  std::size_t safe_state_failures = 0;
  bool halted = false;
  double recovery_time_s = 0.0;  ///< modeled time spent waiting and re-polling
  std::vector<RecoveryEvent> events;
  /// Runtime-assurance rung (top of the ladder): commands demoted to the
  /// verified-safe controller before execution, with the barrier math that
  /// justified each switch.
  std::size_t demotions = 0;
  std::vector<assurance::AssuranceEvent> assurance;

  [[nodiscard]] bool escalated() const { return !quarantined.empty() || halted; }
  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] std::string describe() const;
};

/// Builds the open-loop safe-state sequence for `backend`: park every arm
/// (go_sleep), then close every software-controlled door, then stop every
/// heater/shaker/spinner/doser. Arms park first so no door closes onto an
/// arm still inside a station. Commands targeting `quarantined` devices are
/// skipped — a quarantined controller cannot be trusted to execute them.
[[nodiscard]] std::vector<dev::Command> safe_state_sequence(
    const sim::LabBackend& backend, const std::set<std::string>& quarantined = {});

}  // namespace rabit::recovery
