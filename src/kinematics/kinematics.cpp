#include "kinematics/kinematics.hpp"

#include <algorithm>
#include <cmath>

namespace rabit::kin {

using geom::Transform;
using geom::Vec3;

std::string_view to_string(IkError e) {
  switch (e) {
    case IkError::OutOfReach: return "target out of reach";
    case IkError::NoConvergence: return "solver did not converge";
    case IkError::JointLimit: return "solution violates joint limits";
  }
  return "unknown";
}

namespace {

/// Standard DH link transform: Rz(theta) Tz(d) Tx(a) Rx(alpha).
Transform dh_transform(const DhParam& p, double theta) {
  double ct = std::cos(theta + p.theta_offset);
  double st = std::sin(theta + p.theta_offset);
  double ca = std::cos(p.alpha);
  double sa = std::sin(p.alpha);
  // Composed closed form (row-major):
  //   [ ct  -st*ca   st*sa   a*ct ]
  //   [ st   ct*ca  -ct*sa   a*st ]
  //   [ 0    sa      ca      d    ]
  Transform rz = Transform::rotation_z(theta + p.theta_offset);
  Transform tz = Transform::translation(Vec3(0, 0, p.d));
  Transform tx = Transform::translation(Vec3(p.a, 0, 0));
  Transform rx = Transform::from_euler(p.alpha, 0, 0, Vec3());
  (void)ct;
  (void)st;
  (void)ca;
  (void)sa;
  return rz * tz * tx * rx;
}

}  // namespace

ArmModel::ArmModel(std::string name, std::array<DhParam, kNumJoints> dh,
                   std::array<JointLimit, kNumJoints> limits, Transform base, double link_radius_m)
    : name_(std::move(name)), dh_(dh), limits_(limits), base_(base), link_radius_(link_radius_m) {
  if (link_radius_ <= 0) throw std::invalid_argument("ArmModel: link radius must be positive");
  for (const JointLimit& l : limits_) {
    if (l.min_rad > l.max_rad) throw std::invalid_argument("ArmModel: inverted joint limit");
  }
}

double ArmModel::max_reach() const {
  double reach = 0.0;
  for (const DhParam& p : dh_) reach += std::abs(p.a) + std::abs(p.d);
  return reach;
}

Vec3 ArmModel::forward(const JointVector& joints) const {
  Transform t = base_;
  for (std::size_t i = 0; i < kNumJoints; ++i) t = t * dh_transform(dh_[i], joints[i]);
  return t.apply(Vec3());
}

std::vector<Vec3> ArmModel::link_points(const JointVector& joints) const {
  std::vector<Vec3> points;
  points.reserve(kNumJoints + 1);
  Transform t = base_;
  points.push_back(t.apply(Vec3()));
  for (std::size_t i = 0; i < kNumJoints; ++i) {
    t = t * dh_transform(dh_[i], joints[i]);
    points.push_back(t.apply(Vec3()));
  }
  return points;
}

std::vector<geom::Segment> ArmModel::link_segments(const JointVector& joints) const {
  std::vector<Vec3> pts = link_points(joints);
  std::vector<geom::Segment> segs;
  segs.reserve(pts.size() - 1);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    segs.push_back(geom::Segment{pts[i - 1], pts[i]});
  }
  return segs;
}

bool ArmModel::within_limits(const JointVector& joints) const {
  for (std::size_t i = 0; i < kNumJoints; ++i) {
    if (joints[i] < limits_[i].min_rad || joints[i] > limits_[i].max_rad) return false;
  }
  return true;
}

bool ArmModel::reachable(const geom::Vec3& target) const {
  // Workspace envelope: a sphere of radius max_reach around the shoulder.
  Vec3 shoulder = base_.apply(Vec3(0, 0, dh_[0].d));
  return shoulder.distance_to(target) <= max_reach() - dh_[0].d * 0.0;
}

IkResult ArmModel::inverse(const Vec3& target, const JointVector& seed) const {
  IkResult result;
  if (!reachable(target)) {
    result.error = IkError::OutOfReach;
    return result;
  }

  // Damped least squares can stall in a local minimum for targets far from
  // the seed (e.g. a half-turn of the base). Retry from a few deterministic
  // seeds: the caller's, a base-swung variant pointing at the target, and
  // the canonical poses.
  Vec3 local = base_.inverse().apply(target);
  double toward = std::atan2(local.y, local.x);
  const JointVector seeds[] = {
      seed,
      {toward, -1.0, 0.8, 0.0, 0.5, 0.0},
      {toward, -1.57, 0.0, -1.57, 0.0, 0.0},
      home_configuration(),
      sleep_configuration(),
  };
  for (const JointVector& s : seeds) {
    IkResult attempt = solve_from(target, s);
    if (attempt.joints) return attempt;
    result = attempt;  // keep the last failure's diagnostics
  }
  return result;
}

IkResult ArmModel::solve_from(const Vec3& target, const JointVector& seed) const {
  IkResult result;

  constexpr int kMaxIterations = 200;
  constexpr double kTolerance = 1e-4;  // 0.1 mm
  constexpr double kLambda = 0.05;     // damping factor
  constexpr double kFiniteDiff = 1e-6;

  JointVector q = seed;
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    Vec3 current = forward(q);
    Vec3 err = target - current;
    result.iterations = iter;
    result.residual = err.norm();
    if (result.residual < kTolerance) {
      // Clamp into limits; reject if clamping moves the end effector away.
      JointVector clamped = q;
      for (std::size_t i = 0; i < kNumJoints; ++i) {
        clamped[i] = std::clamp(clamped[i], limits_[i].min_rad, limits_[i].max_rad);
      }
      if (forward(clamped).distance_to(target) > kTolerance * 50) {
        result.error = IkError::JointLimit;
        return result;
      }
      result.joints = clamped;
      return result;
    }

    // Numeric position Jacobian, 3 x 6.
    std::array<std::array<double, kNumJoints>, 3> jac{};
    for (std::size_t j = 0; j < kNumJoints; ++j) {
      JointVector dq = q;
      dq[j] += kFiniteDiff;
      Vec3 moved = forward(dq);
      jac[0][j] = (moved.x - current.x) / kFiniteDiff;
      jac[1][j] = (moved.y - current.y) / kFiniteDiff;
      jac[2][j] = (moved.z - current.z) / kFiniteDiff;
    }

    // Damped least squares: dq = J^T (J J^T + lambda^2 I)^-1 err.
    // A = J J^T + lambda^2 I is 3x3 symmetric positive definite.
    std::array<std::array<double, 3>, 3> a{};
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        double sum = 0.0;
        for (std::size_t j = 0; j < kNumJoints; ++j) sum += jac[r][j] * jac[c][j];
        a[r][c] = sum + (r == c ? kLambda * kLambda : 0.0);
      }
    }
    // Solve a * y = err via Cramer's rule (3x3).
    auto det3 = [](const std::array<std::array<double, 3>, 3>& m) {
      return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
             m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
             m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    };
    double det = det3(a);
    if (std::abs(det) < 1e-14) break;
    std::array<double, 3> rhs = {err.x, err.y, err.z};
    std::array<double, 3> y{};
    for (int col = 0; col < 3; ++col) {
      auto m = a;
      for (int r = 0; r < 3; ++r) m[r][col] = rhs[r];
      y[col] = det3(m) / det;
    }
    for (std::size_t j = 0; j < kNumJoints; ++j) {
      double dq = jac[0][j] * y[0] + jac[1][j] * y[1] + jac[2][j] * y[2];
      // Step clamp keeps the linearization valid.
      q[j] += std::clamp(dq, -0.3, 0.3);
    }
  }

  result.error = IkError::NoConvergence;
  return result;
}

// ---------------------------------------------------------------------------
// JointTrajectory
// ---------------------------------------------------------------------------

JointTrajectory::JointTrajectory(JointVector start, JointVector goal, std::size_t samples)
    : start_(start), goal_(goal), samples_(samples) {
  if (samples_ < 2) throw std::invalid_argument("JointTrajectory: need at least 2 samples");
}

JointVector JointTrajectory::at(std::size_t index) const {
  if (index >= samples_) throw std::out_of_range("JointTrajectory::at");
  double t = static_cast<double>(index) / static_cast<double>(samples_ - 1);
  JointVector q{};
  for (std::size_t i = 0; i < kNumJoints; ++i) {
    q[i] = start_[i] + (goal_[i] - start_[i]) * t;
  }
  return q;
}

geom::Polyline JointTrajectory::end_effector_path(const ArmModel& arm) const {
  geom::Polyline path;
  for (std::size_t i = 0; i < samples_; ++i) path.push_back(arm.forward(at(i)));
  return path;
}

// ---------------------------------------------------------------------------
// Presets
// ---------------------------------------------------------------------------

namespace {

constexpr double kPi = 3.14159265358979323846;

std::array<JointLimit, kNumJoints> symmetric_limits(double rad) {
  std::array<JointLimit, kNumJoints> out{};
  out.fill(JointLimit{-rad, rad});
  return out;
}

}  // namespace

ArmModel make_ur3e(const Transform& base) {
  // UR3e: 500 mm reach class. DH lengths approximate the published geometry.
  std::array<DhParam, kNumJoints> dh = {{
      {0.0, kPi / 2, 0.152, 0.0},    // shoulder pan
      {-0.244, 0.0, 0.0, 0.0},       // upper arm
      {-0.213, 0.0, 0.0, 0.0},       // forearm
      {0.0, kPi / 2, 0.131, 0.0},    // wrist 1
      {0.0, -kPi / 2, 0.0854, 0.0},  // wrist 2
      {0.0, 0.0, 0.0921, 0.0},       // wrist 3
  }};
  return ArmModel("UR3e", dh, symmetric_limits(2.0 * kPi), base, 0.045);
}

ArmModel make_ur5e(const Transform& base) {
  // UR5e: 850 mm reach class.
  std::array<DhParam, kNumJoints> dh = {{
      {0.0, kPi / 2, 0.1625, 0.0},
      {-0.425, 0.0, 0.0, 0.0},
      {-0.3922, 0.0, 0.0, 0.0},
      {0.0, kPi / 2, 0.1333, 0.0},
      {0.0, -kPi / 2, 0.0997, 0.0},
      {0.0, 0.0, 0.0996, 0.0},
  }};
  return ArmModel("UR5e", dh, symmetric_limits(2.0 * kPi), base, 0.06);
}

ArmModel make_viperx300(const Transform& base) {
  // ViperX 300: 750 mm horizontal reach, hobby-grade servos.
  std::array<DhParam, kNumJoints> dh = {{
      {0.0, kPi / 2, 0.127, 0.0},
      {-0.3, 0.0, 0.0, -kPi / 2},
      {-0.3, 0.0, 0.0, kPi / 2},
      {0.0, kPi / 2, 0.075, 0.0},
      {0.0, -kPi / 2, 0.065, 0.0},
      {0.0, 0.0, 0.066, 0.0},
  }};
  return ArmModel("ViperX-300", dh, symmetric_limits(kPi), base, 0.04);
}

ArmModel make_ned2(const Transform& base) {
  // Niryo Ned2: ~440 mm reach, educational arm.
  std::array<DhParam, kNumJoints> dh = {{
      {0.0, kPi / 2, 0.17, 0.0},
      {-0.21, 0.0, 0.0, -kPi / 2},
      {-0.0305, kPi / 2, 0.0, kPi / 2},
      {0.0, -kPi / 2, 0.2205, 0.0},
      {0.0, kPi / 2, 0.0, 0.0},
      {0.0, 0.0, 0.0735, 0.0},
  }};
  return ArmModel("Ned2", dh, symmetric_limits(kPi), base, 0.035);
}

JointVector sleep_configuration() { return {0.0, -1.85, 1.55, 0.0, 0.55, 0.0}; }

JointVector home_configuration() { return {0.0, -1.57, 0.0, -1.57, 0.0, 0.0}; }

}  // namespace rabit::kin
