// rabit::kin — six-axis robot arm kinematics.
//
// The labs in the paper use six-axis arms (UR3e in production, ViperX and
// Ned2 on the testbed). This module provides Denavit-Hartenberg chains,
// forward kinematics, a damped-least-squares numeric inverse-kinematics
// solver, joint-space trajectory interpolation, and approximate arm presets.
// Link positions from FK feed the Extended Simulator's collision polling.
#pragma once

#include <array>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "geometry/geometry.hpp"

namespace rabit::kin {

inline constexpr std::size_t kNumJoints = 6;

using JointVector = std::array<double, kNumJoints>;

/// One Denavit-Hartenberg row (standard convention): the transform from
/// link i-1 to link i is Rz(theta) Tz(d) Tx(a) Rx(alpha), with theta the
/// joint variable offset by `theta_offset`.
struct DhParam {
  double a = 0.0;             ///< link length (m)
  double alpha = 0.0;         ///< link twist (rad)
  double d = 0.0;             ///< link offset (m)
  double theta_offset = 0.0;  ///< fixed offset added to the joint angle (rad)
};

struct JointLimit {
  double min_rad;
  double max_rad;
};

/// Why an inverse-kinematics query failed. Mirrors the two real behaviours
/// observed in the paper's §IV category 4: targets outside the reachable
/// workspace, and solver non-convergence.
enum class IkError { OutOfReach, NoConvergence, JointLimit };

[[nodiscard]] std::string_view to_string(IkError e);

struct IkResult {
  std::optional<JointVector> joints;  ///< present on success
  IkError error = IkError::OutOfReach;
  int iterations = 0;
  double residual = 0.0;  ///< final position error (m)
};

/// A six-axis serial arm described by DH parameters, joint limits, and a
/// mounting pose in the lab frame.
class ArmModel {
 public:
  ArmModel(std::string name, std::array<DhParam, kNumJoints> dh,
           std::array<JointLimit, kNumJoints> limits, geom::Transform base,
           double link_radius_m);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const geom::Transform& base() const { return base_; }
  [[nodiscard]] double link_radius() const { return link_radius_; }
  [[nodiscard]] const std::array<JointLimit, kNumJoints>& joint_limits() const { return limits_; }

  /// Maximum distance from the base the wrist can reach (sum of DH lengths).
  [[nodiscard]] double max_reach() const;

  /// Forward kinematics: end-effector position in the lab frame.
  [[nodiscard]] geom::Vec3 forward(const JointVector& joints) const;

  /// Positions of the base and every joint origin (7 points) in the lab
  /// frame; consecutive pairs are the arm's links for collision checks.
  [[nodiscard]] std::vector<geom::Vec3> link_points(const JointVector& joints) const;

  /// Arm links as segments, in the lab frame.
  [[nodiscard]] std::vector<geom::Segment> link_segments(const JointVector& joints) const;

  [[nodiscard]] bool within_limits(const JointVector& joints) const;

  /// Damped-least-squares IK for the end-effector position (orientation
  /// free). `seed` is the preferred starting configuration; a few canonical
  /// restarts are tried when it stalls.
  [[nodiscard]] IkResult inverse(const geom::Vec3& target, const JointVector& seed) const;

  /// Quick reachability test against the workspace envelope.
  [[nodiscard]] bool reachable(const geom::Vec3& target) const;

 private:
  [[nodiscard]] IkResult solve_from(const geom::Vec3& target, const JointVector& seed) const;

  std::string name_;
  std::array<DhParam, kNumJoints> dh_;
  std::array<JointLimit, kNumJoints> limits_;
  geom::Transform base_;
  double link_radius_;
};

/// Linear joint-space trajectory between two configurations, sampled at
/// `samples` points (inclusive of endpoints). The Extended Simulator polls
/// the Cartesian path these samples trace.
class JointTrajectory {
 public:
  JointTrajectory(JointVector start, JointVector goal, std::size_t samples);

  [[nodiscard]] std::size_t samples() const { return samples_; }
  [[nodiscard]] JointVector at(std::size_t index) const;
  [[nodiscard]] const JointVector& start() const { return start_; }
  [[nodiscard]] const JointVector& goal() const { return goal_; }

  /// Cartesian end-effector path under `arm`.
  [[nodiscard]] geom::Polyline end_effector_path(const ArmModel& arm) const;

 private:
  JointVector start_;
  JointVector goal_;
  std::size_t samples_;
};

/// Approximate presets for the arms named in the paper. Dimensions follow the
/// vendors' published reach figures; exact DH tables are proprietary detail
/// the rule engine never depends on.
[[nodiscard]] ArmModel make_ur3e(const geom::Transform& base);
[[nodiscard]] ArmModel make_ur5e(const geom::Transform& base);
[[nodiscard]] ArmModel make_viperx300(const geom::Transform& base);
[[nodiscard]] ArmModel make_ned2(const geom::Transform& base);

/// A canonical tucked-in sleep configuration (used when a testbed arm parks
/// so the other may move — time multiplexing, §IV category 2).
[[nodiscard]] JointVector sleep_configuration();

/// A canonical upright home configuration.
[[nodiscard]] JointVector home_configuration();

}  // namespace rabit::kin
