// rabit::geom — 3D primitives for the cuboid world model.
//
// The Extended Simulator (paper §III) models every automation device as a 3D
// cuboid and detects collisions by polling the robot arm's trajectory against
// those cuboids. This module supplies the vector algebra, axis-aligned boxes,
// segment/box intersection (slab method), swept-point queries, and rigid
// frame transforms (used when attempting to unify the testbed arms'
// coordinate systems, §IV category 2).
#pragma once

#include <array>
#include <cmath>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace rabit::geom {

inline constexpr double kEpsilon = 1e-9;

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }

  [[nodiscard]] constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm() const { return std::sqrt(dot(*this)); }
  [[nodiscard]] constexpr double norm_squared() const { return dot(*this); }

  /// Unit vector; returns the zero vector unchanged if too small to normalize.
  [[nodiscard]] Vec3 normalized() const;

  [[nodiscard]] double distance_to(const Vec3& o) const { return (*this - o).norm(); }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

[[nodiscard]] bool approx_equal(const Vec3& a, const Vec3& b, double tol = 1e-6);

std::ostream& operator<<(std::ostream& os, const Vec3& v);

/// Linear interpolation: t=0 gives a, t=1 gives b.
[[nodiscard]] Vec3 lerp(const Vec3& a, const Vec3& b, double t);

// ---------------------------------------------------------------------------

/// Axis-aligned box: the paper's device cuboid.
struct Aabb {
  Vec3 min;
  Vec3 max;

  Aabb() = default;
  Aabb(const Vec3& min_, const Vec3& max_);

  /// Box centered at `center` with full extents `size`.
  [[nodiscard]] static Aabb from_center(const Vec3& center, const Vec3& size);

  [[nodiscard]] Vec3 center() const { return (min + max) * 0.5; }
  [[nodiscard]] Vec3 size() const { return max - min; }
  [[nodiscard]] double volume() const;

  [[nodiscard]] bool contains(const Vec3& p) const;
  [[nodiscard]] bool intersects(const Aabb& o) const;

  /// Box grown by `margin` on every face. Used for held-object dimension
  /// inflation (paper §IV category 4: "a robot arm's dimensions may change if
  /// it is holding an object") and for safety margins.
  [[nodiscard]] Aabb inflated(double margin) const;
  [[nodiscard]] Aabb inflated(const Vec3& margin) const;

  /// Smallest box containing both.
  [[nodiscard]] Aabb united(const Aabb& o) const;

  /// Box translated by `offset`.
  [[nodiscard]] Aabb translated(const Vec3& offset) const;

  /// Closest point inside the box to `p` (p itself if contained).
  [[nodiscard]] Vec3 clamp(const Vec3& p) const;

  /// Euclidean distance from `p` to the box surface (0 if inside).
  [[nodiscard]] double distance_to(const Vec3& p) const;
};

[[nodiscard]] bool approx_equal(const Aabb& a, const Aabb& b, double tol = 1e-6);

/// Signed distance from `p` to the box surface: positive outside (Euclidean
/// clearance), negative inside (depth to the nearest face). The runtime
/// assurance barrier h(s) is built from this.
[[nodiscard]] double signed_distance(const Aabb& box, const Vec3& p);

/// Signed separation of two boxes: positive = smallest Euclidean gap between
/// them, negative = smallest per-axis penetration depth when they overlap.
[[nodiscard]] double signed_distance(const Aabb& a, const Aabb& b);

// ---------------------------------------------------------------------------

struct Segment {
  Vec3 a;
  Vec3 b;

  [[nodiscard]] double length() const { return a.distance_to(b); }
  [[nodiscard]] Vec3 point_at(double t) const { return lerp(a, b, t); }
};

/// Slab-method segment/box intersection. Returns the parameter t in [0,1] of
/// first contact, or nullopt when the segment misses the box entirely.
[[nodiscard]] std::optional<double> intersect(const Segment& s, const Aabb& box);

/// True when any point of the segment lies inside or on the box.
[[nodiscard]] bool intersects(const Segment& s, const Aabb& box);

/// Shortest distance between a segment and a point.
[[nodiscard]] double distance(const Segment& s, const Vec3& p);

/// Shortest distance between two segments (arm links of two robots).
[[nodiscard]] double distance(const Segment& s1, const Segment& s2);

// ---------------------------------------------------------------------------

/// Piecewise-linear path through 3D space, e.g. a sampled arm trajectory.
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<Vec3> points) : points_(std::move(points)) {}

  void push_back(const Vec3& p) { points_.push_back(p); }
  [[nodiscard]] const std::vector<Vec3>& points() const { return points_; }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] double length() const;

  /// Point at arc-length fraction t in [0,1].
  [[nodiscard]] Vec3 sample(double t) const;

  /// Resamples into `count` evenly spaced points (count >= 2). This is the
  /// "continuous polling" of the Extended Simulator: finer sampling catches
  /// collisions that coarse target-only checks miss.
  [[nodiscard]] std::vector<Vec3> resample(std::size_t count) const;

  /// First sampled point (by arc length, at `step` resolution) that lies
  /// inside `box`, or nullopt if the polyline avoids it.
  [[nodiscard]] std::optional<Vec3> first_hit(const Aabb& box, double step) const;

 private:
  std::vector<Vec3> points_;
};

// ---------------------------------------------------------------------------

/// Rigid transform (rotation + translation). Rotations are stored as a
/// row-major 3x3 matrix built from Z-Y-X Euler angles.
class Transform {
 public:
  /// Identity.
  Transform();

  /// From Euler angles (radians) applied in Z (yaw), Y (pitch), X (roll)
  /// order, followed by `translation`.
  static Transform from_euler(double roll, double pitch, double yaw, const Vec3& translation);

  static Transform translation(const Vec3& t);
  static Transform rotation_z(double angle);

  [[nodiscard]] Vec3 apply(const Vec3& p) const;
  [[nodiscard]] Vec3 rotate(const Vec3& v) const;  // rotation only, no translation

  /// Composition: (a * b).apply(p) == a.apply(b.apply(p)).
  [[nodiscard]] Transform operator*(const Transform& o) const;

  [[nodiscard]] Transform inverse() const;

  [[nodiscard]] const Vec3& translation_part() const { return t_; }

  /// Heading about +Z. Exact for yaw-only transforms (tabletop arm mounts);
  /// for general rotations this is the Z-Y-X Euler yaw component.
  [[nodiscard]] double yaw() const;

 private:
  std::array<std::array<double, 3>, 3> r_;
  Vec3 t_;
};

/// Least-squares estimate of the rigid transform mapping `from[i]` onto
/// `to[i]` given noisy correspondences (the paper's attempted global-frame
/// unification, which yielded ~3 cm error on the testbed). Uses a simplified
/// Kabsch-style fit around centroids with a yaw-only rotation model, which
/// matches tabletop arm mounts (vertical axes aligned).
struct FrameFit {
  Transform transform;
  double rms_error = 0.0;  ///< root-mean-square residual over the inputs
};
[[nodiscard]] FrameFit fit_frame(const std::vector<Vec3>& from, const std::vector<Vec3>& to);

}  // namespace rabit::geom
