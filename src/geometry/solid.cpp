#include "geometry/solid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rabit::geom {

Solid Solid::box(const Aabb& b) { return Solid(Data(b), b); }

Solid Solid::vertical_cylinder(const Vec3& base_center, double radius, double height) {
  if (radius <= 0 || height <= 0) {
    throw std::invalid_argument("Solid::vertical_cylinder: radius and height must be positive");
  }
  Aabb bounds(base_center - Vec3(radius, radius, 0),
              base_center + Vec3(radius, radius, height));
  return Solid(Data(CylinderData{base_center, radius, height}), bounds);
}

Solid Solid::hemisphere(const Vec3& dome_base_center, double radius) {
  if (radius <= 0) throw std::invalid_argument("Solid::hemisphere: radius must be positive");
  Aabb bounds(dome_base_center - Vec3(radius, radius, 0),
              dome_base_center + Vec3(radius, radius, radius));
  return Solid(Data(HemisphereData{dome_base_center, radius}), bounds);
}

Solid Solid::compound(std::vector<Solid> parts) {
  if (parts.empty()) throw std::invalid_argument("Solid::compound: needs at least one part");
  Aabb bounds = parts.front().bounding_box();
  for (const Solid& s : parts) bounds = bounds.united(s.bounding_box());
  return Solid(Data(std::make_shared<const std::vector<Solid>>(std::move(parts))), bounds);
}

Solid::Kind Solid::kind() const {
  switch (data_.index()) {
    case 0: return Kind::Box;
    case 1: return Kind::Cylinder;
    case 2: return Kind::Hemisphere;
    default: return Kind::Compound;
  }
}

const Aabb& Solid::as_box() const {
  if (const Aabb* b = std::get_if<Aabb>(&data_)) return *b;
  throw std::logic_error("Solid::as_box on a non-box solid");
}

const Solid::CylinderData& Solid::as_cylinder() const {
  if (const auto* c = std::get_if<CylinderData>(&data_)) return *c;
  throw std::logic_error("Solid::as_cylinder on a non-cylinder solid");
}

const Solid::HemisphereData& Solid::as_hemisphere() const {
  if (const auto* h = std::get_if<HemisphereData>(&data_)) return *h;
  throw std::logic_error("Solid::as_hemisphere on a non-hemisphere solid");
}

const std::vector<Solid>& Solid::as_compound() const {
  if (const auto* p = std::get_if<Parts>(&data_)) return **p;
  throw std::logic_error("Solid::as_compound on a non-compound solid");
}

bool Solid::contains(const Vec3& p) const {
  return std::visit(
      [&](const auto& data) -> bool {
        using T = std::decay_t<decltype(data)>;
        if constexpr (std::is_same_v<T, Aabb>) {
          return data.contains(p);
        } else if constexpr (std::is_same_v<T, CylinderData>) {
          if (p.z < data.base_center.z || p.z > data.base_center.z + data.height) return false;
          double dx = p.x - data.base_center.x;
          double dy = p.y - data.base_center.y;
          return dx * dx + dy * dy <= data.radius * data.radius;
        } else if constexpr (std::is_same_v<T, HemisphereData>) {
          if (p.z < data.dome_base_center.z) return false;
          return p.distance_to(data.dome_base_center) <= data.radius;
        } else {  // compound
          for (const Solid& part : *data) {
            if (part.contains(p)) return true;
          }
          return false;
        }
      },
      data_);
}

bool Solid::intersects_box(const Aabb& box) const {
  return std::visit(
      [&](const auto& data) -> bool {
        using T = std::decay_t<decltype(data)>;
        if constexpr (std::is_same_v<T, Aabb>) {
          return data.intersects(box);
        } else if constexpr (std::is_same_v<T, CylinderData>) {
          // z slabs must overlap; then the closest point of the box's xy
          // rectangle to the axis must lie within the radius.
          if (box.max.z < data.base_center.z || box.min.z > data.base_center.z + data.height) {
            return false;
          }
          double qx = std::clamp(data.base_center.x, box.min.x, box.max.x);
          double qy = std::clamp(data.base_center.y, box.min.y, box.max.y);
          double dx = qx - data.base_center.x;
          double dy = qy - data.base_center.y;
          return dx * dx + dy * dy <= data.radius * data.radius;
        } else if constexpr (std::is_same_v<T, HemisphereData>) {
          // Exact: the closest point of (box ∩ half-space z >= base) to the
          // dome center must lie within the radius.
          if (box.max.z < data.dome_base_center.z) return false;
          Vec3 clipped_min(box.min.x, box.min.y,
                           std::max(box.min.z, data.dome_base_center.z));
          Aabb clipped(clipped_min, box.max);
          return clipped.distance_to(data.dome_base_center) <= data.radius;
        } else {  // compound
          for (const Solid& part : *data) {
            if (part.intersects_box(box)) return true;
          }
          return false;
        }
      },
      data_);
}

double distance_to(const Solid& s, const Vec3& p) {
  switch (s.kind()) {
    case Solid::Kind::Box:
      return s.as_box().distance_to(p);
    case Solid::Kind::Cylinder: {
      const Solid::CylinderData& c = s.as_cylinder();
      double dx = p.x - c.base_center.x;
      double dy = p.y - c.base_center.y;
      double radial = std::max(0.0, std::sqrt(dx * dx + dy * dy) - c.radius);
      double axial =
          std::max({0.0, c.base_center.z - p.z, p.z - (c.base_center.z + c.height)});
      return std::sqrt(radial * radial + axial * axial);
    }
    case Solid::Kind::Hemisphere: {
      const Solid::HemisphereData& h = s.as_hemisphere();
      if (p.z >= h.dome_base_center.z) {
        return std::max(0.0, p.distance_to(h.dome_base_center) - h.radius);
      }
      // Below the base plane: closest feature is the base disk (or its rim).
      double dx = p.x - h.dome_base_center.x;
      double dy = p.y - h.dome_base_center.y;
      double radial = std::max(0.0, std::sqrt(dx * dx + dy * dy) - h.radius);
      double below = h.dome_base_center.z - p.z;
      return std::sqrt(radial * radial + below * below);
    }
    case Solid::Kind::Compound: {
      double best = std::numeric_limits<double>::infinity();
      for (const Solid& part : s.as_compound()) best = std::min(best, distance_to(part, p));
      return best;
    }
  }
  return 0.0;
}

}  // namespace rabit::geom
