#include "geometry/geometry.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <stdexcept>

namespace rabit::geom {

Vec3 Vec3::normalized() const {
  double n = norm();
  if (n < kEpsilon) return *this;
  return *this / n;
}

bool approx_equal(const Vec3& a, const Vec3& b, double tol) {
  return std::abs(a.x - b.x) <= tol && std::abs(a.y - b.y) <= tol && std::abs(a.z - b.z) <= tol;
}

std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

Vec3 lerp(const Vec3& a, const Vec3& b, double t) { return a + (b - a) * t; }

// ---------------------------------------------------------------------------
// Aabb
// ---------------------------------------------------------------------------

Aabb::Aabb(const Vec3& min_, const Vec3& max_) : min(min_), max(max_) {
  if (min.x > max.x || min.y > max.y || min.z > max.z) {
    throw std::invalid_argument("Aabb: min must not exceed max on any axis");
  }
}

Aabb Aabb::from_center(const Vec3& center, const Vec3& size) {
  if (size.x < 0 || size.y < 0 || size.z < 0) {
    throw std::invalid_argument("Aabb::from_center: negative size");
  }
  Vec3 half = size * 0.5;
  return Aabb(center - half, center + half);
}

double Aabb::volume() const {
  Vec3 s = size();
  return s.x * s.y * s.z;
}

bool Aabb::contains(const Vec3& p) const {
  return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y && p.z >= min.z &&
         p.z <= max.z;
}

bool Aabb::intersects(const Aabb& o) const {
  return min.x <= o.max.x && max.x >= o.min.x && min.y <= o.max.y && max.y >= o.min.y &&
         min.z <= o.max.z && max.z >= o.min.z;
}

Aabb Aabb::inflated(double margin) const { return inflated(Vec3(margin, margin, margin)); }

Aabb Aabb::inflated(const Vec3& margin) const {
  Vec3 new_min = min - margin;
  Vec3 new_max = max + margin;
  // A negative margin may invert the box; collapse to the center instead.
  Vec3 c = center();
  new_min = Vec3(std::min(new_min.x, c.x), std::min(new_min.y, c.y), std::min(new_min.z, c.z));
  new_max = Vec3(std::max(new_max.x, c.x), std::max(new_max.y, c.y), std::max(new_max.z, c.z));
  return Aabb(new_min, new_max);
}

Aabb Aabb::united(const Aabb& o) const {
  return Aabb(Vec3(std::min(min.x, o.min.x), std::min(min.y, o.min.y), std::min(min.z, o.min.z)),
              Vec3(std::max(max.x, o.max.x), std::max(max.y, o.max.y), std::max(max.z, o.max.z)));
}

Aabb Aabb::translated(const Vec3& offset) const { return Aabb(min + offset, max + offset); }

Vec3 Aabb::clamp(const Vec3& p) const {
  return Vec3(std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y),
              std::clamp(p.z, min.z, max.z));
}

double Aabb::distance_to(const Vec3& p) const { return clamp(p).distance_to(p); }

bool approx_equal(const Aabb& a, const Aabb& b, double tol) {
  return approx_equal(a.min, b.min, tol) && approx_equal(a.max, b.max, tol);
}

double signed_distance(const Aabb& box, const Vec3& p) {
  if (!box.contains(p)) return box.distance_to(p);
  double depth = std::min({p.x - box.min.x, box.max.x - p.x, p.y - box.min.y, box.max.y - p.y,
                           p.z - box.min.z, box.max.z - p.z});
  return -depth;
}

double signed_distance(const Aabb& a, const Aabb& b) {
  // Per-axis gap (positive) or overlap (negative).
  double gx = std::max(a.min.x - b.max.x, b.min.x - a.max.x);
  double gy = std::max(a.min.y - b.max.y, b.min.y - a.max.y);
  double gz = std::max(a.min.z - b.max.z, b.min.z - a.max.z);
  if (gx <= 0 && gy <= 0 && gz <= 0) {
    // Overlapping: penetration depth along the easiest separating axis.
    return std::max({gx, gy, gz});
  }
  double dx = std::max(0.0, gx);
  double dy = std::max(0.0, gy);
  double dz = std::max(0.0, gz);
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

// ---------------------------------------------------------------------------
// Segment queries
// ---------------------------------------------------------------------------

std::optional<double> intersect(const Segment& s, const Aabb& box) {
  // Slab method over the parameterization p(t) = a + t*(b-a), t in [0,1].
  Vec3 d = s.b - s.a;
  double t_min = 0.0;
  double t_max = 1.0;

  const std::array<double, 3> origin = {s.a.x, s.a.y, s.a.z};
  const std::array<double, 3> dir = {d.x, d.y, d.z};
  const std::array<double, 3> lo = {box.min.x, box.min.y, box.min.z};
  const std::array<double, 3> hi = {box.max.x, box.max.y, box.max.z};

  for (int axis = 0; axis < 3; ++axis) {
    if (std::abs(dir[axis]) < kEpsilon) {
      // Parallel to this slab: must already lie within it.
      if (origin[axis] < lo[axis] || origin[axis] > hi[axis]) return std::nullopt;
      continue;
    }
    double inv = 1.0 / dir[axis];
    double t1 = (lo[axis] - origin[axis]) * inv;
    double t2 = (hi[axis] - origin[axis]) * inv;
    if (t1 > t2) std::swap(t1, t2);
    t_min = std::max(t_min, t1);
    t_max = std::min(t_max, t2);
    if (t_min > t_max) return std::nullopt;
  }
  return t_min;
}

bool intersects(const Segment& s, const Aabb& box) { return intersect(s, box).has_value(); }

double distance(const Segment& s, const Vec3& p) {
  Vec3 d = s.b - s.a;
  double len_sq = d.norm_squared();
  if (len_sq < kEpsilon) return s.a.distance_to(p);
  double t = std::clamp((p - s.a).dot(d) / len_sq, 0.0, 1.0);
  return s.point_at(t).distance_to(p);
}

double distance(const Segment& s1, const Segment& s2) {
  // Standard closest-point-between-segments computation (Ericson, RTCD §5.1.9).
  Vec3 d1 = s1.b - s1.a;
  Vec3 d2 = s2.b - s2.a;
  Vec3 r = s1.a - s2.a;
  double a = d1.norm_squared();
  double e = d2.norm_squared();
  double f = d2.dot(r);

  double s = 0.0;
  double t = 0.0;
  if (a < kEpsilon && e < kEpsilon) {
    return s1.a.distance_to(s2.a);
  }
  if (a < kEpsilon) {
    t = std::clamp(f / e, 0.0, 1.0);
  } else {
    double c = d1.dot(r);
    if (e < kEpsilon) {
      s = std::clamp(-c / a, 0.0, 1.0);
    } else {
      double b = d1.dot(d2);
      double denom = a * e - b * b;
      if (denom > kEpsilon) {
        s = std::clamp((b * f - c * e) / denom, 0.0, 1.0);
      }
      t = (b * s + f) / e;
      if (t < 0.0) {
        t = 0.0;
        s = std::clamp(-c / a, 0.0, 1.0);
      } else if (t > 1.0) {
        t = 1.0;
        s = std::clamp((b - c) / a, 0.0, 1.0);
      }
    }
  }
  return s1.point_at(s).distance_to(s2.point_at(t));
}

// ---------------------------------------------------------------------------
// Polyline
// ---------------------------------------------------------------------------

double Polyline::length() const {
  double total = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    total += points_[i - 1].distance_to(points_[i]);
  }
  return total;
}

Vec3 Polyline::sample(double t) const {
  if (points_.empty()) throw std::logic_error("Polyline::sample on empty polyline");
  if (points_.size() == 1) return points_.front();
  t = std::clamp(t, 0.0, 1.0);
  double target = t * length();
  double walked = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    double seg_len = points_[i - 1].distance_to(points_[i]);
    if (walked + seg_len >= target && seg_len > kEpsilon) {
      double local = (target - walked) / seg_len;
      return lerp(points_[i - 1], points_[i], local);
    }
    walked += seg_len;
  }
  return points_.back();
}

std::vector<Vec3> Polyline::resample(std::size_t count) const {
  if (count < 2) throw std::invalid_argument("Polyline::resample: count must be >= 2");
  std::vector<Vec3> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(sample(static_cast<double>(i) / static_cast<double>(count - 1)));
  }
  return out;
}

std::optional<Vec3> Polyline::first_hit(const Aabb& box, double step) const {
  if (points_.empty()) return std::nullopt;
  if (step <= 0) throw std::invalid_argument("Polyline::first_hit: step must be positive");
  double total = length();
  if (total < kEpsilon) {
    return box.contains(points_.front()) ? std::optional<Vec3>(points_.front()) : std::nullopt;
  }
  auto steps = static_cast<std::size_t>(std::ceil(total / step));
  for (std::size_t i = 0; i <= steps; ++i) {
    Vec3 p = sample(static_cast<double>(i) / static_cast<double>(steps));
    if (box.contains(p)) return p;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Transform
// ---------------------------------------------------------------------------

Transform::Transform() : r_{{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}}, t_() {}

Transform Transform::from_euler(double roll, double pitch, double yaw, const Vec3& translation) {
  double cr = std::cos(roll);
  double sr = std::sin(roll);
  double cp = std::cos(pitch);
  double sp = std::sin(pitch);
  double cy = std::cos(yaw);
  double sy = std::sin(yaw);

  Transform out;
  // R = Rz(yaw) * Ry(pitch) * Rx(roll)
  out.r_ = {{{cy * cp, cy * sp * sr - sy * cr, cy * sp * cr + sy * sr},
             {sy * cp, sy * sp * sr + cy * cr, sy * sp * cr - cy * sr},
             {-sp, cp * sr, cp * cr}}};
  out.t_ = translation;
  return out;
}

Transform Transform::translation(const Vec3& t) {
  Transform out;
  out.t_ = t;
  return out;
}

Transform Transform::rotation_z(double angle) { return from_euler(0.0, 0.0, angle, Vec3()); }

Vec3 Transform::rotate(const Vec3& v) const {
  return Vec3(r_[0][0] * v.x + r_[0][1] * v.y + r_[0][2] * v.z,
              r_[1][0] * v.x + r_[1][1] * v.y + r_[1][2] * v.z,
              r_[2][0] * v.x + r_[2][1] * v.y + r_[2][2] * v.z);
}

Vec3 Transform::apply(const Vec3& p) const { return rotate(p) + t_; }

Transform Transform::operator*(const Transform& o) const {
  Transform out;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      out.r_[i][j] = r_[i][0] * o.r_[0][j] + r_[i][1] * o.r_[1][j] + r_[i][2] * o.r_[2][j];
    }
  }
  out.t_ = apply(o.t_);
  return out;
}

double Transform::yaw() const { return std::atan2(r_[1][0], r_[0][0]); }

Transform Transform::inverse() const {
  Transform out;
  // Rotation matrices invert by transposition.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) out.r_[i][j] = r_[j][i];
  }
  out.t_ = -out.rotate(t_);
  return out;
}

FrameFit fit_frame(const std::vector<Vec3>& from, const std::vector<Vec3>& to) {
  if (from.size() != to.size() || from.size() < 2) {
    throw std::invalid_argument("fit_frame: need >= 2 matched point pairs");
  }
  auto centroid = [](const std::vector<Vec3>& pts) {
    Vec3 c;
    for (const Vec3& p : pts) c += p;
    return c / static_cast<double>(pts.size());
  };
  Vec3 cf = centroid(from);
  Vec3 ct = centroid(to);

  // Yaw-only Kabsch: maximize sum of planar dot products of centered pairs.
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < from.size(); ++i) {
    Vec3 a = from[i] - cf;
    Vec3 b = to[i] - ct;
    sxx += a.x * b.x + a.y * b.y;
    sxy += a.x * b.y - a.y * b.x;
  }
  double yaw = std::atan2(sxy, sxx);
  Transform rot = Transform::rotation_z(yaw);
  Vec3 trans = ct - rot.apply(cf);
  Transform fit = Transform::translation(trans) * rot;

  double sum_sq = 0.0;
  for (std::size_t i = 0; i < from.size(); ++i) {
    double err = fit.apply(from[i]).distance_to(to[i]);
    sum_sq += err * err;
  }
  return FrameFit{fit, std::sqrt(sum_sq / static_cast<double>(from.size()))};
}

}  // namespace rabit::geom
