// Non-cuboid solids — the paper's §V-C open challenge.
//
// Pilot-study participant P: "the shape of many devices do not comply with
// RABIT's cuboid specification. For example, a centrifuge resembles a
// hemisphere more than a cuboid and the thermoshaker has a bump at the top.
// They suggested that incorporating more detailed shape descriptions would
// enhance RABIT's flexibility." This module adds exactly that: boxes,
// vertical cylinders, hemispherical domes, and compounds of them, with the
// point-containment and box-intersection queries the collision checker needs.
#pragma once

#include <memory>
#include <variant>
#include <vector>

#include "geometry/geometry.hpp"

namespace rabit::geom {

/// A closed solid region of space. Value type; compounds share their parts.
class Solid {
 public:
  /// An axis-aligned box (the paper's default cuboid description).
  [[nodiscard]] static Solid box(const Aabb& b);

  /// A vertical (z-axis) cylinder standing on `base_center`.
  [[nodiscard]] static Solid vertical_cylinder(const Vec3& base_center, double radius,
                                               double height);

  /// The upper half-ball of radius `radius` sitting on the horizontal plane
  /// through `dome_base_center` (a centrifuge dome).
  [[nodiscard]] static Solid hemisphere(const Vec3& dome_base_center, double radius);

  /// The union of several solids (a body with a bump).
  [[nodiscard]] static Solid compound(std::vector<Solid> parts);

  [[nodiscard]] bool contains(const Vec3& p) const;

  /// Exact intersection test against an axis-aligned box.
  [[nodiscard]] bool intersects_box(const Aabb& box) const;

  /// Tightest axis-aligned bound (what the cuboid approximation would use).
  [[nodiscard]] const Aabb& bounding_box() const { return bounds_; }

  enum class Kind { Box, Cylinder, Hemisphere, Compound };
  [[nodiscard]] Kind kind() const;

  /// Introspection for serialization. Only valid for the matching kind.
  struct CylinderData {
    Vec3 base_center;
    double radius;
    double height;
  };
  struct HemisphereData {
    Vec3 dome_base_center;
    double radius;
  };
  [[nodiscard]] const Aabb& as_box() const;
  [[nodiscard]] const CylinderData& as_cylinder() const;
  [[nodiscard]] const HemisphereData& as_hemisphere() const;
  [[nodiscard]] const std::vector<Solid>& as_compound() const;

 private:
  using Parts = std::shared_ptr<const std::vector<Solid>>;
  using Data = std::variant<Aabb, CylinderData, HemisphereData, Parts>;

  explicit Solid(Data data, Aabb bounds) : data_(std::move(data)), bounds_(bounds) {}

  Data data_;
  Aabb bounds_;
};

/// Euclidean distance from `p` to the solid's surface, 0 when `p` is inside
/// or on it. Exact for every kind (the clearance side of the RTA barrier).
[[nodiscard]] double distance_to(const Solid& s, const Vec3& p);

}  // namespace rabit::geom
