# Empty dependencies file for bench_rad_mining.
# This may be replaced when dependencies are built.
