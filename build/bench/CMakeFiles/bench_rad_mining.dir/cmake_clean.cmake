file(REMOVE_RECURSE
  "CMakeFiles/bench_rad_mining.dir/bench_rad_mining.cpp.o"
  "CMakeFiles/bench_rad_mining.dir/bench_rad_mining.cpp.o.d"
  "bench_rad_mining"
  "bench_rad_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rad_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
