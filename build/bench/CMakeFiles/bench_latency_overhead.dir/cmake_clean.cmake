file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_overhead.dir/bench_latency_overhead.cpp.o"
  "CMakeFiles/bench_latency_overhead.dir/bench_latency_overhead.cpp.o.d"
  "bench_latency_overhead"
  "bench_latency_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
