# Empty compiler generated dependencies file for bench_latency_overhead.
# This may be replaced when dependencies are built.
