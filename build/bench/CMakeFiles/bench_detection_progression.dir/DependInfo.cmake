
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_detection_progression.cpp" "bench/CMakeFiles/bench_detection_progression.dir/bench_detection_progression.cpp.o" "gcc" "bench/CMakeFiles/bench_detection_progression.dir/bench_detection_progression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bugs/CMakeFiles/rabit_bugs.dir/DependInfo.cmake"
  "/root/repo/build/src/rad/CMakeFiles/rabit_rad.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/rabit_script.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rabit_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rabit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rabit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/rabit_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/rabit_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/rabit_kinematics.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/rabit_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/rabit_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
