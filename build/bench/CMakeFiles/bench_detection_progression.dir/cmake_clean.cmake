file(REMOVE_RECURSE
  "CMakeFiles/bench_detection_progression.dir/bench_detection_progression.cpp.o"
  "CMakeFiles/bench_detection_progression.dir/bench_detection_progression.cpp.o.d"
  "bench_detection_progression"
  "bench_detection_progression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detection_progression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
