# Empty dependencies file for bench_detection_progression.
# This may be replaced when dependencies are built.
