file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_trajectory.dir/bench_ablation_trajectory.cpp.o"
  "CMakeFiles/bench_ablation_trajectory.dir/bench_ablation_trajectory.cpp.o.d"
  "bench_ablation_trajectory"
  "bench_ablation_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
