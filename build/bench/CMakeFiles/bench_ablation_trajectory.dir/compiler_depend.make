# Empty compiler generated dependencies file for bench_ablation_trajectory.
# This may be replaced when dependencies are built.
