# Empty compiler generated dependencies file for bench_ablation_shapes.
# This may be replaced when dependencies are built.
