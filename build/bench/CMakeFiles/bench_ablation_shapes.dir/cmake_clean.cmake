file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shapes.dir/bench_ablation_shapes.cpp.o"
  "CMakeFiles/bench_ablation_shapes.dir/bench_ablation_shapes.cpp.o.d"
  "bench_ablation_shapes"
  "bench_ablation_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
