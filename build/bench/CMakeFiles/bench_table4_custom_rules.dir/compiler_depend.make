# Empty compiler generated dependencies file for bench_table4_custom_rules.
# This may be replaced when dependencies are built.
