file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_custom_rules.dir/bench_table4_custom_rules.cpp.o"
  "CMakeFiles/bench_table4_custom_rules.dir/bench_table4_custom_rules.cpp.o.d"
  "bench_table4_custom_rules"
  "bench_table4_custom_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_custom_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
