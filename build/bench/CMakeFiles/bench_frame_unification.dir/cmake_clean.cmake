file(REMOVE_RECURSE
  "CMakeFiles/bench_frame_unification.dir/bench_frame_unification.cpp.o"
  "CMakeFiles/bench_frame_unification.dir/bench_frame_unification.cpp.o.d"
  "bench_frame_unification"
  "bench_frame_unification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frame_unification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
