# Empty compiler generated dependencies file for bench_frame_unification.
# This may be replaced when dependencies are built.
