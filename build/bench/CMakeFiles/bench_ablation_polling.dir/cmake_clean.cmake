file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_polling.dir/bench_ablation_polling.cpp.o"
  "CMakeFiles/bench_ablation_polling.dir/bench_ablation_polling.cpp.o.d"
  "bench_ablation_polling"
  "bench_ablation_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
