# Empty compiler generated dependencies file for bench_ablation_polling.
# This may be replaced when dependencies are built.
