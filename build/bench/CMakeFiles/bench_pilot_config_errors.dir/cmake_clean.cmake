file(REMOVE_RECURSE
  "CMakeFiles/bench_pilot_config_errors.dir/bench_pilot_config_errors.cpp.o"
  "CMakeFiles/bench_pilot_config_errors.dir/bench_pilot_config_errors.cpp.o.d"
  "bench_pilot_config_errors"
  "bench_pilot_config_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pilot_config_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
