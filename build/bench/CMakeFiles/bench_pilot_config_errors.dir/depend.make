# Empty dependencies file for bench_pilot_config_errors.
# This may be replaced when dependencies are built.
