file(REMOVE_RECURSE
  "CMakeFiles/bench_multiplexing.dir/bench_multiplexing.cpp.o"
  "CMakeFiles/bench_multiplexing.dir/bench_multiplexing.cpp.o.d"
  "bench_multiplexing"
  "bench_multiplexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
