# Empty compiler generated dependencies file for bench_multiplexing.
# This may be replaced when dependencies are built.
