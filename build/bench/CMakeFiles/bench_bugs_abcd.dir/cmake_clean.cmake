file(REMOVE_RECURSE
  "CMakeFiles/bench_bugs_abcd.dir/bench_bugs_abcd.cpp.o"
  "CMakeFiles/bench_bugs_abcd.dir/bench_bugs_abcd.cpp.o.d"
  "bench_bugs_abcd"
  "bench_bugs_abcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bugs_abcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
