# Empty dependencies file for bench_bugs_abcd.
# This may be replaced when dependencies are built.
