file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_general_rules.dir/bench_table3_general_rules.cpp.o"
  "CMakeFiles/bench_table3_general_rules.dir/bench_table3_general_rules.cpp.o.d"
  "bench_table3_general_rules"
  "bench_table3_general_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_general_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
