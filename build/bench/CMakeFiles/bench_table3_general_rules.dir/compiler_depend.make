# Empty compiler generated dependencies file for bench_table3_general_rules.
# This may be replaced when dependencies are built.
