file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_transitions.dir/bench_table2_transitions.cpp.o"
  "CMakeFiles/bench_table2_transitions.dir/bench_table2_transitions.cpp.o.d"
  "bench_table2_transitions"
  "bench_table2_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
