# Empty dependencies file for bench_table2_transitions.
# This may be replaced when dependencies are built.
