file(REMOVE_RECURSE
  "CMakeFiles/bench_synthetic_bugs.dir/bench_synthetic_bugs.cpp.o"
  "CMakeFiles/bench_synthetic_bugs.dir/bench_synthetic_bugs.cpp.o.d"
  "bench_synthetic_bugs"
  "bench_synthetic_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synthetic_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
