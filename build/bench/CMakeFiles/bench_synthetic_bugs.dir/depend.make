# Empty dependencies file for bench_synthetic_bugs.
# This may be replaced when dependencies are built.
