# Empty dependencies file for bench_table1_stages.
# This may be replaced when dependencies are built.
