file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_stages.dir/bench_table1_stages.cpp.o"
  "CMakeFiles/bench_table1_stages.dir/bench_table1_stages.cpp.o.d"
  "bench_table1_stages"
  "bench_table1_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
