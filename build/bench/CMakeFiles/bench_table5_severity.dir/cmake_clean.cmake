file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_severity.dir/bench_table5_severity.cpp.o"
  "CMakeFiles/bench_table5_severity.dir/bench_table5_severity.cpp.o.d"
  "bench_table5_severity"
  "bench_table5_severity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_severity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
