# Empty dependencies file for bench_table5_severity.
# This may be replaced when dependencies are built.
