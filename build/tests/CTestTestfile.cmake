# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/kinematics_test[1]_include.cmake")
include("/root/repo/build/tests/devices_test[1]_include.cmake")
include("/root/repo/build/tests/world_test[1]_include.cmake")
include("/root/repo/build/tests/backend_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/tracker_test[1]_include.cmake")
include("/root/repo/build/tests/rules_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/script_test[1]_include.cmake")
include("/root/repo/build/tests/rad_test[1]_include.cmake")
include("/root/repo/build/tests/bugs_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/solid_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/multidoor_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/rules_edge_test[1]_include.cmake")
include("/root/repo/build/tests/deck_test[1]_include.cmake")
