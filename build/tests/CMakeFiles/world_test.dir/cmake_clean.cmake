file(REMOVE_RECURSE
  "CMakeFiles/world_test.dir/world_test.cpp.o"
  "CMakeFiles/world_test.dir/world_test.cpp.o.d"
  "world_test"
  "world_test.pdb"
  "world_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
