file(REMOVE_RECURSE
  "CMakeFiles/backend_test.dir/backend_test.cpp.o"
  "CMakeFiles/backend_test.dir/backend_test.cpp.o.d"
  "backend_test"
  "backend_test.pdb"
  "backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
