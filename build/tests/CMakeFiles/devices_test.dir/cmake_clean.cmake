file(REMOVE_RECURSE
  "CMakeFiles/devices_test.dir/devices_test.cpp.o"
  "CMakeFiles/devices_test.dir/devices_test.cpp.o.d"
  "devices_test"
  "devices_test.pdb"
  "devices_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devices_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
