# Empty dependencies file for rad_test.
# This may be replaced when dependencies are built.
