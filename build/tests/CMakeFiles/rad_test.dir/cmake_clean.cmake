file(REMOVE_RECURSE
  "CMakeFiles/rad_test.dir/rad_test.cpp.o"
  "CMakeFiles/rad_test.dir/rad_test.cpp.o.d"
  "rad_test"
  "rad_test.pdb"
  "rad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
