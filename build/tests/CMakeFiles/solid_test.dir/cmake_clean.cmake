file(REMOVE_RECURSE
  "CMakeFiles/solid_test.dir/solid_test.cpp.o"
  "CMakeFiles/solid_test.dir/solid_test.cpp.o.d"
  "solid_test"
  "solid_test.pdb"
  "solid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
