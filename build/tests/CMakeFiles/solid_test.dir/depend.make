# Empty dependencies file for solid_test.
# This may be replaced when dependencies are built.
