# Empty compiler generated dependencies file for bugs_test.
# This may be replaced when dependencies are built.
