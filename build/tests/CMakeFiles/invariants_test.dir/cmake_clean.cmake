file(REMOVE_RECURSE
  "CMakeFiles/invariants_test.dir/invariants_test.cpp.o"
  "CMakeFiles/invariants_test.dir/invariants_test.cpp.o.d"
  "invariants_test"
  "invariants_test.pdb"
  "invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
