file(REMOVE_RECURSE
  "CMakeFiles/kinematics_test.dir/kinematics_test.cpp.o"
  "CMakeFiles/kinematics_test.dir/kinematics_test.cpp.o.d"
  "kinematics_test"
  "kinematics_test.pdb"
  "kinematics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kinematics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
