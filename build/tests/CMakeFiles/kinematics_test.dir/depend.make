# Empty dependencies file for kinematics_test.
# This may be replaced when dependencies are built.
