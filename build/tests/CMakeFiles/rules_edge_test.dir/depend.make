# Empty dependencies file for rules_edge_test.
# This may be replaced when dependencies are built.
