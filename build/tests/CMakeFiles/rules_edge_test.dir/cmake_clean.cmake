file(REMOVE_RECURSE
  "CMakeFiles/rules_edge_test.dir/rules_edge_test.cpp.o"
  "CMakeFiles/rules_edge_test.dir/rules_edge_test.cpp.o.d"
  "rules_edge_test"
  "rules_edge_test.pdb"
  "rules_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
