file(REMOVE_RECURSE
  "CMakeFiles/json_test.dir/json_test.cpp.o"
  "CMakeFiles/json_test.dir/json_test.cpp.o.d"
  "json_test"
  "json_test.pdb"
  "json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
