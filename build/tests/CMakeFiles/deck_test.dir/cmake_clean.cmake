file(REMOVE_RECURSE
  "CMakeFiles/deck_test.dir/deck_test.cpp.o"
  "CMakeFiles/deck_test.dir/deck_test.cpp.o.d"
  "deck_test"
  "deck_test.pdb"
  "deck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
