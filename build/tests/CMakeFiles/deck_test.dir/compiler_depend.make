# Empty compiler generated dependencies file for deck_test.
# This may be replaced when dependencies are built.
