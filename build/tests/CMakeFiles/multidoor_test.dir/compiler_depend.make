# Empty compiler generated dependencies file for multidoor_test.
# This may be replaced when dependencies are built.
