file(REMOVE_RECURSE
  "CMakeFiles/multidoor_test.dir/multidoor_test.cpp.o"
  "CMakeFiles/multidoor_test.dir/multidoor_test.cpp.o.d"
  "multidoor_test"
  "multidoor_test.pdb"
  "multidoor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidoor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
