file(REMOVE_RECURSE
  "CMakeFiles/rabit_trace.dir/trace.cpp.o"
  "CMakeFiles/rabit_trace.dir/trace.cpp.o.d"
  "librabit_trace.a"
  "librabit_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabit_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
