# Empty dependencies file for rabit_trace.
# This may be replaced when dependencies are built.
