file(REMOVE_RECURSE
  "librabit_trace.a"
)
