file(REMOVE_RECURSE
  "CMakeFiles/rabit_bugs.dir/bugs.cpp.o"
  "CMakeFiles/rabit_bugs.dir/bugs.cpp.o.d"
  "librabit_bugs.a"
  "librabit_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabit_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
