# Empty compiler generated dependencies file for rabit_bugs.
# This may be replaced when dependencies are built.
