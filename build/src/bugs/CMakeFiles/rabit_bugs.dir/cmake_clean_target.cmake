file(REMOVE_RECURSE
  "librabit_bugs.a"
)
