# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("json")
subdirs("geometry")
subdirs("kinematics")
subdirs("devices")
subdirs("sim")
subdirs("testbed")
subdirs("script")
subdirs("trace")
subdirs("core")
subdirs("rad")
subdirs("bugs")
