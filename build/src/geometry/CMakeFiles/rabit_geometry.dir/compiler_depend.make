# Empty compiler generated dependencies file for rabit_geometry.
# This may be replaced when dependencies are built.
