file(REMOVE_RECURSE
  "librabit_geometry.a"
)
