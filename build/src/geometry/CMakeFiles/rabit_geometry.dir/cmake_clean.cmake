file(REMOVE_RECURSE
  "CMakeFiles/rabit_geometry.dir/geometry.cpp.o"
  "CMakeFiles/rabit_geometry.dir/geometry.cpp.o.d"
  "CMakeFiles/rabit_geometry.dir/solid.cpp.o"
  "CMakeFiles/rabit_geometry.dir/solid.cpp.o.d"
  "librabit_geometry.a"
  "librabit_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabit_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
