file(REMOVE_RECURSE
  "librabit_testbed.a"
)
