file(REMOVE_RECURSE
  "CMakeFiles/rabit_testbed.dir/frame_calibration.cpp.o"
  "CMakeFiles/rabit_testbed.dir/frame_calibration.cpp.o.d"
  "librabit_testbed.a"
  "librabit_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabit_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
