# Empty compiler generated dependencies file for rabit_testbed.
# This may be replaced when dependencies are built.
