file(REMOVE_RECURSE
  "CMakeFiles/rabit_rad.dir/rad.cpp.o"
  "CMakeFiles/rabit_rad.dir/rad.cpp.o.d"
  "librabit_rad.a"
  "librabit_rad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabit_rad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
