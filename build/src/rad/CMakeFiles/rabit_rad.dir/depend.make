# Empty dependencies file for rabit_rad.
# This may be replaced when dependencies are built.
