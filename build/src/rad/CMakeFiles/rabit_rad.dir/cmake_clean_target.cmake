file(REMOVE_RECURSE
  "librabit_rad.a"
)
