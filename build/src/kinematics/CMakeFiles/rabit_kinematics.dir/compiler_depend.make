# Empty compiler generated dependencies file for rabit_kinematics.
# This may be replaced when dependencies are built.
