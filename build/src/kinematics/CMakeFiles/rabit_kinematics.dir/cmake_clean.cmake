file(REMOVE_RECURSE
  "CMakeFiles/rabit_kinematics.dir/kinematics.cpp.o"
  "CMakeFiles/rabit_kinematics.dir/kinematics.cpp.o.d"
  "librabit_kinematics.a"
  "librabit_kinematics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabit_kinematics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
