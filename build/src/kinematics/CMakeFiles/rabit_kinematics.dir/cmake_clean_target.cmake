file(REMOVE_RECURSE
  "librabit_kinematics.a"
)
