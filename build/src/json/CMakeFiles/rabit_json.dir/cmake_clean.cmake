file(REMOVE_RECURSE
  "CMakeFiles/rabit_json.dir/json.cpp.o"
  "CMakeFiles/rabit_json.dir/json.cpp.o.d"
  "librabit_json.a"
  "librabit_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabit_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
