# Empty dependencies file for rabit_json.
# This may be replaced when dependencies are built.
