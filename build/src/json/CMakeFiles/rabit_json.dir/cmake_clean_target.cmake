file(REMOVE_RECURSE
  "librabit_json.a"
)
