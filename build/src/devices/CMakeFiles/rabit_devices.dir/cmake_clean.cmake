file(REMOVE_RECURSE
  "CMakeFiles/rabit_devices.dir/containers.cpp.o"
  "CMakeFiles/rabit_devices.dir/containers.cpp.o.d"
  "CMakeFiles/rabit_devices.dir/device.cpp.o"
  "CMakeFiles/rabit_devices.dir/device.cpp.o.d"
  "CMakeFiles/rabit_devices.dir/robot_arm.cpp.o"
  "CMakeFiles/rabit_devices.dir/robot_arm.cpp.o.d"
  "CMakeFiles/rabit_devices.dir/stations.cpp.o"
  "CMakeFiles/rabit_devices.dir/stations.cpp.o.d"
  "librabit_devices.a"
  "librabit_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabit_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
