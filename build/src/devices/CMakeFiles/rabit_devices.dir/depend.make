# Empty dependencies file for rabit_devices.
# This may be replaced when dependencies are built.
