file(REMOVE_RECURSE
  "librabit_devices.a"
)
