
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/containers.cpp" "src/devices/CMakeFiles/rabit_devices.dir/containers.cpp.o" "gcc" "src/devices/CMakeFiles/rabit_devices.dir/containers.cpp.o.d"
  "/root/repo/src/devices/device.cpp" "src/devices/CMakeFiles/rabit_devices.dir/device.cpp.o" "gcc" "src/devices/CMakeFiles/rabit_devices.dir/device.cpp.o.d"
  "/root/repo/src/devices/robot_arm.cpp" "src/devices/CMakeFiles/rabit_devices.dir/robot_arm.cpp.o" "gcc" "src/devices/CMakeFiles/rabit_devices.dir/robot_arm.cpp.o.d"
  "/root/repo/src/devices/stations.cpp" "src/devices/CMakeFiles/rabit_devices.dir/stations.cpp.o" "gcc" "src/devices/CMakeFiles/rabit_devices.dir/stations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/rabit_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/rabit_kinematics.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/rabit_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
