file(REMOVE_RECURSE
  "librabit_script.a"
)
