# Empty dependencies file for rabit_script.
# This may be replaced when dependencies are built.
