file(REMOVE_RECURSE
  "CMakeFiles/rabit_script.dir/interp.cpp.o"
  "CMakeFiles/rabit_script.dir/interp.cpp.o.d"
  "CMakeFiles/rabit_script.dir/lexer.cpp.o"
  "CMakeFiles/rabit_script.dir/lexer.cpp.o.d"
  "CMakeFiles/rabit_script.dir/parser.cpp.o"
  "CMakeFiles/rabit_script.dir/parser.cpp.o.d"
  "CMakeFiles/rabit_script.dir/workflows.cpp.o"
  "CMakeFiles/rabit_script.dir/workflows.cpp.o.d"
  "librabit_script.a"
  "librabit_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabit_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
