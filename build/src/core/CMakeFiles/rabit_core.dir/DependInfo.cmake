
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/rabit_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/rabit_core.dir/config.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/rabit_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/rabit_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/rules.cpp" "src/core/CMakeFiles/rabit_core.dir/rules.cpp.o" "gcc" "src/core/CMakeFiles/rabit_core.dir/rules.cpp.o.d"
  "/root/repo/src/core/tracker.cpp" "src/core/CMakeFiles/rabit_core.dir/tracker.cpp.o" "gcc" "src/core/CMakeFiles/rabit_core.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rabit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/rabit_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/rabit_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/rabit_json.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/rabit_kinematics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
