# Empty compiler generated dependencies file for rabit_core.
# This may be replaced when dependencies are built.
