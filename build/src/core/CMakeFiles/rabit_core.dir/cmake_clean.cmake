file(REMOVE_RECURSE
  "CMakeFiles/rabit_core.dir/config.cpp.o"
  "CMakeFiles/rabit_core.dir/config.cpp.o.d"
  "CMakeFiles/rabit_core.dir/engine.cpp.o"
  "CMakeFiles/rabit_core.dir/engine.cpp.o.d"
  "CMakeFiles/rabit_core.dir/rules.cpp.o"
  "CMakeFiles/rabit_core.dir/rules.cpp.o.d"
  "CMakeFiles/rabit_core.dir/tracker.cpp.o"
  "CMakeFiles/rabit_core.dir/tracker.cpp.o.d"
  "librabit_core.a"
  "librabit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
