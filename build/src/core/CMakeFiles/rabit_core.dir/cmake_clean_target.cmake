file(REMOVE_RECURSE
  "librabit_core.a"
)
