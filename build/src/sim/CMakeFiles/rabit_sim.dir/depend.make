# Empty dependencies file for rabit_sim.
# This may be replaced when dependencies are built.
