file(REMOVE_RECURSE
  "CMakeFiles/rabit_sim.dir/backend.cpp.o"
  "CMakeFiles/rabit_sim.dir/backend.cpp.o.d"
  "CMakeFiles/rabit_sim.dir/deck.cpp.o"
  "CMakeFiles/rabit_sim.dir/deck.cpp.o.d"
  "CMakeFiles/rabit_sim.dir/extended_sim.cpp.o"
  "CMakeFiles/rabit_sim.dir/extended_sim.cpp.o.d"
  "CMakeFiles/rabit_sim.dir/world.cpp.o"
  "CMakeFiles/rabit_sim.dir/world.cpp.o.d"
  "librabit_sim.a"
  "librabit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
