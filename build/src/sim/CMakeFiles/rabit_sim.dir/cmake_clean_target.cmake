file(REMOVE_RECURSE
  "librabit_sim.a"
)
