
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/backend.cpp" "src/sim/CMakeFiles/rabit_sim.dir/backend.cpp.o" "gcc" "src/sim/CMakeFiles/rabit_sim.dir/backend.cpp.o.d"
  "/root/repo/src/sim/deck.cpp" "src/sim/CMakeFiles/rabit_sim.dir/deck.cpp.o" "gcc" "src/sim/CMakeFiles/rabit_sim.dir/deck.cpp.o.d"
  "/root/repo/src/sim/extended_sim.cpp" "src/sim/CMakeFiles/rabit_sim.dir/extended_sim.cpp.o" "gcc" "src/sim/CMakeFiles/rabit_sim.dir/extended_sim.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/rabit_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/rabit_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/devices/CMakeFiles/rabit_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/rabit_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/rabit_kinematics.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/rabit_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
