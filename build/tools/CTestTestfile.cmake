# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_validate_template "sh" "-c" "/root/repo/build/tools/rabit_validate --template > /root/repo/build/tools/template.json && /root/repo/build/tools/rabit_validate /root/repo/build/tools/template.json")
set_tests_properties(tool_validate_template PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_validate_rejects_garbage "sh" "-c" "echo '{broken' > /root/repo/build/tools/bad.json; ! /root/repo/build/tools/rabit_validate /root/repo/build/tools/bad.json")
set_tests_properties(tool_validate_rejects_garbage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_mine_synthetic "/root/repo/build/tools/rabit_mine" "--days" "5")
set_tests_properties(tool_mine_synthetic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
