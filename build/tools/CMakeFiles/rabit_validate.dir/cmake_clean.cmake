file(REMOVE_RECURSE
  "CMakeFiles/rabit_validate.dir/rabit_validate.cpp.o"
  "CMakeFiles/rabit_validate.dir/rabit_validate.cpp.o.d"
  "rabit_validate"
  "rabit_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabit_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
