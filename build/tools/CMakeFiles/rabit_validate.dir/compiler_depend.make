# Empty compiler generated dependencies file for rabit_validate.
# This may be replaced when dependencies are built.
