# Empty dependencies file for rabit_mine.
# This may be replaced when dependencies are built.
