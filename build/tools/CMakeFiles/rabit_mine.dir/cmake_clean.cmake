file(REMOVE_RECURSE
  "CMakeFiles/rabit_mine.dir/rabit_mine.cpp.o"
  "CMakeFiles/rabit_mine.dir/rabit_mine.cpp.o.d"
  "rabit_mine"
  "rabit_mine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabit_mine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
