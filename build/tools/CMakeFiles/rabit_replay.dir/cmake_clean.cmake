file(REMOVE_RECURSE
  "CMakeFiles/rabit_replay.dir/rabit_replay.cpp.o"
  "CMakeFiles/rabit_replay.dir/rabit_replay.cpp.o.d"
  "rabit_replay"
  "rabit_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rabit_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
