# Empty dependencies file for rabit_replay.
# This may be replaced when dependencies are built.
