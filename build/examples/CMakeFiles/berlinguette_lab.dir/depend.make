# Empty dependencies file for berlinguette_lab.
# This may be replaced when dependencies are built.
