file(REMOVE_RECURSE
  "CMakeFiles/berlinguette_lab.dir/berlinguette_lab.cpp.o"
  "CMakeFiles/berlinguette_lab.dir/berlinguette_lab.cpp.o.d"
  "berlinguette_lab"
  "berlinguette_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/berlinguette_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
