# Empty dependencies file for solubility_experiment.
# This may be replaced when dependencies are built.
