file(REMOVE_RECURSE
  "CMakeFiles/solubility_experiment.dir/solubility_experiment.cpp.o"
  "CMakeFiles/solubility_experiment.dir/solubility_experiment.cpp.o.d"
  "solubility_experiment"
  "solubility_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solubility_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
