# Empty compiler generated dependencies file for buggy_workflows.
# This may be replaced when dependencies are built.
