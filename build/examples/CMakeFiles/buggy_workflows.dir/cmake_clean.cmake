file(REMOVE_RECURSE
  "CMakeFiles/buggy_workflows.dir/buggy_workflows.cpp.o"
  "CMakeFiles/buggy_workflows.dir/buggy_workflows.cpp.o.d"
  "buggy_workflows"
  "buggy_workflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buggy_workflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
