file(REMOVE_RECURSE
  "CMakeFiles/three_stage_pipeline.dir/three_stage_pipeline.cpp.o"
  "CMakeFiles/three_stage_pipeline.dir/three_stage_pipeline.cpp.o.d"
  "three_stage_pipeline"
  "three_stage_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_stage_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
