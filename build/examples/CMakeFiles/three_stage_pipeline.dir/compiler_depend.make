# Empty compiler generated dependencies file for three_stage_pipeline.
# This may be replaced when dependencies are built.
