# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_solubility_experiment "/root/repo/build/examples/solubility_experiment")
set_tests_properties(example_solubility_experiment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_buggy_workflows "/root/repo/build/examples/buggy_workflows")
set_tests_properties(example_buggy_workflows PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_berlinguette_lab "/root/repo/build/examples/berlinguette_lab")
set_tests_properties(example_berlinguette_lab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_three_stage_pipeline "/root/repo/build/examples/three_stage_pipeline")
set_tests_properties(example_three_stage_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
